//! # NAI — Node-Adaptive Inference for Scalable GNNs
//!
//! A from-scratch Rust reproduction of *"Accelerating Scalable Graph Neural
//! Network Inference with Node-Adaptive Propagation"* (ICDE 2024,
//! arXiv:2310.10998).
//!
//! Scalable GNNs (SGC, SIGN, S²GC, GAMLP) precompute feature propagation,
//! which makes training fast — but **inductive** inference on unseen nodes
//! still pays for online propagation over an exponentially growing
//! supporting neighborhood. NAI gives every node a *personalized
//! propagation depth*: nodes whose features are already close to their
//! stationary state exit early and are classified by shallow per-depth
//! classifiers, trained with Inception Distillation to match the deep
//! model's accuracy.
//!
//! ## Quickstart
//!
//! ```
//! use nai::prelude::*;
//!
//! // A synthetic homophilous graph with an inductive split.
//! let dataset = nai::datasets::load(nai::datasets::DatasetId::ArxivProxy,
//!                                   nai::datasets::Scale::Test);
//!
//! // Train the full NAI stack (propagation → classifiers → distillation →
//! // gates) for SGC with depth k = 3.
//! let cfg = PipelineConfig { k: 3, epochs: 25, gate_epochs: 5,
//!                            ..PipelineConfig::default() };
//! let trained = NaiPipeline::new(ModelKind::Sgc, cfg)
//!     .train(&dataset.graph, &dataset.split, true);
//!
//! // Adaptive inductive inference with distance-based NAP.
//! let result = trained.engine.infer(
//!     &dataset.split.test,
//!     &dataset.graph.labels,
//!     &InferenceConfig::distance(0.5, 1, 3),
//! );
//! println!("accuracy {:.3}, mean depth {:.2}",
//!          result.report.accuracy, result.report.mean_depth());
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |--------|----------|
//! | [`linalg`] | dense f32 matrices, parallel matmul, row kernels |
//! | [`graph`] | CSR, normalized adjacency, BFS frontiers, generators |
//! | [`nn`] | MLPs with explicit backprop, Adam, KD losses, Gumbel, INT8 |
//! | [`models`] | SGC / SIGN / S²GC / GAMLP per-depth classifiers |
//! | [`core`] | stationary state, NAP_d, NAP_g, NAP_u, Algorithm 1, distillation, checkpoints |
//! | [`baselines`] | GLNN, NOSMOG, TinyGNN, Quantization, PPRGo |
//! | [`datasets`] | Flickr / Ogbn-arxiv / Ogbn-products proxies |
//! | [`stream`] | dynamic graphs + per-arrival streaming inference |
//! | [`serve`] | online inference service: micro-batching, shard workers, HTTP |

pub use nai_baselines as baselines;
pub use nai_core as core;
pub use nai_datasets as datasets;
pub use nai_graph as graph;
pub use nai_linalg as linalg;
pub use nai_models as models;
pub use nai_nn as nn;
pub use nai_serve as serve;
pub use nai_stream as stream;

/// One-stop imports for applications.
pub mod prelude {
    pub use nai_core::checkpoint::ModelCheckpoint;
    pub use nai_core::config::{DistillConfig, InferenceConfig, NapMode, PipelineConfig};
    pub use nai_core::eval::ConfusionMatrix;
    pub use nai_core::inference::{InferenceResult, NaiEngine};
    pub use nai_core::metrics::InferenceReport;
    pub use nai_core::pipeline::{NaiPipeline, TrainedNai};
    pub use nai_graph::{Graph, InductiveSplit};
    pub use nai_linalg::DenseMatrix;
    pub use nai_models::ModelKind;
    pub use nai_stream::{DynamicGraph, StreamingEngine};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let cfg = PipelineConfig::default();
        assert_eq!(cfg.k, 5);
        let _ = ModelKind::Sgc.name();
        let inf = InferenceConfig::fixed(2);
        assert!(inf.validate(5).is_ok());
    }
}
