//! Dense `f32` linear algebra substrate for the NAI reproduction.
//!
//! The whole stack (feature propagation, MLP classifiers, gates,
//! distillation) operates on row-major dense matrices of `f32`. This crate
//! provides:
//!
//! * [`DenseMatrix`] — the single owned matrix type used everywhere,
//! * parallel matrix multiplication tuned for the "tall-skinny × small"
//!   shapes that dominate GNN classifier workloads ([`DenseMatrix::matmul`]),
//! * row-wise numeric kernels (softmax, log-softmax, L2 norms, argmax) in
//!   [`ops`],
//! * weight initialisation helpers (Glorot/He) in [`init`],
//! * a tiny scoped parallel-for utility in [`parallel`] built on
//!   [`std::thread::scope`] — no global thread pool, no `unsafe`.
//!
//! Design choices follow the Rust performance guide read for this session:
//! preallocate, iterate row-major in `(i, k, j)` order, chunk work across
//! threads only above a size threshold, and keep types small and `Copy`-free
//! clones explicit.

pub mod dense;
pub mod init;
pub mod ops;
pub mod parallel;

pub use dense::DenseMatrix;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LinalgError>;

/// Errors produced by shape-checked operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Two operands disagree on a dimension.
    ShapeMismatch {
        /// Human-readable operation name (e.g. `"matmul"`).
        op: &'static str,
        /// Shape of the left operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// An index was out of bounds for the matrix.
    IndexOutOfBounds {
        /// Offending index.
        index: usize,
        /// Number of valid entries.
        len: usize,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs {}x{} vs rhs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds (len {len})")
            }
        }
    }
}

impl std::error::Error for LinalgError {}
