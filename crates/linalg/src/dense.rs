//! Row-major dense `f32` matrix.
//!
//! [`DenseMatrix`] is the only owned matrix type in the workspace. Feature
//! matrices are tall (many nodes) and skinny (small feature dim), classifier
//! weights are small squares, so the matmul kernel parallelises over left
//! rows with an `(i, k, j)` loop order that streams both operands
//! sequentially.

use crate::parallel::par_rows_mut;
use crate::{LinalgError, Result};

/// Row-major dense matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl std::fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DenseMatrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 64 {
            for r in 0..self.rows {
                write!(f, "\n  {:?}", self.row(r))?;
            }
        }
        Ok(())
    }
}

impl Default for DenseMatrix {
    /// An empty `0 × 0` matrix (useful as a reusable buffer seed; see
    /// [`DenseMatrix::reset_zeroed`]).
    fn default() -> Self {
        Self::zeros(0, 0)
    }
}

impl DenseMatrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Flat row-major view of the data.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable row-major view of the data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrow of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows, "row {r} out of {}", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows, "row {r} out of {}", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Reshapes the matrix in place to `rows × cols`, zero-filling every
    /// element. Reuses the existing buffer capacity, so hot loops can
    /// recycle one matrix across iterations without reallocating.
    pub fn reset_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Reshapes the matrix in place to `rows × cols` **without** clearing
    /// retained elements (newly grown space is zeroed; anything else
    /// keeps its previous, now-stale value). For buffers whose every read
    /// row is unconditionally written first — skips
    /// [`Self::reset_zeroed`]'s full memset on the hot path.
    pub fn reset_for_overwrite(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Copies the given rows into a new matrix (gather).
    ///
    /// # Errors
    /// Returns [`LinalgError::IndexOutOfBounds`] if any index exceeds the
    /// row count.
    pub fn gather_rows(&self, indices: &[usize]) -> Result<DenseMatrix> {
        let mut out = DenseMatrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            if src >= self.rows {
                return Err(LinalgError::IndexOutOfBounds {
                    index: src,
                    len: self.rows,
                });
            }
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        Ok(out)
    }

    /// Horizontal concatenation `[self | other]`.
    ///
    /// # Errors
    /// Returns a shape mismatch if the row counts differ.
    pub fn hconcat(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.rows != other.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "hconcat",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        Ok(out)
    }

    /// Horizontal concatenation of several matrices with equal row counts.
    pub fn hconcat_all(parts: &[&DenseMatrix]) -> Result<DenseMatrix> {
        assert!(!parts.is_empty(), "hconcat_all needs at least one part");
        let rows = parts[0].rows;
        let total: usize = parts.iter().map(|m| m.cols).sum();
        let mut out = DenseMatrix::zeros(rows, total);
        for p in parts {
            if p.rows != rows {
                return Err(LinalgError::ShapeMismatch {
                    op: "hconcat_all",
                    lhs: (rows, 0),
                    rhs: p.shape(),
                });
            }
        }
        for r in 0..rows {
            let orow = out.row_mut(r);
            let mut off = 0;
            for p in parts {
                orow[off..off + p.cols].copy_from_slice(p.row(r));
                off += p.cols;
            }
        }
        Ok(out)
    }

    /// Transposed copy.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        // Block the transpose to stay cache-friendly for large matrices.
        const B: usize = 32;
        for rb in (0..self.rows).step_by(B) {
            for cb in (0..self.cols).step_by(B) {
                for r in rb..(rb + B).min(self.rows) {
                    for c in cb..(cb + B).min(self.cols) {
                        out.data[c * self.rows + r] = self.data[r * self.cols + c];
                    }
                }
            }
        }
        out
    }

    /// Matrix product `self × rhs`, parallel over left rows.
    ///
    /// # Errors
    /// Returns a shape mismatch if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, rhs.cols);
        let (lcols, rcols) = (self.cols, rhs.cols);
        let lhs_data = &self.data;
        let rhs_data = &rhs.data;
        par_rows_mut(&mut out.data, rcols.max(1), lcols * rcols, |row0, chunk| {
            for (r_off, orow) in chunk.chunks_mut(rcols).enumerate() {
                let r = row0 + r_off;
                let arow = &lhs_data[r * lcols..(r + 1) * lcols];
                // (i, k, j): stream rhs rows sequentially, accumulate into orow.
                for (k, &a) in arow.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let brow = &rhs_data[k * rcols..(k + 1) * rcols];
                    for (o, &b) in orow.iter_mut().zip(brow.iter()) {
                        *o += a * b;
                    }
                }
            }
        });
        Ok(out)
    }

    /// `self × rhsᵀ` without materialising the transpose — used by backprop
    /// (`dX = dY × Wᵀ`).
    pub fn matmul_transpose_rhs(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != rhs.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul_transpose_rhs",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, rhs.rows);
        let (inner, ocols) = (self.cols, rhs.rows);
        let lhs_data = &self.data;
        let rhs_data = &rhs.data;
        par_rows_mut(&mut out.data, ocols.max(1), inner * ocols, |row0, chunk| {
            for (r_off, orow) in chunk.chunks_mut(ocols).enumerate() {
                let r = row0 + r_off;
                let arow = &lhs_data[r * inner..(r + 1) * inner];
                for (j, o) in orow.iter_mut().enumerate() {
                    let brow = &rhs_data[j * inner..(j + 1) * inner];
                    let mut acc = 0.0f32;
                    for (&a, &b) in arow.iter().zip(brow.iter()) {
                        acc += a * b;
                    }
                    *o = acc;
                }
            }
        });
        Ok(out)
    }

    /// `selfᵀ × rhs` without materialising the transpose — used by backprop
    /// (`dW = Xᵀ × dY`). Sequential: weight-gradient shapes are small.
    pub fn transpose_matmul(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        if self.rows != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "transpose_matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = DenseMatrix::zeros(self.cols, rhs.cols);
        for r in 0..self.rows {
            let arow = self.row(r);
            let brow = rhs.row(r);
            for (k, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = &mut out.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in orow.iter_mut().zip(brow.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Element-wise in-place addition.
    ///
    /// # Errors
    /// Returns a shape mismatch if dimensions differ.
    pub fn add_assign(&mut self, rhs: &DenseMatrix) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "add_assign",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
        Ok(())
    }

    /// In-place `self += alpha * rhs` (axpy).
    ///
    /// # Errors
    /// Returns a shape mismatch if dimensions differ.
    pub fn axpy(&mut self, alpha: f32, rhs: &DenseMatrix) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "axpy",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// In-place scaling by a scalar.
    pub fn scale(&mut self, alpha: f32) {
        for v in self.data.iter_mut() {
            *v *= alpha;
        }
    }

    /// Adds a bias row vector to every row.
    ///
    /// # Panics
    /// Panics if `bias.len() != self.cols`.
    pub fn add_bias_row(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for row in self.data.chunks_mut(self.cols) {
            for (v, &b) in row.iter_mut().zip(bias.iter()) {
                *v += b;
            }
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Maximum absolute element (`0.0` for empty matrices).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    fn approx_eq(a: &DenseMatrix, b: &DenseMatrix, tol: f32) -> bool {
        a.shape() == b.shape()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
    }

    #[test]
    fn matmul_matches_naive() {
        let a = DenseMatrix::from_fn(7, 5, |r, c| (r * 5 + c) as f32 * 0.1 - 1.0);
        let b = DenseMatrix::from_fn(5, 3, |r, c| (r as f32 - c as f32) * 0.3);
        let got = a.matmul(&b).unwrap();
        assert!(approx_eq(&got, &naive_matmul(&a, &b), 1e-5));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = DenseMatrix::from_fn(4, 4, |r, c| (r + 2 * c) as f32);
        let got = a.matmul(&DenseMatrix::eye(4)).unwrap();
        assert!(approx_eq(&got, &a, 0.0));
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(4, 2);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn matmul_transpose_rhs_matches_explicit_transpose() {
        let a = DenseMatrix::from_fn(6, 4, |r, c| ((r * c) as f32).sin());
        let b = DenseMatrix::from_fn(5, 4, |r, c| ((r + c) as f32).cos());
        let got = a.matmul_transpose_rhs(&b).unwrap();
        let want = a.matmul(&b.transpose()).unwrap();
        assert!(approx_eq(&got, &want, 1e-5));
    }

    #[test]
    fn transpose_matmul_matches_explicit_transpose() {
        let a = DenseMatrix::from_fn(6, 4, |r, c| (r as f32 * 0.5 - c as f32).tanh());
        let b = DenseMatrix::from_fn(6, 3, |r, c| ((r + 7 * c) % 5) as f32);
        let got = a.transpose_matmul(&b).unwrap();
        let want = a.transpose().matmul(&b).unwrap();
        assert!(approx_eq(&got, &want, 1e-5));
    }

    #[test]
    fn transpose_is_involution() {
        let a = DenseMatrix::from_fn(9, 13, |r, c| (r * 13 + c) as f32);
        assert!(approx_eq(&a.transpose().transpose(), &a, 0.0));
    }

    #[test]
    fn gather_rows_picks_rows() {
        let a = DenseMatrix::from_fn(5, 2, |r, _| r as f32);
        let g = a.gather_rows(&[4, 0, 2]).unwrap();
        assert_eq!(g.row(0), &[4.0, 4.0]);
        assert_eq!(g.row(1), &[0.0, 0.0]);
        assert_eq!(g.row(2), &[2.0, 2.0]);
    }

    #[test]
    fn gather_rows_out_of_bounds() {
        let a = DenseMatrix::zeros(3, 2);
        assert!(matches!(
            a.gather_rows(&[3]),
            Err(LinalgError::IndexOutOfBounds { index: 3, len: 3 })
        ));
    }

    #[test]
    fn hconcat_concatenates_columns() {
        let a = DenseMatrix::from_fn(2, 2, |_, _| 1.0);
        let b = DenseMatrix::from_fn(2, 3, |_, _| 2.0);
        let c = a.hconcat(&b).unwrap();
        assert_eq!(c.shape(), (2, 5));
        assert_eq!(c.row(0), &[1.0, 1.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn hconcat_all_matches_pairwise() {
        let a = DenseMatrix::from_fn(3, 1, |r, _| r as f32);
        let b = DenseMatrix::from_fn(3, 2, |r, c| (r + c) as f32);
        let c = DenseMatrix::from_fn(3, 1, |_, _| 9.0);
        let all = DenseMatrix::hconcat_all(&[&a, &b, &c]).unwrap();
        let pair = a.hconcat(&b).unwrap().hconcat(&c).unwrap();
        assert!(approx_eq(&all, &pair, 0.0));
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = DenseMatrix::from_fn(2, 2, |_, _| 1.0);
        let b = DenseMatrix::from_fn(2, 2, |_, _| 2.0);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.row(0), &[2.0, 2.0]);
        a.scale(2.0);
        assert_eq!(a.row(1), &[4.0, 4.0]);
    }

    #[test]
    fn add_bias_row_adds_to_each_row() {
        let mut a = DenseMatrix::zeros(3, 2);
        a.add_bias_row(&[1.0, -1.0]);
        for r in 0..3 {
            assert_eq!(a.row(r), &[1.0, -1.0]);
        }
    }

    #[test]
    fn non_finite_detection() {
        let mut a = DenseMatrix::zeros(1, 2);
        assert!(!a.has_non_finite());
        a.set(0, 1, f32::NAN);
        assert!(a.has_non_finite());
    }

    #[test]
    fn zero_sized_matmul() {
        let a = DenseMatrix::zeros(0, 3);
        let b = DenseMatrix::zeros(3, 2);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), (0, 2));
    }
}
