//! Minimal scoped data-parallelism helpers built on [`std::thread::scope`].
//!
//! GNN inference kernels are embarrassingly parallel over matrix rows.
//! Rather than pulling in a work-stealing pool, we split the row range into
//! contiguous chunks, hand each chunk to a scoped thread, and join. Scoped
//! threads let us borrow the input matrices without `Arc` gymnastics.

/// Work below this many "cells" (rows × cost hint) runs sequentially.
///
/// Workers are scoped OS threads (no persistent pool), so each parallel
/// section pays thread spawn + join (~100 µs). That only amortises for
/// kernels in the ≥ milliseconds range — roughly a million multiply-adds —
/// hence the high threshold: classifier-sized matmuls run sequentially,
/// large SpMM frontiers and full-graph propagation parallelise.
pub const PAR_THRESHOLD: usize = 1 << 20;

/// Returns the number of worker threads to use for a task of the given size.
///
/// `work` is an approximate element count (e.g. `rows * cols`). Small tasks
/// get one thread; large tasks use the machine's available parallelism,
/// capped so each thread receives at least `PAR_THRESHOLD` work.
pub fn thread_count(work: usize) -> usize {
    if work < PAR_THRESHOLD {
        return 1;
    }
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    hw.min(work / PAR_THRESHOLD).max(1)
}

/// Runs `f(start_row, out_chunk)` over disjoint chunks of `out`,
/// splitting `out` by rows of width `row_width`.
///
/// `out.len()` must be a multiple of `row_width`. The closure receives the
/// global starting row of its chunk so it can index shared inputs.
///
/// # Panics
/// Panics if `row_width == 0` or `out.len() % row_width != 0`.
pub fn par_rows_mut<F>(out: &mut [f32], row_width: usize, cost_hint: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(row_width > 0, "row_width must be positive");
    assert_eq!(
        out.len() % row_width,
        0,
        "output length {} not a multiple of row width {}",
        out.len(),
        row_width
    );
    let rows = out.len() / row_width;
    if rows == 0 {
        return;
    }
    let threads = thread_count(rows.saturating_mul(cost_hint.max(1)));
    if threads <= 1 {
        f(0, out);
        return;
    }
    let rows_per = rows.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut rest = out;
        let mut start_row = 0usize;
        while !rest.is_empty() {
            let take = (rows_per * row_width).min(rest.len());
            let (chunk, tail) = rest.split_at_mut(take);
            let fr = &f;
            let row0 = start_row;
            scope.spawn(move || fr(row0, chunk));
            start_row += take / row_width;
            rest = tail;
        }
    });
}

/// Parallel map over an index range, collecting results in order.
///
/// Used for per-node reductions (e.g. row norms) where each output is a
/// single value.
pub fn par_map_range<T, F>(n: usize, cost_hint: usize, f: F) -> Vec<T>
where
    T: Send + Default + Clone,
    F: Fn(usize) -> T + Sync,
{
    let mut out = vec![T::default(); n];
    let threads = thread_count(n.saturating_mul(cost_hint.max(1)));
    if threads <= 1 {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = f(i);
        }
        return out;
    }
    let per = n.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut rest = out.as_mut_slice();
        let mut start = 0usize;
        while !rest.is_empty() {
            let take = per.min(rest.len());
            let (chunk, tail) = rest.split_at_mut(take);
            let fr = &f;
            let s0 = start;
            scope.spawn(move || {
                for (off, slot) in chunk.iter_mut().enumerate() {
                    *slot = fr(s0 + off);
                }
            });
            start += take;
            rest = tail;
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_rows_mut_covers_all_rows_once() {
        let rows = 1000;
        let width = 8;
        let mut out = vec![0.0f32; rows * width];
        par_rows_mut(&mut out, width, PAR_THRESHOLD, |row0, chunk| {
            for (r, row) in chunk.chunks_mut(width).enumerate() {
                for v in row.iter_mut() {
                    *v += (row0 + r) as f32;
                }
            }
        });
        for (r, row) in out.chunks(width).enumerate() {
            assert!(row.iter().all(|&v| v == r as f32), "row {r} wrong: {row:?}");
        }
    }

    #[test]
    fn par_rows_mut_sequential_small() {
        let mut out = vec![0.0f32; 4];
        par_rows_mut(&mut out, 2, 1, |row0, chunk| {
            assert_eq!(row0, 0);
            chunk.fill(1.0);
        });
        assert_eq!(out, vec![1.0; 4]);
    }

    #[test]
    fn par_rows_mut_empty_output_is_noop() {
        let mut out: Vec<f32> = vec![];
        par_rows_mut(&mut out, 3, 100, |_, _| panic!("must not be called"));
    }

    #[test]
    #[should_panic(expected = "multiple of row width")]
    fn par_rows_mut_rejects_ragged() {
        let mut out = vec![0.0f32; 5];
        par_rows_mut(&mut out, 2, 1, |_, _| {});
    }

    #[test]
    fn par_map_range_matches_sequential() {
        let got = par_map_range(10_000, 64, |i| (i * 3) as u64);
        for (i, v) in got.iter().enumerate() {
            assert_eq!(*v, (i * 3) as u64);
        }
    }

    #[test]
    fn thread_count_is_one_for_tiny_work() {
        assert_eq!(thread_count(10), 1);
        assert!(thread_count(PAR_THRESHOLD * 64) >= 1);
    }
}
