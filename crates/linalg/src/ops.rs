//! Row-wise numeric kernels shared by classifiers, gates and NAP modules.

use crate::dense::DenseMatrix;
use crate::parallel::par_map_range;

/// Numerically stable in-place softmax over each row.
pub fn softmax_rows(m: &mut DenseMatrix) {
    let cols = m.cols();
    if cols == 0 {
        return;
    }
    for row in m.as_mut_slice().chunks_mut(cols) {
        softmax_slice(row);
    }
}

/// Numerically stable softmax of a single slice, in place.
pub fn softmax_slice(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    } else {
        // All -inf row: fall back to uniform so downstream stays finite.
        let u = 1.0 / row.len() as f32;
        row.fill(u);
    }
}

/// Numerically stable log-softmax of a single slice, in place.
pub fn log_softmax_slice(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in row.iter() {
        sum += (*v - max).exp();
    }
    let lse = max + sum.ln();
    for v in row.iter_mut() {
        *v -= lse;
    }
}

/// Tempered softmax: `softmax(row / t)` in place. `t` must be positive.
pub fn softmax_slice_with_temperature(row: &mut [f32], t: f32) {
    debug_assert!(t > 0.0, "temperature must be positive, got {t}");
    let inv_t = 1.0 / t;
    for v in row.iter_mut() {
        *v *= inv_t;
    }
    softmax_slice(row);
}

/// Index of the maximum element of a slice (first on ties).
///
/// # Panics
/// Panics on an empty slice.
pub fn argmax(row: &[f32]) -> usize {
    assert!(!row.is_empty(), "argmax of empty slice");
    let mut best = 0;
    let mut best_v = row[0];
    for (i, &v) in row.iter().enumerate().skip(1) {
        if v > best_v {
            best = i;
            best_v = v;
        }
    }
    best
}

/// Per-row argmax of a matrix.
pub fn argmax_rows(m: &DenseMatrix) -> Vec<usize> {
    (0..m.rows()).map(|r| argmax(m.row(r))).collect()
}

/// Euclidean (L2) distance between two slices.
///
/// # Panics
/// Panics (debug) if lengths differ.
pub fn l2_distance(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for (&x, &y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc.sqrt()
}

/// L2 norm of each row, computed in parallel for large matrices.
pub fn row_l2_norms(m: &DenseMatrix) -> Vec<f32> {
    let cols = m.cols();
    par_map_range(m.rows(), cols, |r| {
        m.row(r).iter().map(|v| v * v).sum::<f32>().sqrt()
    })
}

/// Mean of all elements (`0.0` for empty matrices).
pub fn mean(m: &DenseMatrix) -> f32 {
    if m.as_slice().is_empty() {
        return 0.0;
    }
    m.as_slice().iter().sum::<f32>() / m.as_slice().len() as f32
}

/// Scalar sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Dot product of two slices.
///
/// # Panics
/// Panics (debug) if lengths differ.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc += x * y;
    }
    acc
}

/// Classification accuracy of `pred` against integer `labels`, restricted to
/// `eval_idx` (indices into both arrays).
pub fn accuracy(pred: &[usize], labels: &[u32], eval_idx: &[usize]) -> f64 {
    if eval_idx.is_empty() {
        return 0.0;
    }
    let correct = eval_idx
        .iter()
        .filter(|&&i| pred[i] == labels[i] as usize)
        .count();
    correct as f64 / eval_idx.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut m = DenseMatrix::from_fn(4, 5, |r, c| (r as f32 - c as f32) * 3.0);
        softmax_rows(&mut m);
        for r in 0..4 {
            let s: f32 = m.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {r} sums to {s}");
            assert!(m.row(r).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let mut a = vec![1.0f32, 2.0, 3.0];
        let mut b = vec![1001.0f32, 1002.0, 1003.0];
        softmax_slice(&mut a);
        softmax_slice(&mut b);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_handles_neg_infinity_row() {
        let mut row = vec![f32::NEG_INFINITY; 4];
        softmax_slice(&mut row);
        assert!(row.iter().all(|&v| (v - 0.25).abs() < 1e-6));
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let src = vec![0.3f32, -1.2, 2.5, 0.0];
        let mut ls = src.clone();
        log_softmax_slice(&mut ls);
        let mut sm = src.clone();
        softmax_slice(&mut sm);
        for (l, s) in ls.iter().zip(sm.iter()) {
            assert!((l.exp() - s).abs() < 1e-5);
        }
    }

    #[test]
    fn temperature_flattens_distribution() {
        let src = vec![1.0f32, 3.0];
        let mut hot = src.clone();
        softmax_slice_with_temperature(&mut hot, 10.0);
        let mut cold = src.clone();
        softmax_slice_with_temperature(&mut cold, 0.1);
        assert!(hot[1] - hot[0] < cold[1] - cold[0]);
        assert!(cold[1] > 0.999);
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }

    #[test]
    fn l2_distance_basic() {
        assert!((l2_distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-6);
        assert_eq!(l2_distance(&[], &[]), 0.0);
    }

    #[test]
    fn row_l2_norms_match_manual() {
        let m = DenseMatrix::from_fn(3, 2, |r, _| (r + 1) as f32);
        let n = row_l2_norms(&m);
        for (r, v) in n.iter().enumerate() {
            let want = ((r + 1) as f32) * 2.0f32.sqrt();
            assert!((v - want).abs() < 1e-5);
        }
    }

    #[test]
    fn accuracy_counts_matches() {
        let pred = vec![0, 1, 2, 1];
        let labels = vec![0u32, 1, 0, 1];
        let acc = accuracy(&pred, &labels, &[0, 1, 2, 3]);
        assert!((acc - 0.75).abs() < 1e-9);
        assert_eq!(accuracy(&pred, &labels, &[]), 0.0);
    }

    #[test]
    fn sigmoid_range_and_symmetry() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-6);
    }
}
