//! Weight initialisation helpers.
//!
//! All randomness in the workspace flows through caller-provided
//! [`rand::Rng`] instances seeded at the experiment level, so every result
//! in EXPERIMENTS.md is reproducible bit-for-bit on the same toolchain.

use crate::dense::DenseMatrix;
use rand::Rng;

/// Glorot/Xavier uniform initialisation: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. The default for linear layers.
pub fn glorot_uniform<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> DenseMatrix {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    let mut m = DenseMatrix::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = rng.gen_range(-a..=a);
    }
    m
}

/// He/Kaiming uniform initialisation: `U(-a, a)` with `a = sqrt(6 / fan_in)`.
/// Used for layers followed by ReLU.
pub fn he_uniform<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> DenseMatrix {
    let a = (6.0 / rows.max(1) as f32).sqrt();
    let mut m = DenseMatrix::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = rng.gen_range(-a..=a);
    }
    m
}

/// Standard normal matrix scaled by `std`.
pub fn gaussian<R: Rng>(rows: usize, cols: usize, std: f32, rng: &mut R) -> DenseMatrix {
    let mut m = DenseMatrix::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = sample_standard_normal(rng) * std;
    }
    m
}

/// Box–Muller standard normal sample.
///
/// `rand`'s distribution machinery is avoided on purpose: this keeps the
/// exact bit pattern of generated datasets independent of `rand_distr`
/// version bumps.
pub fn sample_standard_normal<R: Rng>(rng: &mut R) -> f32 {
    // Reject u1 == 0 to avoid ln(0).
    let mut u1: f32 = rng.gen();
    while u1 <= f32::MIN_POSITIVE {
        u1 = rng.gen();
    }
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn glorot_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = glorot_uniform(64, 32, &mut rng);
        let a = (6.0 / 96.0f32).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= a + 1e-6));
        // Not all zero.
        assert!(m.max_abs() > 0.0);
    }

    #[test]
    fn he_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(8);
        let m = he_uniform(50, 10, &mut rng);
        let a = (6.0 / 50.0f32).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= a + 1e-6));
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(9);
        let m = gaussian(200, 50, 2.0, &mut rng);
        let n = m.as_slice().len() as f32;
        let mean = m.as_slice().iter().sum::<f32>() / n;
        let var = m
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / n;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = glorot_uniform(8, 8, &mut StdRng::seed_from_u64(42));
        let b = glorot_uniform(8, 8, &mut StdRng::seed_from_u64(42));
        assert_eq!(a.as_slice(), b.as_slice());
    }
}
