//! Property-based tests for the dense kernels.

use nai_linalg::ops;
use nai_linalg::DenseMatrix;
use proptest::prelude::*;

fn small_matrix(max_dim: usize) -> impl Strategy<Value = DenseMatrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| DenseMatrix::from_vec(r, c, data))
    })
}

fn paired_matmul_operands(max_dim: usize) -> impl Strategy<Value = (DenseMatrix, DenseMatrix)> {
    (1..=max_dim, 1..=max_dim, 1..=max_dim).prop_flat_map(|(m, k, n)| {
        let a = proptest::collection::vec(-5.0f32..5.0, m * k)
            .prop_map(move |d| DenseMatrix::from_vec(m, k, d));
        let b = proptest::collection::vec(-5.0f32..5.0, k * n)
            .prop_map(move |d| DenseMatrix::from_vec(k, n, d));
        (a, b)
    })
}

fn naive_matmul(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let mut out = DenseMatrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0f64;
            for k in 0..a.cols() {
                acc += a.get(i, k) as f64 * b.get(k, j) as f64;
            }
            out.set(i, j, acc as f32);
        }
    }
    out
}

proptest! {
    #[test]
    fn matmul_agrees_with_naive((a, b) in paired_matmul_operands(12)) {
        let got = a.matmul(&b).unwrap();
        let want = naive_matmul(&a, &b);
        for (x, y) in got.as_slice().iter().zip(want.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn transpose_variants_consistent((a, b) in paired_matmul_operands(10)) {
        // (A·B)ᵀ == Bᵀ·Aᵀ, exercised through the fused kernels.
        let ab_t = a.matmul(&b).unwrap().transpose();
        let bt_at = b.transpose().matmul(&a.transpose()).unwrap();
        for (x, y) in ab_t.as_slice().iter().zip(bt_at.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn softmax_rows_are_distributions(m in small_matrix(10)) {
        let mut s = m.clone();
        ops::softmax_rows(&mut s);
        for r in 0..s.rows() {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(r).iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
        }
    }

    #[test]
    fn softmax_preserves_argmax(m in small_matrix(10)) {
        let before: Vec<usize> = ops::argmax_rows(&m);
        let mut s = m.clone();
        ops::softmax_rows(&mut s);
        prop_assert_eq!(before, ops::argmax_rows(&s));
    }

    #[test]
    fn l2_distance_triangle_inequality(
        a in proptest::collection::vec(-10.0f32..10.0, 8),
        b in proptest::collection::vec(-10.0f32..10.0, 8),
        c in proptest::collection::vec(-10.0f32..10.0, 8),
    ) {
        let ab = ops::l2_distance(&a, &b);
        let bc = ops::l2_distance(&b, &c);
        let ac = ops::l2_distance(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-4);
    }

    #[test]
    fn gather_rows_roundtrip(m in small_matrix(10)) {
        let all: Vec<usize> = (0..m.rows()).collect();
        let g = m.gather_rows(&all).unwrap();
        prop_assert_eq!(g.as_slice(), m.as_slice());
    }

    #[test]
    fn hconcat_widths_add(a in small_matrix(8)) {
        let b = DenseMatrix::zeros(a.rows(), 3);
        let c = a.hconcat(&b).unwrap();
        prop_assert_eq!(c.cols(), a.cols() + 3);
        prop_assert_eq!(c.rows(), a.rows());
    }
}
