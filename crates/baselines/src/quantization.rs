//! Quantization baseline: INT8 post-training quantization of the
//! classifier.
//!
//! Feature propagation stays in f32 at full fixed depth — quantization only
//! touches the classification stage, which is why the paper finds its
//! acceleration limited: on large graphs the propagation term `k·m·f`
//! dwarfs `n·f²`, so shrinking operand width in the classifier barely
//! moves total cost. Works with every base model: the model-specific
//! combination (concat / average / GAMLP attention) stays in f32 and only
//! the MLP head is quantized, mirroring PyTorch dynamic quantization of
//! `nn.Linear` parameters.

use crate::common::{make_run, BaselineRun};
use nai_core::inference::NaiEngine;
use nai_linalg::ops::argmax_rows;
use nai_nn::quant::QuantizedMlp;
use std::time::Instant;

/// INT8-quantized fixed-depth inference over a trained engine.
pub struct QuantizedModel {
    quantized_head: QuantizedMlp,
    depth: usize,
}

impl QuantizedModel {
    /// Quantizes the depth-`k` classifier head of a trained engine.
    pub fn from_engine(engine: &NaiEngine) -> Self {
        let depth = engine.k();
        let clf = engine.classifier(depth);
        Self {
            quantized_head: QuantizedMlp::from_mlp(&clf.mlp),
            depth,
        }
    }

    /// Fixed-depth inductive inference with the quantized head.
    pub fn infer(
        &self,
        engine: &NaiEngine,
        test_nodes: &[u32],
        labels: &[u32],
        batch_size: usize,
    ) -> BaselineRun {
        let start = Instant::now();
        let mut feature_time = std::time::Duration::ZERO;
        let mut macs = nai_core::macs::MacsBreakdown::default();
        let mut predictions = Vec::with_capacity(test_nodes.len());
        let mut batches = 0usize;
        let clf = engine.classifier(self.depth);
        // One scratch across all batches: workspace setup is paid once,
        // not O(n) per chunk.
        let mut scratch = nai_core::active::EngineScratch::new();
        for chunk in test_nodes.chunks(batch_size.max(1)) {
            batches += 1;
            let (history, prop_macs, fp) =
                engine.propagate_only_with(chunk, self.depth, &mut scratch);
            macs.add(&prop_macs);
            feature_time += fp;
            let input = clf.combine_input(&history);
            macs.classification += chunk.len() as u64
                * (clf.combine_macs_per_node() + self.quantized_head.macs_per_row());
            let logits = self.quantized_head.forward(&input);
            predictions.extend(argmax_rows(&logits));
        }
        make_run(
            predictions,
            test_nodes,
            labels,
            macs,
            start.elapsed(),
            feature_time,
            batches,
        )
    }
}

/// Extension: **quantized adaptive** inference — NAI's personalized depths
/// combined with INT8 classifier heads at *every* exit depth.
///
/// The paper evaluates quantization only at fixed depth `k`; stacking it
/// on NAP is the natural composition of the two acceleration algorithms
/// (§V): propagation shrinks via early exits, classification via INT8.
/// Built on [`NaiEngine::infer_with_heads`], so propagation, NAP, and
/// frontier bookkeeping are byte-identical with the f32 engine — only the
/// exit classification differs.
pub struct QuantizedNai {
    heads: Vec<QuantizedMlp>,
}

impl QuantizedNai {
    /// Quantizes every per-depth classifier head of a trained engine.
    pub fn from_engine(engine: &NaiEngine) -> Self {
        let heads = engine
            .classifiers()
            .iter()
            .map(|c| QuantizedMlp::from_mlp(&c.mlp))
            .collect();
        Self { heads }
    }

    /// Adaptive inference with INT8 heads under any
    /// [`nai_core::config::InferenceConfig`].
    ///
    /// # Panics
    /// Same contract as [`NaiEngine::infer`].
    pub fn infer(
        &self,
        engine: &NaiEngine,
        test_nodes: &[u32],
        labels: &[u32],
        cfg: &nai_core::config::InferenceConfig,
    ) -> nai_core::inference::InferenceResult {
        engine.infer_with_heads(
            test_nodes,
            labels,
            cfg,
            &|l, feats| {
                let input = engine.classifier(l).combine_input(feats);
                self.heads[l - 1].forward(&input)
            },
            &|l| engine.classifier(l).combine_macs_per_node() + self.heads[l - 1].macs_per_row(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nai_core::config::{InferenceConfig, PipelineConfig};
    use nai_core::pipeline::NaiPipeline;
    use nai_graph::generators::{generate, GeneratorConfig};
    use nai_graph::InductiveSplit;
    use nai_models::ModelKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_kind(kind: ModelKind) {
        let g = generate(
            &GeneratorConfig {
                num_nodes: 300,
                num_classes: 3,
                feature_dim: 8,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(500),
        );
        let split = InductiveSplit::random(300, 0.5, 0.2, &mut StdRng::seed_from_u64(501));
        let cfg = PipelineConfig {
            k: 3,
            hidden: vec![16],
            epochs: 40,
            patience: 10,
            lr: 0.02,
            use_multi_scale: false,
            ..PipelineConfig::default()
        };
        let trained = NaiPipeline::new(kind, cfg).train(&g, &split, false);
        let vanilla = trained
            .engine
            .infer(&split.test, &g.labels, &InferenceConfig::fixed(3));
        let quant = QuantizedModel::from_engine(&trained.engine);
        let run = quant.infer(&trained.engine, &split.test, &g.labels, 500);
        assert!(
            (run.report.accuracy - vanilla.report.accuracy).abs() < 0.06,
            "{kind:?}: quantized {} vs f32 {}",
            run.report.accuracy,
            vanilla.report.accuracy
        );
        assert_eq!(
            run.report.macs.propagation, vanilla.report.macs.propagation,
            "{kind:?}: propagation MACs must match vanilla"
        );
    }

    #[test]
    fn quantized_sgc_close_to_f32_with_same_fp_macs() {
        check_kind(ModelKind::Sgc);
    }

    #[test]
    fn quantized_sign_close_to_f32() {
        check_kind(ModelKind::Sign);
    }

    #[test]
    fn quantized_gamlp_close_to_f32() {
        check_kind(ModelKind::Gamlp);
    }

    fn trained_sgc() -> (
        nai_graph::Graph,
        InductiveSplit,
        nai_core::pipeline::TrainedNai,
    ) {
        let g = generate(
            &GeneratorConfig {
                num_nodes: 300,
                num_classes: 3,
                feature_dim: 8,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(510),
        );
        let split = InductiveSplit::random(300, 0.5, 0.2, &mut StdRng::seed_from_u64(511));
        let cfg = PipelineConfig {
            k: 3,
            hidden: vec![16],
            epochs: 40,
            patience: 10,
            lr: 0.02,
            use_multi_scale: false,
            ..PipelineConfig::default()
        };
        let t = NaiPipeline::new(ModelKind::Sgc, cfg).train(&g, &split, false);
        (g, split, t)
    }

    #[test]
    fn quantized_nai_matches_depths_and_tracks_f32_accuracy() {
        let (g, split, trained) = trained_sgc();
        let cfg = InferenceConfig::distance(0.5, 1, 3);
        let f32_run = trained.engine.infer(&split.test, &g.labels, &cfg);
        let qnai = QuantizedNai::from_engine(&trained.engine);
        let q_run = qnai.infer(&trained.engine, &split.test, &g.labels, &cfg);
        // Exits depend only on features/stationary state, never on the
        // head — depth decisions must be identical.
        assert_eq!(f32_run.depths, q_run.depths);
        assert!(
            (q_run.report.accuracy - f32_run.report.accuracy).abs() < 0.06,
            "quantized {} vs f32 {}",
            q_run.report.accuracy,
            f32_run.report.accuracy
        );
        // Same propagation work, same NAP work.
        assert_eq!(
            f32_run.report.macs.propagation,
            q_run.report.macs.propagation
        );
        assert_eq!(f32_run.report.macs.nap, q_run.report.macs.nap);
    }

    #[test]
    fn quantized_nai_works_at_every_fixed_depth() {
        let (g, split, trained) = trained_sgc();
        let qnai = QuantizedNai::from_engine(&trained.engine);
        for d in 1..=3 {
            let run = qnai.infer(
                &trained.engine,
                &split.test,
                &g.labels,
                &InferenceConfig::fixed(d),
            );
            assert!(run.depths.iter().all(|&x| x == d));
            assert!(run.report.accuracy > 0.4, "depth {d}");
        }
    }
}
