//! NOSMOG (Tian et al., ICLR 2023): GLNN plus explicit structural
//! (position) features.
//!
//! The original uses DeepWalk embeddings; offline we substitute
//! random-projected random-walk diffusion `P = (D̃⁻¹ Ã)^t · R` with a
//! Gaussian projection `R`, which carries the same class of positional
//! signal (multi-hop co-visit structure) — see DESIGN.md §3. At inference,
//! unseen nodes aggregate the mean position of their *observed* neighbors
//! via matrix products, the re-implementation the paper describes in its
//! footnote 3; this is NOSMOG's (small) feature-processing cost. The
//! adversarial feature augmentation of the original is omitted — it
//! targets noise robustness, not the latency/accuracy axes measured here.

use crate::common::{make_run, teacher_logits_on_train, BaselineRun};
use nai_core::macs::MacsBreakdown;
use nai_core::pipeline::TrainedNai;
use nai_graph::{normalized_adjacency, Convolution, Graph, InductiveSplit};
use nai_linalg::ops::argmax_rows;
use nai_linalg::DenseMatrix;
use nai_nn::mlp::{Mlp, MlpConfig};
use nai_nn::trainer::{train, Distillation, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// NOSMOG training knobs.
#[derive(Debug, Clone)]
pub struct NosmogConfig {
    /// Position-embedding dimensionality.
    pub position_dim: usize,
    /// Random-walk diffusion steps for the position features.
    pub walk_steps: usize,
    /// Student hidden widths.
    pub hidden: Vec<usize>,
    /// Dropout.
    pub dropout: f32,
    /// KD temperature.
    pub temperature: f32,
    /// KD mixing weight.
    pub lambda: f32,
    /// Optimisation settings.
    pub train: TrainConfig,
}

impl Default for NosmogConfig {
    fn default() -> Self {
        Self {
            position_dim: 16,
            walk_steps: 3,
            hidden: vec![128],
            dropout: 0.1,
            temperature: 1.5,
            lambda: 0.7,
            train: TrainConfig::default(),
        }
    }
}

/// Trained NOSMOG student.
pub struct Nosmog {
    mlp: Mlp,
    /// Positions of observed (train ∪ val) nodes in *global* coordinates;
    /// unobserved rows are zero.
    observed_positions: DenseMatrix,
    /// Which global nodes are observed.
    observed_mask: Vec<bool>,
    position_dim: usize,
}

impl Nosmog {
    /// Computes position features on a graph: `(D̃⁻¹ Ã)^t · R`.
    fn diffuse_positions(graph: &Graph, dim: usize, steps: usize, rng: &mut StdRng) -> DenseMatrix {
        let norm = normalized_adjacency(&graph.adj, Convolution::ReverseTransition);
        let mut p = nai_linalg::init::gaussian(graph.num_nodes(), dim, 1.0, rng);
        for _ in 0..steps {
            p = norm.spmm(&p);
        }
        p
    }

    /// Distills the teacher into an MLP over `[features ‖ positions]`.
    pub fn distill(
        trained: &TrainedNai,
        graph: &Graph,
        split: &InductiveSplit,
        cfg: &NosmogConfig,
        seed: u64,
    ) -> Self {
        let (view, teacher_logits) = teacher_logits_on_train(trained, graph, split);
        let mut rng = StdRng::seed_from_u64(seed);
        // Positions live on the training graph; scatter into global rows.
        let local_positions =
            Self::diffuse_positions(&view.graph, cfg.position_dim, cfg.walk_steps, &mut rng);
        let mut observed_positions = DenseMatrix::zeros(graph.num_nodes(), cfg.position_dim);
        let mut observed_mask = vec![false; graph.num_nodes()];
        for (local, &global) in view.global_of.iter().enumerate() {
            observed_positions
                .row_mut(global as usize)
                .copy_from_slice(local_positions.row(local));
            observed_mask[global as usize] = true;
        }

        let f = graph.feature_dim();
        let c = graph.num_classes;
        let mut mlp = Mlp::new(
            &MlpConfig {
                in_dim: f + cfg.position_dim,
                hidden: cfg.hidden.clone(),
                out_dim: c,
                dropout: cfg.dropout,
            },
            &mut rng,
        );
        let build_input = |rows: &[usize]| -> DenseMatrix {
            let x = view.graph.features.gather_rows(rows).expect("rows");
            let p = local_positions.gather_rows(rows).expect("rows");
            x.hconcat(&p).expect("aligned")
        };
        let train_rows: Vec<usize> = view.train_local.iter().map(|&v| v as usize).collect();
        let val_rows: Vec<usize> = view.val_local.iter().map(|&v| v as usize).collect();
        let x_train = build_input(&train_rows);
        let y_train: Vec<u32> = train_rows.iter().map(|&r| view.graph.labels[r]).collect();
        let x_val = build_input(&val_rows);
        let y_val: Vec<u32> = val_rows.iter().map(|&r| view.graph.labels[r]).collect();
        train(
            &mut mlp,
            &x_train,
            &y_train,
            Some(Distillation {
                teacher_logits: &teacher_logits,
                temperature: cfg.temperature,
                lambda: cfg.lambda,
            }),
            &x_val,
            &y_val,
            &cfg.train,
        );
        Self {
            mlp,
            observed_positions,
            observed_mask,
            position_dim: cfg.position_dim,
        }
    }

    /// Inductive inference: aggregate neighbor positions (feature
    /// processing), then MLP forward.
    pub fn infer(
        &self,
        graph: &Graph,
        test_nodes: &[u32],
        labels: &[u32],
        batch_size: usize,
    ) -> BaselineRun {
        let start = Instant::now();
        let mut feature_time = std::time::Duration::ZERO;
        let mut macs = MacsBreakdown::default();
        let mut predictions = Vec::with_capacity(test_nodes.len());
        let mut batches = 0usize;
        for chunk in test_nodes.chunks(batch_size.max(1)) {
            batches += 1;
            let fp = Instant::now();
            // Position of an unseen node = mean position of its observed
            // neighbors (zero when none).
            let mut pos = DenseMatrix::zeros(chunk.len(), self.position_dim);
            for (t, &node) in chunk.iter().enumerate() {
                let mut count = 0f32;
                let row = pos.row_mut(t);
                for (j, _) in graph.adj.row_iter(node as usize) {
                    if self.observed_mask[j as usize] {
                        count += 1.0;
                        for (o, &p) in row.iter_mut().zip(self.observed_positions.row(j as usize)) {
                            *o += p;
                        }
                        macs.propagation += self.position_dim as u64;
                    }
                }
                if count > 0.0 {
                    for o in row.iter_mut() {
                        *o /= count;
                    }
                }
            }
            feature_time += fp.elapsed();
            let idx: Vec<usize> = chunk.iter().map(|&v| v as usize).collect();
            let x = graph.features.gather_rows(&idx).expect("test rows");
            let input = x.hconcat(&pos).expect("aligned");
            let logits = self.mlp.forward(&input);
            macs.classification += chunk.len() as u64 * self.mlp.macs_per_row();
            predictions.extend(argmax_rows(&logits));
        }
        make_run(
            predictions,
            test_nodes,
            labels,
            macs,
            start.elapsed(),
            feature_time,
            batches,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nai_core::config::PipelineConfig;
    use nai_core::pipeline::NaiPipeline;
    use nai_graph::generators::{generate, GeneratorConfig};
    use nai_models::ModelKind;

    #[test]
    fn nosmog_runs_and_uses_position_features() {
        let g = generate(
            &GeneratorConfig {
                num_nodes: 300,
                num_classes: 3,
                feature_dim: 8,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(300),
        );
        let split = InductiveSplit::random(300, 0.5, 0.2, &mut StdRng::seed_from_u64(301));
        let cfg = PipelineConfig {
            k: 2,
            hidden: vec![16],
            epochs: 30,
            patience: 8,
            lr: 0.02,
            use_multi_scale: false,
            ..PipelineConfig::default()
        };
        let trained = NaiPipeline::new(ModelKind::Sgc, cfg).train(&g, &split, false);
        let nosmog = Nosmog::distill(
            &trained,
            &g,
            &split,
            &NosmogConfig {
                train: TrainConfig {
                    epochs: 50,
                    patience: 12,
                    adam: nai_nn::adam::Adam::new(0.02, 0.0),
                    ..TrainConfig::default()
                },
                ..NosmogConfig::default()
            },
            302,
        );
        let run = nosmog.infer(&g, &split.test, &g.labels, 64);
        assert!(run.report.accuracy > 0.4, "acc {}", run.report.accuracy);
        // Position aggregation produces nonzero FP MACs (unlike GLNN) but
        // far less than full propagation.
        assert!(run.report.macs.feature_processing() > 0);
        assert!(run.report.macs.feature_processing() < run.report.macs.classification);
    }

    #[test]
    fn position_diffusion_is_smoothing() {
        let g = nai_graph::generators::path_graph(20, 4);
        let mut rng = StdRng::seed_from_u64(303);
        let p0 = Nosmog::diffuse_positions(&g, 8, 0, &mut rng);
        let mut rng = StdRng::seed_from_u64(303);
        let p3 = Nosmog::diffuse_positions(&g, 8, 3, &mut rng);
        let var = |m: &DenseMatrix| {
            let mean = m.as_slice().iter().sum::<f32>() / m.as_slice().len() as f32;
            m.as_slice()
                .iter()
                .map(|v| (v - mean) * (v - mean))
                .sum::<f32>()
        };
        assert!(var(&p3) < var(&p0), "diffusion should smooth positions");
    }
}
