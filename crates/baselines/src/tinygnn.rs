//! TinyGNN (Yan et al., KDD 2020): a single-layer GNN distilled from a
//! deep teacher.
//!
//! The peer-aware module (PAM) is realised as scaled dot-product neighbor
//! attention (`nai-nn::attention`); the student combines the attended
//! neighborhood summary with the node's own features and classifies with a
//! small MLP. Only 1-hop neighbors are touched at inference — but the
//! attention projections and per-edge scores make its MACs grow with batch
//! size and feature dimension, reproducing the cost signature in the
//! paper's Table V and Fig. 5.

use crate::common::{make_run, teacher_logits_on_train, BaselineRun};
use nai_core::macs::MacsBreakdown;
use nai_core::pipeline::TrainedNai;
use nai_graph::{Graph, InductiveSplit};
use nai_linalg::ops::argmax_rows;
use nai_linalg::DenseMatrix;
use nai_nn::adam::Adam;
use nai_nn::attention::{NeighborAttention, NeighborBatch};
use nai_nn::loss::{distillation_loss, softmax_cross_entropy};
use nai_nn::mlp::{Mlp, MlpConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Instant;

/// TinyGNN knobs.
#[derive(Debug, Clone)]
pub struct TinyGnnConfig {
    /// Attention output dimensionality.
    pub attn_dim: usize,
    /// Max sampled neighbors per node (the original samples peers).
    pub max_neighbors: usize,
    /// Head hidden widths.
    pub hidden: Vec<usize>,
    /// KD temperature.
    pub temperature: f32,
    /// KD mixing weight.
    pub lambda: f32,
    /// Epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
}

impl Default for TinyGnnConfig {
    fn default() -> Self {
        Self {
            attn_dim: 32,
            max_neighbors: 10,
            hidden: vec![64],
            temperature: 1.5,
            lambda: 0.7,
            epochs: 40,
            batch_size: 128,
            lr: 0.01,
        }
    }
}

/// Trained TinyGNN student.
pub struct TinyGnn {
    attention: NeighborAttention,
    head: Mlp,
    max_neighbors: usize,
}

impl TinyGnn {
    /// Samples up to `cap` neighbors (plus self) for each node; returns
    /// batch structure indexing into the *global* feature matrix.
    fn neighbor_batch<RNG: rand::Rng>(
        graph: &Graph,
        nodes: &[u32],
        cap: usize,
        rng: &mut RNG,
    ) -> NeighborBatch {
        let lists: Vec<Vec<u32>> = nodes
            .iter()
            .map(|&u| {
                let mut nbrs: Vec<u32> = graph.adj.row_indices(u as usize).to_vec();
                if nbrs.len() > cap {
                    nbrs.shuffle(rng);
                    nbrs.truncate(cap);
                }
                nbrs.push(u); // self participates in the peer set
                nbrs
            })
            .collect();
        NeighborBatch::from_lists(&lists)
    }

    /// Distills the deep teacher into the single-layer student on the
    /// training graph.
    pub fn distill(
        trained: &TrainedNai,
        graph: &Graph,
        split: &InductiveSplit,
        cfg: &TinyGnnConfig,
        seed: u64,
    ) -> Self {
        let (view, teacher_logits) = teacher_logits_on_train(trained, graph, split);
        let f = graph.feature_dim();
        let c = graph.num_classes;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut attention = NeighborAttention::new(f, cfg.attn_dim, &mut rng);
        let mut head = Mlp::new(
            &MlpConfig {
                in_dim: f + cfg.attn_dim,
                hidden: cfg.hidden.clone(),
                out_dim: c,
                dropout: 0.0,
            },
            &mut rng,
        );
        let opt = Adam::new(cfg.lr, 0.0);
        let n = view.train_local.len();
        let batch = cfg.batch_size.min(n).max(1);
        let mut order: Vec<usize> = (0..n).collect();
        let t2 = cfg.temperature * cfg.temperature;
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(batch) {
                let nodes: Vec<u32> = chunk.iter().map(|&p| view.train_local[p]).collect();
                let idx: Vec<usize> = nodes.iter().map(|&v| v as usize).collect();
                let x_self = view.graph.features.gather_rows(&idx).expect("rows");
                let nb = Self::neighbor_batch(&view.graph, &nodes, cfg.max_neighbors, &mut rng);
                attention.zero_grads();
                head.zero_grads();
                let summary = attention.forward(&x_self, &view.graph.features, &nb, true);
                let input = x_self.hconcat(&summary).expect("aligned");
                let logits = head.forward_train(&input, &mut rng);
                let yb: Vec<u32> = idx.iter().map(|&r| view.graph.labels[r]).collect();
                let tb = teacher_logits.gather_rows(chunk).expect("teacher rows");
                let (_, mut d) = softmax_cross_entropy(&logits, &yb);
                let (_, dkd) = distillation_loss(&logits, &tb, cfg.temperature);
                d.scale(1.0 - cfg.lambda);
                d.axpy(cfg.lambda * t2, &dkd).expect("shapes");
                let dinput = head.backward(&d);
                // Split the input gradient: first f cols belong to raw
                // features (leaves), the rest to the attention summary.
                let mut dsummary = DenseMatrix::zeros(dinput.rows(), cfg.attn_dim);
                for r in 0..dinput.rows() {
                    dsummary.row_mut(r).copy_from_slice(&dinput.row(r)[f..]);
                }
                attention.backward(&dsummary);
                head.apply_grads(&opt);
                attention.apply_grads(&opt);
            }
        }
        Self {
            attention,
            head,
            max_neighbors: cfg.max_neighbors,
        }
    }

    /// Inductive inference with full-graph 1-hop neighbors.
    pub fn infer(
        &mut self,
        graph: &Graph,
        test_nodes: &[u32],
        labels: &[u32],
        batch_size: usize,
        seed: u64,
    ) -> BaselineRun {
        let start = Instant::now();
        let mut feature_time = std::time::Duration::ZERO;
        let mut macs = MacsBreakdown::default();
        let mut predictions = Vec::with_capacity(test_nodes.len());
        let mut rng = StdRng::seed_from_u64(seed);
        let f = graph.feature_dim();
        let mut batches = 0usize;
        for chunk in test_nodes.chunks(batch_size.max(1)) {
            batches += 1;
            let fp = Instant::now();
            let idx: Vec<usize> = chunk.iter().map(|&v| v as usize).collect();
            let x_self = graph.features.gather_rows(&idx).expect("rows");
            let nb = Self::neighbor_batch(graph, chunk, self.max_neighbors, &mut rng);
            let summary = self.attention.forward(&x_self, &graph.features, &nb, false);
            // Attention = feature processing in the paper's accounting.
            macs.propagation += self.attention.macs(
                chunk.len() as u64,
                nb.total_neighbors() as u64,
                nb.total_neighbors() as u64,
                f as u64,
            );
            feature_time += fp.elapsed();
            let input = x_self.hconcat(&summary).expect("aligned");
            let logits = self.head.forward(&input);
            macs.classification += chunk.len() as u64 * self.head.macs_per_row();
            predictions.extend(argmax_rows(&logits));
        }
        make_run(
            predictions,
            test_nodes,
            labels,
            macs,
            start.elapsed(),
            feature_time,
            batches,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nai_core::config::PipelineConfig;
    use nai_core::pipeline::NaiPipeline;
    use nai_graph::generators::{generate, GeneratorConfig};
    use nai_models::ModelKind;

    #[test]
    fn tinygnn_trains_and_attention_dominates_macs() {
        let g = generate(
            &GeneratorConfig {
                num_nodes: 300,
                num_classes: 3,
                feature_dim: 8,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(400),
        );
        let split = InductiveSplit::random(300, 0.5, 0.2, &mut StdRng::seed_from_u64(401));
        let cfg = PipelineConfig {
            k: 2,
            hidden: vec![16],
            epochs: 30,
            patience: 8,
            lr: 0.02,
            use_multi_scale: false,
            ..PipelineConfig::default()
        };
        let trained = NaiPipeline::new(ModelKind::Sgc, cfg).train(&g, &split, false);
        let mut tiny = TinyGnn::distill(
            &trained,
            &g,
            &split,
            &TinyGnnConfig {
                epochs: 15,
                ..TinyGnnConfig::default()
            },
            402,
        );
        let run = tiny.infer(&g, &split.test, &g.labels, 64, 403);
        assert!(run.report.accuracy > 0.4, "acc {}", run.report.accuracy);
        // The attention projections are the dominant cost (the paper's
        // observation about the peer-aware module).
        assert!(run.report.macs.propagation > run.report.macs.classification / 4);
    }

    #[test]
    fn neighbor_batch_caps_and_includes_self() {
        let g = nai_graph::generators::star_graph(30, 4);
        let mut rng = StdRng::seed_from_u64(404);
        let nb = TinyGnn::neighbor_batch(&g, &[0], 5, &mut rng);
        // Hub: 29 neighbors capped at 5, plus self.
        assert_eq!(nb.total_neighbors(), 6);
        assert!(nb.neighbor_rows.contains(&0));
    }
}
