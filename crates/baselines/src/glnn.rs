//! GLNN (Zhang et al., ICLR 2022): distill the GNN into a plain MLP.
//!
//! The student sees only raw node features — no propagation at inference,
//! hence the smallest possible MACs — but, as the paper's Table V shows,
//! discarding topology hurts on *inductive* (unseen) nodes. Following the
//! paper's protocol, the student's hidden width is a multiple of the
//! teacher's to partially compensate.

use crate::common::{make_run, teacher_logits_on_train, BaselineRun};
use nai_core::macs::MacsBreakdown;
use nai_core::pipeline::TrainedNai;
use nai_graph::{Graph, InductiveSplit};
use nai_linalg::ops::argmax_rows;
use nai_nn::mlp::{Mlp, MlpConfig};
use nai_nn::trainer::{train, Distillation, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Trained GLNN student.
pub struct Glnn {
    mlp: Mlp,
}

/// GLNN training knobs.
#[derive(Debug, Clone)]
pub struct GlnnConfig {
    /// Student hidden width multiplier over `hidden` (the paper uses 4–8×
    /// on the larger datasets).
    pub hidden: Vec<usize>,
    /// Dropout.
    pub dropout: f32,
    /// KD temperature.
    pub temperature: f32,
    /// KD mixing weight λ.
    pub lambda: f32,
    /// Optimisation settings.
    pub train: TrainConfig,
}

impl Default for GlnnConfig {
    fn default() -> Self {
        Self {
            hidden: vec![128],
            dropout: 0.1,
            temperature: 1.5,
            lambda: 0.7,
            train: TrainConfig::default(),
        }
    }
}

impl Glnn {
    /// Distills the deep teacher of `trained` into a raw-feature MLP.
    pub fn distill(
        trained: &TrainedNai,
        graph: &Graph,
        split: &InductiveSplit,
        cfg: &GlnnConfig,
        seed: u64,
    ) -> Self {
        let (view, teacher_logits) = teacher_logits_on_train(trained, graph, split);
        let f = graph.feature_dim();
        let c = graph.num_classes;
        let mut mlp = Mlp::new(
            &MlpConfig {
                in_dim: f,
                hidden: cfg.hidden.clone(),
                out_dim: c,
                dropout: cfg.dropout,
            },
            &mut StdRng::seed_from_u64(seed),
        );
        let train_rows: Vec<usize> = view.train_local.iter().map(|&v| v as usize).collect();
        let x_train = view.graph.features.gather_rows(&train_rows).expect("rows");
        let y_train: Vec<u32> = train_rows.iter().map(|&r| view.graph.labels[r]).collect();
        let val_rows: Vec<usize> = view.val_local.iter().map(|&v| v as usize).collect();
        let x_val = view.graph.features.gather_rows(&val_rows).expect("rows");
        let y_val: Vec<u32> = val_rows.iter().map(|&r| view.graph.labels[r]).collect();
        train(
            &mut mlp,
            &x_train,
            &y_train,
            Some(Distillation {
                teacher_logits: &teacher_logits,
                temperature: cfg.temperature,
                lambda: cfg.lambda,
            }),
            &x_val,
            &y_val,
            &cfg.train,
        );
        Self { mlp }
    }

    /// Inductive inference: plain MLP forward over raw features.
    pub fn infer(
        &self,
        graph: &Graph,
        test_nodes: &[u32],
        labels: &[u32],
        batch_size: usize,
    ) -> BaselineRun {
        let start = Instant::now();
        let mut macs = MacsBreakdown::default();
        let mut predictions = Vec::with_capacity(test_nodes.len());
        let mut batches = 0usize;
        for chunk in test_nodes.chunks(batch_size.max(1)) {
            batches += 1;
            let idx: Vec<usize> = chunk.iter().map(|&v| v as usize).collect();
            let x = graph.features.gather_rows(&idx).expect("test rows");
            let logits = self.mlp.forward(&x);
            macs.classification += chunk.len() as u64 * self.mlp.macs_per_row();
            predictions.extend(argmax_rows(&logits));
        }
        make_run(
            predictions,
            test_nodes,
            labels,
            macs,
            start.elapsed(),
            std::time::Duration::ZERO,
            batches,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nai_core::config::{InferenceConfig, PipelineConfig};
    use nai_core::pipeline::NaiPipeline;
    use nai_graph::generators::{generate, GeneratorConfig};
    use nai_models::ModelKind;

    fn setup() -> (Graph, InductiveSplit, TrainedNai) {
        let g = generate(
            &GeneratorConfig {
                num_nodes: 350,
                num_classes: 3,
                feature_dim: 8,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(200),
        );
        let split = InductiveSplit::random(350, 0.5, 0.2, &mut StdRng::seed_from_u64(201));
        let cfg = PipelineConfig {
            k: 3,
            hidden: vec![16],
            epochs: 40,
            patience: 10,
            lr: 0.02,
            distill: nai_core::config::DistillConfig {
                epochs: 10,
                ensemble_r: 2,
                ..Default::default()
            },
            ..PipelineConfig::default()
        };
        let trained = NaiPipeline::new(ModelKind::Sgc, cfg).train(&g, &split, false);
        (g, split, trained)
    }

    #[test]
    fn glnn_learns_but_propagation_free() {
        let (g, split, trained) = setup();
        let glnn = Glnn::distill(
            &trained,
            &g,
            &split,
            &GlnnConfig {
                train: TrainConfig {
                    epochs: 60,
                    patience: 15,
                    adam: nai_nn::adam::Adam::new(0.02, 0.0),
                    ..TrainConfig::default()
                },
                ..GlnnConfig::default()
            },
            77,
        );
        let run = glnn.infer(&g, &split.test, &g.labels, 100);
        // Better than chance (3 classes).
        assert!(run.report.accuracy > 0.40, "acc {}", run.report.accuracy);
        // Zero feature-processing MACs by construction; the vanilla engine
        // pays for propagation. (Total MACs only favour GLNN at realistic
        // feature dims — at toy scale its widened student dominates, which
        // is exactly the paper's `f²` vs `m·f` trade-off.)
        assert_eq!(run.report.macs.feature_processing(), 0);
        let vanilla = trained
            .engine
            .infer(&split.test, &g.labels, &InferenceConfig::fixed(3));
        assert!(vanilla.report.macs.feature_processing() > 0);
    }
}
