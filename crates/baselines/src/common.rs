//! Shared plumbing for baselines: teacher-logit extraction and the uniform
//! run report used by the bench harness.

use nai_core::macs::MacsBreakdown;
use nai_core::metrics::InferenceReport;
use nai_core::pipeline::TrainedNai;
use nai_graph::split::{build_training_view, TrainingView};
use nai_graph::{normalized_adjacency, Convolution, Graph, InductiveSplit};
use nai_linalg::DenseMatrix;
use nai_models::propagate_features;
use nai_models::train::gather_depth_feats;
use std::time::Duration;

/// Result of a baseline inference pass, aligned with the engine's report
/// shape so tables can mix methods.
#[derive(Debug, Clone)]
pub struct BaselineRun {
    /// Predicted class per test node (input order).
    pub predictions: Vec<usize>,
    /// Aggregate metrics.
    pub report: InferenceReport,
}

/// Builds a [`BaselineRun`] from raw pieces, computing accuracy against
/// full-graph labels.
pub fn make_run(
    predictions: Vec<usize>,
    test_nodes: &[u32],
    labels: &[u32],
    macs: MacsBreakdown,
    total_time: Duration,
    feature_time: Duration,
    batches: usize,
) -> BaselineRun {
    let eval: Vec<usize> = (0..test_nodes.len()).collect();
    let view: Vec<u32> = test_nodes.iter().map(|&v| labels[v as usize]).collect();
    let accuracy = nai_linalg::ops::accuracy(&predictions, &view, &eval);
    BaselineRun {
        report: InferenceReport {
            num_nodes: test_nodes.len(),
            accuracy,
            macs,
            total_time,
            feature_time,
            depth_histogram: vec![],
            batches,
        },
        predictions,
    }
}

/// Recomputes the training view and the teacher's logits on the training
/// nodes (rows aligned with `view.train_local`). All KD baselines distill
/// from the same deep teacher `f^(k)` that NAI uses, matching the paper's
/// protocol.
pub fn teacher_logits_on_train(
    trained: &TrainedNai,
    graph: &Graph,
    split: &InductiveSplit,
) -> (TrainingView, DenseMatrix) {
    let view = build_training_view(graph, split).expect("valid split");
    let norm = normalized_adjacency(&view.graph.adj, Convolution::Symmetric);
    let depth_feats = propagate_features(&norm, &view.graph.features, trained.k);
    let rows: Vec<usize> = view.train_local.iter().map(|&v| v as usize).collect();
    let feats = gather_depth_feats(&depth_feats, trained.k + 1, &rows);
    let logits = trained.engine.classifier(trained.k).forward(&feats);
    (view, logits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn make_run_computes_accuracy() {
        let run = make_run(
            vec![0, 1, 1],
            &[0, 1, 2],
            &[0, 1, 0],
            MacsBreakdown::default(),
            Duration::from_millis(5),
            Duration::ZERO,
            1,
        );
        assert!((run.report.accuracy - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(run.report.num_nodes, 3);
    }
}
