//! Inference-acceleration baselines compared against NAI in §IV.
//!
//! | baseline | idea | cost signature |
//! |----------|------|----------------|
//! | [`glnn::Glnn`] | distill the GNN teacher into a plain MLP on raw features | zero feature propagation — fastest, but ignores topology on unseen nodes |
//! | [`nosmog::Nosmog`] | GLNN + explicit position features aggregated from neighbors at inference | small FP cost for the position aggregation |
//! | [`tinygnn::TinyGnn`] | single-layer GNN with a peer-aware attention module, distilled from the deep teacher | 1-hop propagation but heavy per-edge attention MACs |
//! | [`quantization::QuantizedModel`] | INT8 post-training quantization of the classifier | full fixed-depth propagation; only classification shrinks |
//! | [`pprgo::PprGo`] | related-work extension (§V): top-k approximate personalized PageRank replaces hierarchical propagation | cheap online PPR push, but classification MACs scale with `k_top` |
//!
//! Substitutions relative to the original papers (DeepWalk → random-walk
//! random projections for NOSMOG; PAM → scaled dot-product neighbor
//! attention for TinyGNN) are documented in DESIGN.md §3; each preserves
//! the baseline's cost/accuracy signature, which is what the paper's
//! comparison measures.

pub mod common;
pub mod glnn;
pub mod nosmog;
pub mod pprgo;
pub mod quantization;
pub mod tinygnn;

pub use common::BaselineRun;
