//! PPRGo (Bojchevski et al., KDD 2020) — the related-work comparator of
//! §V: replace hierarchical feature propagation with approximate
//! personalized PageRank (PPR).
//!
//! PPRGo follows the predict-then-propagate ordering: an MLP scores every
//! node's *raw* features and the final prediction for seed `s` is the
//! PPR-weighted sum of its top-k neighbors' logits,
//! `z_s = Σ_v π(s, v) · MLP(x_v)`. The PPR vectors come from the classic
//! forward-push approximation with residual threshold `ε`, so inductive
//! inference on an unseen node costs one online push over the deployment
//! graph plus `k_top` MLP evaluations — a different cost signature from
//! both Scalable GNNs (deep SpMM) and NAI (adaptive SpMM):
//! feature-processing is cheap but classification MACs scale with `k_top`.
//!
//! As the paper notes, PPRGo cannot reuse the Scalable-GNN precompute and
//! must train end-to-end; we precompute the training-graph PPR lists once
//! (they contain no trainable parameters) and train the MLP through the
//! weighted aggregation.

use crate::common::{make_run, BaselineRun};
use nai_core::macs::MacsBreakdown;
use nai_graph::split::build_training_view;
use nai_graph::{CsrMatrix, Graph, InductiveSplit};
use nai_linalg::ops::argmax_rows;
use nai_linalg::DenseMatrix;
use nai_nn::adam::Adam;
use nai_nn::loss::softmax_cross_entropy;
use nai_nn::mlp::{Mlp, MlpConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Instant;

/// One node's sparse PPR neighborhood: `(neighbor, weight)` sorted by
/// descending weight.
pub type PprList = Vec<(u32, f32)>;

/// Forward-push approximate PPR from `seed` with teleport `alpha` and
/// residual threshold `eps` (push while `r[v] ≥ eps · d(v)`).
///
/// Returns the sparse estimate vector and the number of MACs spent (one
/// per residual spread). The estimate underestimates the true PPR by at
/// most `eps · d(v)` per node; total pushes are bounded by
/// `1 / (alpha · eps)`, so the routine terminates on any graph. Residual
/// mass at dangling (isolated) nodes is absorbed by the seed estimate.
///
/// # Panics
/// Panics if `alpha` is outside `(0, 1)` or `eps` is not positive.
pub fn approximate_ppr(adj: &CsrMatrix, seed: u32, alpha: f32, eps: f32) -> (PprList, u64) {
    assert!((0.0..1.0).contains(&alpha) && alpha > 0.0, "alpha in (0,1)");
    assert!(eps > 0.0, "eps must be positive");
    let mut estimate: std::collections::HashMap<u32, f32> = std::collections::HashMap::new();
    let mut residual: std::collections::HashMap<u32, f32> = std::collections::HashMap::new();
    residual.insert(seed, 1.0);
    let mut queue = std::collections::VecDeque::from([seed]);
    let mut in_queue: std::collections::HashSet<u32> = std::collections::HashSet::from([seed]);
    let mut macs = 0u64;
    while let Some(v) = queue.pop_front() {
        in_queue.remove(&v);
        let d = adj.row_nnz(v as usize);
        let r = residual.get(&v).copied().unwrap_or(0.0);
        if r < eps * d.max(1) as f32 {
            continue;
        }
        residual.insert(v, 0.0);
        *estimate.entry(v).or_insert(0.0) += alpha * r;
        if d == 0 {
            // Dangling node: the walk restarts, which lands back at the
            // seed with probability 1 in the limit — fold into the seed.
            *estimate.entry(seed).or_insert(0.0) += (1.0 - alpha) * r;
            continue;
        }
        let spread = (1.0 - alpha) * r / d as f32;
        macs += d as u64;
        for (u, _) in adj.row_iter(v as usize) {
            let ru = residual.entry(u).or_insert(0.0);
            *ru += spread;
            if *ru >= eps * adj.row_nnz(u as usize).max(1) as f32 && in_queue.insert(u) {
                queue.push_back(u);
            }
        }
    }
    let mut list: PprList = estimate.into_iter().filter(|&(_, w)| w > 0.0).collect();
    list.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    (list, macs)
}

/// Truncates a PPR list to its `k_top` heaviest entries.
pub fn top_k(mut list: PprList, k_top: usize) -> PprList {
    list.truncate(k_top);
    list
}

/// PPRGo hyper-parameters.
#[derive(Debug, Clone)]
pub struct PprGoConfig {
    /// Teleport probability α (the PPRGo paper uses 0.25).
    pub alpha: f32,
    /// Push threshold ε.
    pub eps: f32,
    /// Top-k sparsification of each PPR vector.
    pub top_k: usize,
    /// Hidden widths of the scoring MLP.
    pub hidden: Vec<usize>,
    /// Dropout during training.
    pub dropout: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch of seed nodes per step.
    pub batch_size: usize,
    /// Optimizer.
    pub adam: Adam,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PprGoConfig {
    fn default() -> Self {
        Self {
            alpha: 0.25,
            eps: 1e-4,
            top_k: 32,
            hidden: vec![32],
            dropout: 0.1,
            epochs: 60,
            batch_size: 128,
            adam: Adam::new(0.01, 1e-5),
            seed: 33,
        }
    }
}

/// A trained PPRGo model.
pub struct PprGo {
    mlp: Mlp,
    cfg: PprGoConfig,
}

impl PprGo {
    /// Trains PPRGo on the inductive training view of `graph`.
    ///
    /// # Panics
    /// Panics on invalid splits.
    pub fn train(graph: &Graph, split: &InductiveSplit, cfg: &PprGoConfig) -> Self {
        let view = build_training_view(graph, split).expect("valid split");
        let tg = &view.graph;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut mlp = Mlp::new(
            &MlpConfig {
                in_dim: tg.feature_dim(),
                hidden: cfg.hidden.clone(),
                out_dim: graph.num_classes,
                dropout: cfg.dropout,
            },
            &mut rng,
        );

        // PPR lists on the training graph: parameter-free, computed once.
        let lists: Vec<PprList> = view
            .train_local
            .iter()
            .map(|&v| top_k(approximate_ppr(&tg.adj, v, cfg.alpha, cfg.eps).0, cfg.top_k))
            .collect();
        let labels: Vec<u32> = view
            .train_local
            .iter()
            .map(|&v| tg.labels[v as usize])
            .collect();

        let mut order: Vec<usize> = (0..lists.len()).collect();
        let batch = if cfg.batch_size == 0 {
            lists.len()
        } else {
            cfg.batch_size
        };
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(batch) {
                // Union support set of this batch.
                let mut support: Vec<u32> = chunk
                    .iter()
                    .flat_map(|&s| lists[s].iter().map(|&(v, _)| v))
                    .collect();
                support.sort_unstable();
                support.dedup();
                let col_of: std::collections::HashMap<u32, usize> =
                    support.iter().enumerate().map(|(t, &v)| (v, t)).collect();
                let rows: Vec<usize> = support.iter().map(|&v| v as usize).collect();
                let x = tg.features.gather_rows(&rows).expect("support rows");
                let h = mlp.forward_train(&x, &mut rng);

                // Aggregation matrix: batch × support PPR weights.
                let mut agg = DenseMatrix::zeros(chunk.len(), support.len());
                for (b, &s) in chunk.iter().enumerate() {
                    for &(v, w) in &lists[s] {
                        agg.set(b, col_of[&v], w);
                    }
                }
                let z = agg.matmul(&h).expect("aggregate logits");
                let y: Vec<u32> = chunk.iter().map(|&s| labels[s]).collect();
                let (_, dz) = softmax_cross_entropy(&z, &y);
                let dh = agg.transpose_matmul(&dz).expect("backprop through agg");
                mlp.zero_grads();
                mlp.backward(&dh);
                mlp.apply_grads(&cfg.adam);
            }
        }
        Self {
            mlp,
            cfg: cfg.clone(),
        }
    }

    /// Inductive inference: online PPR pushes over the full deployment
    /// graph, then PPR-weighted MLP aggregation.
    pub fn infer(&self, graph: &Graph, test_nodes: &[u32], labels: &[u32]) -> BaselineRun {
        let total = Instant::now();
        let mut fp_time = std::time::Duration::ZERO;
        let mut macs = MacsBreakdown::default();
        let mut predictions = Vec::with_capacity(test_nodes.len());
        let clf_macs = self.mlp.macs_per_row();
        for &s in test_nodes {
            let fp = Instant::now();
            let (list, push_macs) = approximate_ppr(&graph.adj, s, self.cfg.alpha, self.cfg.eps);
            let list = top_k(list, self.cfg.top_k);
            fp_time += fp.elapsed();
            macs.propagation += push_macs;
            let rows: Vec<usize> = list.iter().map(|&(v, _)| v as usize).collect();
            let x = graph.features.gather_rows(&rows).expect("ppr rows");
            let h = self.mlp.forward(&x);
            macs.classification += rows.len() as u64 * clf_macs;
            let c = h.cols();
            let mut z = vec![0.0f32; c];
            for (t, &(_, w)) in list.iter().enumerate() {
                for (acc, &v) in z.iter_mut().zip(h.row(t)) {
                    *acc += w * v;
                }
            }
            macs.classification += (rows.len() * c) as u64;
            predictions.push(nai_linalg::ops::argmax(&z));
        }
        make_run(
            predictions,
            test_nodes,
            labels,
            macs,
            total.elapsed(),
            fp_time,
            test_nodes.len(),
        )
    }

    /// The scoring MLP (diagnostics).
    pub fn mlp(&self) -> &Mlp {
        &self.mlp
    }

    /// Batch variant of [`Self::infer`] reusing one forward pass per
    /// union support set — the deployment-style path used by benches.
    pub fn infer_batched(
        &self,
        graph: &Graph,
        test_nodes: &[u32],
        labels: &[u32],
        batch_size: usize,
    ) -> BaselineRun {
        assert!(batch_size > 0, "batch_size must be positive");
        let total = Instant::now();
        let mut fp_time = std::time::Duration::ZERO;
        let mut macs = MacsBreakdown::default();
        let mut predictions = Vec::with_capacity(test_nodes.len());
        let clf_macs = self.mlp.macs_per_row();
        let mut batches = 0usize;
        for chunk in test_nodes.chunks(batch_size) {
            batches += 1;
            let fp = Instant::now();
            let lists: Vec<PprList> = chunk
                .iter()
                .map(|&s| {
                    let (l, push_macs) =
                        approximate_ppr(&graph.adj, s, self.cfg.alpha, self.cfg.eps);
                    macs.propagation += push_macs;
                    top_k(l, self.cfg.top_k)
                })
                .collect();
            fp_time += fp.elapsed();
            let mut support: Vec<u32> = lists
                .iter()
                .flat_map(|l| l.iter().map(|&(v, _)| v))
                .collect();
            support.sort_unstable();
            support.dedup();
            let col_of: std::collections::HashMap<u32, usize> =
                support.iter().enumerate().map(|(t, &v)| (v, t)).collect();
            let rows: Vec<usize> = support.iter().map(|&v| v as usize).collect();
            let x = graph.features.gather_rows(&rows).expect("support rows");
            let h = self.mlp.forward(&x);
            macs.classification += rows.len() as u64 * clf_macs;
            let mut agg = DenseMatrix::zeros(chunk.len(), support.len());
            for (b, list) in lists.iter().enumerate() {
                for &(v, w) in list {
                    agg.set(b, col_of[&v], w);
                }
            }
            let z = agg.matmul(&h).expect("aggregate");
            macs.classification +=
                lists.iter().map(|l| l.len() as u64).sum::<u64>() * h.cols() as u64;
            predictions.extend(argmax_rows(&z));
        }
        make_run(
            predictions,
            test_nodes,
            labels,
            macs,
            total.elapsed(),
            fp_time,
            batches,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nai_graph::generators::{generate, GeneratorConfig};

    fn graph(n: usize) -> Graph {
        generate(
            &GeneratorConfig {
                num_nodes: n,
                num_classes: 3,
                feature_dim: 8,
                avg_degree: 8.0,
                homophily: 0.85,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(21),
        )
    }

    #[test]
    fn ppr_mass_is_bounded_and_seed_heavy() {
        let g = graph(200);
        let (list, macs) = approximate_ppr(&g.adj, 0, 0.25, 1e-5);
        let mass: f32 = list.iter().map(|&(_, w)| w).sum();
        assert!(mass <= 1.0 + 1e-4, "PPR mass {mass} must not exceed 1");
        assert!(mass > 0.5, "push with tight eps should capture most mass");
        // The seed itself is the heaviest entry under teleportation.
        assert_eq!(list[0].0, 0, "seed should rank first");
        assert!(macs > 0);
    }

    #[test]
    fn ppr_is_sorted_descending() {
        let g = graph(150);
        let (list, _) = approximate_ppr(&g.adj, 3, 0.2, 1e-4);
        for w in list.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn tighter_eps_captures_more_mass() {
        let g = graph(200);
        let (coarse, macs_coarse) = approximate_ppr(&g.adj, 5, 0.25, 1e-2);
        let (fine, macs_fine) = approximate_ppr(&g.adj, 5, 0.25, 1e-5);
        let mass = |l: &PprList| l.iter().map(|&(_, w)| w).sum::<f32>();
        assert!(mass(&fine) >= mass(&coarse));
        assert!(macs_fine >= macs_coarse);
    }

    #[test]
    fn isolated_seed_keeps_all_mass() {
        let adj = CsrMatrix::undirected_adjacency(3, &[(1, 2)]).unwrap();
        let (list, _) = approximate_ppr(&adj, 0, 0.25, 1e-4);
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].0, 0);
        assert!((list[0].1 - 1.0).abs() < 1e-3, "weight {}", list[0].1);
    }

    #[test]
    fn top_k_truncates() {
        let list = vec![(0, 0.5), (1, 0.3), (2, 0.2)];
        assert_eq!(top_k(list.clone(), 2).len(), 2);
        assert_eq!(top_k(list, 10).len(), 3);
    }

    #[test]
    fn trained_pprgo_beats_chance_inductively() {
        let g = graph(400);
        let split = InductiveSplit::random(400, 0.5, 0.2, &mut StdRng::seed_from_u64(7));
        let model = PprGo::train(
            &g,
            &split,
            &PprGoConfig {
                epochs: 40,
                ..Default::default()
            },
        );
        let run = model.infer(&g, &split.test, &g.labels);
        assert!(
            run.report.accuracy > 1.0 / 3.0 + 0.1,
            "acc {}",
            run.report.accuracy
        );
        assert!(run.report.macs.propagation > 0);
        assert!(run.report.macs.classification > 0);
    }

    #[test]
    fn batched_inference_matches_per_node() {
        let g = graph(300);
        let split = InductiveSplit::random(300, 0.5, 0.2, &mut StdRng::seed_from_u64(8));
        let model = PprGo::train(
            &g,
            &split,
            &PprGoConfig {
                epochs: 15,
                ..Default::default()
            },
        );
        let a = model.infer(&g, &split.test, &g.labels);
        let b = model.infer_batched(&g, &split.test, &g.labels, 64);
        assert_eq!(a.predictions, b.predictions);
        assert_eq!(a.report.macs.propagation, b.report.macs.propagation);
    }

    #[test]
    #[should_panic(expected = "alpha in (0,1)")]
    fn invalid_alpha_panics() {
        let g = graph(50);
        let _ = approximate_ppr(&g.adj, 0, 1.5, 1e-4);
    }
}
