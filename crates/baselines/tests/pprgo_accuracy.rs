//! Numerical validation of the approximate PPR push against dense power
//! iteration.

use nai_baselines::pprgo::approximate_ppr;
use nai_graph::generators::{generate, GeneratorConfig};
use nai_graph::CsrMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Reference PPR by dense power iteration of
/// `π = α·e_s + (1−α)·πP`, with `P = D⁻¹A` (row-stochastic over
/// out-edges; dangling rows restart at the seed, matching the push's
/// dangling rule).
fn exact_ppr(adj: &CsrMatrix, seed: u32, alpha: f32, iters: usize) -> Vec<f64> {
    let n = adj.n();
    let mut pi = vec![0.0f64; n];
    pi[seed as usize] = 1.0;
    for _ in 0..iters {
        let mut next = vec![0.0f64; n];
        next[seed as usize] += alpha as f64;
        for (v, &pv) in pi.iter().enumerate() {
            if pv == 0.0 {
                continue;
            }
            let d = adj.row_nnz(v);
            let mass = (1.0 - alpha as f64) * pv;
            if d == 0 {
                next[seed as usize] += mass;
            } else {
                let share = mass / d as f64;
                for (u, _) in adj.row_iter(v) {
                    next[u as usize] += share;
                }
            }
        }
        pi = next;
    }
    pi
}

#[test]
fn push_approximation_respects_the_residual_bound() {
    // Forward-push underestimates exact PPR by at most ε·d(v) per node.
    let g = generate(
        &GeneratorConfig {
            num_nodes: 120,
            avg_degree: 6.0,
            ..Default::default()
        },
        &mut StdRng::seed_from_u64(44),
    );
    let (alpha, eps) = (0.25f32, 1e-4f32);
    for seed in [0u32, 17, 63] {
        let exact = exact_ppr(&g.adj, seed, alpha, 300);
        let (approx, _) = approximate_ppr(&g.adj, seed, alpha, eps);
        let mut approx_dense = vec![0.0f64; g.num_nodes()];
        for &(v, w) in &approx {
            approx_dense[v as usize] = w as f64;
        }
        for v in 0..g.num_nodes() {
            let gap = exact[v] - approx_dense[v];
            let d = g.adj.row_nnz(v).max(1) as f64;
            assert!(
                gap >= -1e-4,
                "seed {seed} node {v}: push overestimates ({} vs {})",
                approx_dense[v],
                exact[v]
            );
            // The classical bound is ε·d(v) on the *degree-normalized*
            // residual; allow a small slack for f32 accumulation.
            assert!(
                gap <= (eps as f64) * d * 2.0 + 1e-4,
                "seed {seed} node {v}: gap {gap} exceeds bound {}",
                eps as f64 * d * 2.0
            );
        }
    }
}

#[test]
fn push_on_path_graph_matches_closed_iteration() {
    let adj = CsrMatrix::undirected_adjacency(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
    let exact = exact_ppr(&adj, 2, 0.3, 500);
    let (approx, _) = approximate_ppr(&adj, 2, 0.3, 1e-6);
    let mut dense = [0.0f64; 5];
    for &(v, w) in &approx {
        dense[v as usize] = w as f64;
    }
    for v in 0..5 {
        assert!(
            (dense[v] - exact[v]).abs() < 1e-3,
            "node {v}: {} vs {}",
            dense[v],
            exact[v]
        );
    }
    // Symmetry of the path around the seed.
    assert!((dense[1] - dense[3]).abs() < 1e-3);
    assert!((dense[0] - dense[4]).abs() < 1e-3);
}
