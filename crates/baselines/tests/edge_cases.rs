//! Baseline edge cases: isolated nodes, tiny batches, and cost-accounting
//! consistency across the four methods.

use nai_baselines::glnn::{Glnn, GlnnConfig};
use nai_baselines::nosmog::{Nosmog, NosmogConfig};
use nai_baselines::quantization::QuantizedModel;
use nai_baselines::tinygnn::{TinyGnn, TinyGnnConfig};
use nai_core::config::PipelineConfig;
use nai_core::pipeline::{NaiPipeline, TrainedNai};
use nai_graph::generators::{generate, GeneratorConfig};
use nai_graph::{Graph, InductiveSplit};
use nai_models::ModelKind;
use nai_nn::trainer::TrainConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup() -> (Graph, InductiveSplit, TrainedNai) {
    // avg_degree 1.5 ⇒ plenty of isolated / degree-1 nodes.
    let g = generate(
        &GeneratorConfig {
            num_nodes: 200,
            num_classes: 3,
            feature_dim: 6,
            avg_degree: 1.5,
            ..Default::default()
        },
        &mut StdRng::seed_from_u64(600),
    );
    let split = InductiveSplit::random(200, 0.5, 0.2, &mut StdRng::seed_from_u64(601));
    let cfg = PipelineConfig {
        k: 2,
        hidden: vec![8],
        epochs: 10,
        use_single_scale: false,
        use_multi_scale: false,
        ..PipelineConfig::default()
    };
    let t = NaiPipeline::new(ModelKind::Sgc, cfg).train(&g, &split, false);
    (g, split, t)
}

fn tiny_train() -> TrainConfig {
    TrainConfig {
        epochs: 10,
        patience: 5,
        ..TrainConfig::default()
    }
}

#[test]
fn glnn_handles_batch_of_one() {
    let (g, split, t) = setup();
    let glnn = Glnn::distill(
        &t,
        &g,
        &split,
        &GlnnConfig {
            hidden: vec![16],
            train: tiny_train(),
            ..GlnnConfig::default()
        },
        1,
    );
    let run = glnn.infer(&g, &split.test[..1], &g.labels, 1);
    assert_eq!(run.predictions.len(), 1);
    assert_eq!(run.report.batches, 1);
}

#[test]
fn nosmog_zeroes_positions_for_isolated_unseen_nodes() {
    let (g, split, t) = setup();
    let nosmog = Nosmog::distill(
        &t,
        &g,
        &split,
        &NosmogConfig {
            hidden: vec![16],
            position_dim: 4,
            train: tiny_train(),
            ..NosmogConfig::default()
        },
        2,
    );
    // Isolated test nodes exist at avg degree 1.5; inference must not
    // panic and must classify them (zero position vector).
    let isolated: Vec<u32> = split
        .test
        .iter()
        .copied()
        .filter(|&v| g.adj.row_nnz(v as usize) == 0)
        .collect();
    if !isolated.is_empty() {
        let run = nosmog.infer(&g, &isolated, &g.labels, 16);
        assert_eq!(run.predictions.len(), isolated.len());
        // No neighbor fetches happened for them.
        assert_eq!(run.report.macs.propagation, 0);
    }
}

#[test]
fn tinygnn_handles_isolated_nodes_with_self_only_peer_set() {
    let (g, split, t) = setup();
    let mut tiny = TinyGnn::distill(
        &t,
        &g,
        &split,
        &TinyGnnConfig {
            epochs: 5,
            attn_dim: 8,
            hidden: vec![8],
            ..TinyGnnConfig::default()
        },
        3,
    );
    let run = tiny.infer(&g, &split.test, &g.labels, 32, 4);
    assert_eq!(run.predictions.len(), split.test.len());
    assert!(run.predictions.iter().all(|&p| p < g.num_classes));
}

#[test]
fn quantized_model_deterministic_across_runs() {
    let (g, split, t) = setup();
    let quant = QuantizedModel::from_engine(&t.engine);
    let a = quant.infer(&t.engine, &split.test, &g.labels, 50);
    let b = quant.infer(&t.engine, &split.test, &g.labels, 50);
    assert_eq!(a.predictions, b.predictions);
    assert_eq!(a.report.macs.total(), b.report.macs.total());
}

#[test]
fn mac_accounting_is_batch_size_invariant_for_fixed_methods() {
    // Propagation MACs may differ with batching (frontier sharing), but
    // classification MACs must be exactly batch-size independent.
    let (g, split, t) = setup();
    let quant = QuantizedModel::from_engine(&t.engine);
    let small = quant.infer(&t.engine, &split.test, &g.labels, 10);
    let large = quant.infer(&t.engine, &split.test, &g.labels, 1000);
    assert_eq!(
        small.report.macs.classification,
        large.report.macs.classification
    );
}
