//! **Table XI** — generalization: inference comparison under base model
//! GAMLP on the Flickr proxy (same columns as Table V).

use nai::datasets::DatasetId;
use nai::prelude::*;
use nai_bench::{
    baseline_rows, dataset, nai_rows, print_paper_reference, print_table, train_nai,
    OperatingPoint, Row,
};

fn main() {
    let ds = dataset(DatasetId::FlickrProxy);
    let trained = train_nai(&ds, ModelKind::Gamlp);
    let k = trained.k;
    let mut rows = Vec::new();
    let mut cfg = InferenceConfig::fixed(k);
    cfg.batch_size = 500;
    let vanilla = trained.engine.infer(&ds.split.test, &ds.graph.labels, &cfg);
    rows.push(Row::from_report("GAMLP", &vanilla.report));
    rows.extend(baseline_rows(&ds, &trained, 500));
    let (nai, ts) = nai_rows(&ds, &trained, k, OperatingPoint::SpeedFirst, 500);
    rows.extend(nai);
    print_table(
        &format!("Table XI — GAMLP on Flickr (T_s = {ts})"),
        &rows,
        "GAMLP",
    );
    print_paper_reference(
        "Table XI (GAMLP on Flickr)",
        &[
            "GAMLP 51.18% 1594.8mMACs 1759ms | GLNN 46.99% | NOSMOG 48.41% | TinyGNN 47.40%",
            "Quant 50.81% | NAI_d 50.89% (11x MACs, 8x time) | NAI_g 51.04% (10x, 7x)",
        ],
    );
}
