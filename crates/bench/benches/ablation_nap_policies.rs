//! Ablation (extension): the three NAP policies head-to-head.
//!
//! The paper compares NAP_d and NAP_g (Table VII); this harness adds the
//! NAP_u upper-bound policy (Eq. 10 depths assigned *before* propagation,
//! zero per-depth NAP work) to quantify what the per-node feature
//! comparison actually buys. Expected shape: NAP_d/NAP_g trade a little
//! NAP compute for better depth placement (higher accuracy at equal mean
//! depth); NAP_u is the cheapest policy and degrades gracefully as its
//! threshold coarsens the depth assignment.

use nai::prelude::*;
use nai_bench::{dataset, k_for, print_table, train_nai, Row};

fn main() {
    let ds = dataset(nai::datasets::DatasetId::ArxivProxy);
    let k = k_for(ds.id);
    println!(
        "NAP policy ablation — {} ({} nodes, {} edges, k={k})",
        ds.id.name(),
        ds.graph.num_nodes(),
        ds.graph.num_edges()
    );
    let trained = train_nai(&ds, ModelKind::Sgc);
    let mut rows = Vec::new();
    let mut depths = Vec::new();

    let mut push = |label: String, cfg: InferenceConfig| {
        let res = trained.engine.infer(&ds.split.test, &ds.graph.labels, &cfg);
        depths.push((label.clone(), res.report.mean_depth()));
        rows.push(Row::from_report(label, &res.report));
    };

    push("fixed".into(), InferenceConfig::fixed(k));
    for ts in [0.25f32, 0.5, 1.0, 2.0] {
        push(format!("NAP_d {ts}"), InferenceConfig::distance(ts, 1, k));
    }
    push("NAP_g".into(), InferenceConfig::gate(1, k));
    // NAP_u consumes T_s through the loose Eq. (10) spectral bound; its
    // useful range sits orders of magnitude above the distance scale.
    for ts in [4.0f32, 16.0, 64.0, 256.0] {
        push(
            format!("NAP_u {ts}"),
            InferenceConfig::upper_bound(ts, 1, k),
        );
    }

    print_table(
        "NAP policy ablation (SGC, Ogbn-arxiv proxy)",
        &rows,
        "fixed",
    );
    println!("\nmean personalized depth q:");
    for (label, q) in depths {
        println!("  {label:<12} {q:.2}");
    }
    println!(
        "\nexpected shape: NAP_d/NAP_g buy accuracy at matched depth via \
         per-node feature comparisons; NAP_u spends zero NAP MACs and sits \
         between fixed and NAP_d on the accuracy/cost frontier."
    );
}
