//! **Table V** — main inference comparison under base model SGC on the
//! three dataset proxies: ACC / #mMACs / #FP mMACs / Time / FP Time for
//! SGC, GLNN, NOSMOG, TinyGNN, Quantization, NAI_d and NAI_g, with
//! speedup ratios against vanilla SGC.
//!
//! NAI uses the speed-first operating point (the paper's Table V setting).

use nai::datasets::DatasetId;
use nai::prelude::*;
use nai_bench::{
    baseline_rows, dataset, k_for, nai_rows, print_paper_reference, print_table, train_nai,
    OperatingPoint, Row,
};

fn main() {
    println!("Table V reproduction — inference comparison under SGC (batch 500)");
    for id in DatasetId::all() {
        let ds = dataset(id);
        let k = k_for(id);
        println!(
            "\n[{}] proxy: n={} m={} f={} c={} | paper: n={} m={} f={} c={}",
            ds.id.name(),
            ds.graph.num_nodes(),
            ds.graph.num_edges(),
            ds.graph.feature_dim(),
            ds.graph.num_classes,
            ds.paper.n,
            ds.paper.m,
            ds.paper.f,
            ds.paper.c
        );
        let trained = train_nai(&ds, ModelKind::Sgc);

        let mut rows = Vec::new();
        let mut vanilla_cfg = InferenceConfig::fixed(k);
        vanilla_cfg.batch_size = 500;
        let vanilla = trained
            .engine
            .infer(&ds.split.test, &ds.graph.labels, &vanilla_cfg);
        rows.push(Row::from_report("SGC", &vanilla.report));
        rows.extend(baseline_rows(&ds, &trained, 500));
        let (nai, setting) = nai_rows(&ds, &trained, k, OperatingPoint::SpeedFirst, 500);
        rows.extend(nai);
        print_table(&format!("{} ({setting})", ds.id.name()), &rows, "SGC");
    }

    print_paper_reference(
        "Table V (Xeon Gold 5120, real datasets)",
        &[
            "Flickr       : SGC 49.43% 2475mMACs 2530ms | GLNN 44.39% | NOSMOG 48.18% | TinyGNN 46.80% 8850mMACs | Quant 48.34% | NAI_d 49.36% (14x MACs, 11x time) | NAI_g 49.41% (14x, 10x)",
            "Ogbn-arxiv   : SGC 69.36%  895mMACs 1276ms | GLNN 54.83% | NOSMOG 67.35% | TinyGNN 67.31% | Quant 68.88% | NAI_d 69.25% (11x, 7x) | NAI_g 69.34% (11x, 7x)",
            "Ogbn-products: SGC 74.24% 32946mMACs 68806ms | GLNN 63.12% | NOSMOG 72.48% | TinyGNN 71.33% | Quant 73.01% | NAI_d 73.70% (56x, 75x) | NAI_g 73.89% (56x, 63x)",
            "shape to reproduce: NAI ~= SGC accuracy >> GLNN; TinyGNN MACs-heavy;",
            "quantization saves almost nothing; NAI speedup grows with density/scale",
        ],
    );
}
