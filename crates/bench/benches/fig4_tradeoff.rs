//! **Figure 4** — accuracy vs inference time trade-off: three operating
//! points per NAI variant (NAI¹ speed-first, NAI² balanced, NAI³
//! accuracy-first) against the baselines, per dataset.
//!
//! The paper's claim: NAI³ matches or beats vanilla SGC accuracy while
//! NAI¹ trades a little accuracy for order-of-magnitude speedups, tracing
//! a frontier the fixed baselines cannot reach.

use nai::datasets::DatasetId;
use nai::prelude::*;
use nai_bench::{
    baseline_rows, dataset, k_for, print_paper_reference, select_ts, train_nai, OperatingPoint, Row,
};

fn main() {
    println!("Figure 4 reproduction — accuracy vs time frontier (batch 500)");
    for id in DatasetId::all() {
        let ds = dataset(id);
        let k = k_for(id);
        let trained = train_nai(&ds, ModelKind::Sgc);

        let mut series: Vec<Row> = Vec::new();
        let mut vanilla_cfg = InferenceConfig::fixed(k);
        vanilla_cfg.batch_size = 500;
        let vanilla = trained
            .engine
            .infer(&ds.split.test, &ds.graph.labels, &vanilla_cfg);
        series.push(Row::from_report("SGC", &vanilla.report));
        series.extend(baseline_rows(&ds, &trained, 500));

        for point in OperatingPoint::all() {
            let ts = select_ts(&trained, &ds, k, point);
            let mut cfg = InferenceConfig::distance(ts, 1, k);
            cfg.batch_size = 500;
            let run = trained.engine.infer(&ds.split.test, &ds.graph.labels, &cfg);
            series.push(Row::from_report(
                format!("NAI{}_d", point.label()),
                &run.report,
            ));
            // Gate variant: vary T_max across the operating points.
            let t_max = match point {
                OperatingPoint::SpeedFirst => (k / 3).max(2),
                OperatingPoint::Balanced => (2 * k / 3).max(2),
                OperatingPoint::AccuracyFirst => k,
            };
            let mut gcfg = InferenceConfig::gate(1, t_max);
            gcfg.batch_size = 500;
            let run = trained
                .engine
                .infer(&ds.split.test, &ds.graph.labels, &gcfg);
            series.push(Row::from_report(
                format!("NAI{}_g", point.label()),
                &run.report,
            ));
        }
        println!(
            "\n[{}] accuracy-vs-time series (plot: x = Time, y = ACC):",
            ds.id.name()
        );
        println!("{:<10} {:>8} {:>12}", "point", "ACC%", "Time(ms/node)");
        for r in &series {
            println!(
                "{:<10} {:>8.2} {:>12.4}",
                r.method,
                100.0 * r.acc,
                r.time_ms
            );
        }
    }
    print_paper_reference(
        "Fig. 4 (shape)",
        &[
            "NAI3 settings reach or exceed vanilla SGC accuracy at similar-or-lower time;",
            "NAI1 settings sit far left (small time) with modest accuracy loss;",
            "GLNN/NOSMOG fastest but lowest accuracy; TinyGNN slow and less accurate.",
        ],
    );
}
