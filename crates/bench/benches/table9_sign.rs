//! **Table IX** — generalization: inference comparison under base model
//! SIGN on the Flickr proxy (same columns as Table V).

use nai::datasets::DatasetId;
use nai::prelude::*;
use nai_bench::{
    baseline_rows, dataset, nai_rows, print_paper_reference, print_table, train_nai,
    OperatingPoint, Row,
};

fn main() {
    let ds = dataset(DatasetId::FlickrProxy);
    let trained = train_nai(&ds, ModelKind::Sign);
    let k = trained.k;
    let mut rows = Vec::new();
    let mut cfg = InferenceConfig::fixed(k);
    cfg.batch_size = 500;
    let vanilla = trained.engine.infer(&ds.split.test, &ds.graph.labels, &cfg);
    rows.push(Row::from_report("SIGN", &vanilla.report));
    rows.extend(baseline_rows(&ds, &trained, 500));
    let (nai, ts) = nai_rows(&ds, &trained, k, OperatingPoint::SpeedFirst, 500);
    rows.extend(nai);
    print_table(
        &format!("Table IX — SIGN on Flickr (T_s = {ts})"),
        &rows,
        "SIGN",
    );
    print_paper_reference(
        "Table IX (SIGN on Flickr)",
        &[
            "SIGN 51.00% 1574.9mMACs 1667ms | GLNN 46.84% | NOSMOG 48.24% | TinyGNN 47.21%",
            "Quant 45.87% | NAI_d 51.02% (12x MACs, 10x time) | NAI_g 50.93% (12x, 9x)",
        ],
    );
}
