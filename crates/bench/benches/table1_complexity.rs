//! **Table I** — inference computational complexity: verify that the MACs
//! measured by the engine's counters match the closed-form complexities,
//! and that NAI's measured cost follows the `q`-dependence (average
//! personalized depth) the table predicts.

use nai::core::macs::table1;
use nai::datasets::DatasetId;
use nai::prelude::*;
use nai_bench::{dataset, print_paper_reference};

fn main() {
    println!("Table I reproduction — complexity formulas vs measured counters");
    let ds = dataset(DatasetId::FlickrProxy);
    let k = 3usize;
    let f = ds.graph.feature_dim() as u64;
    let c = ds.graph.num_classes as u64;

    println!(
        "\n{:<8} {:>16} {:>16} {:>8}",
        "model", "formula MACs", "measured MACs", "ratio"
    );
    for kind in [
        ModelKind::Sgc,
        ModelKind::Sign,
        ModelKind::S2gc,
        ModelKind::Gamlp,
    ] {
        let cfg = PipelineConfig {
            k,
            hidden: vec![], // linear heads ⇒ classifier MACs = in·c exactly
            epochs: 5,
            use_single_scale: false,
            use_multi_scale: false,
            ..PipelineConfig::default()
        };
        let trained = NaiPipeline::new(kind, cfg).train(&ds.graph, &ds.split, false);
        let run =
            trained
                .engine
                .infer(&ds.split.test, &ds.graph.labels, &InferenceConfig::fixed(k));
        let measured = run.report.macs.total();
        // The formula's m is the nnz actually touched by the batched
        // frontier propagation, divided by k steps.
        let m_nnz = run.report.macs.propagation / (k as u64 * f);
        let n = ds.split.test.len() as u64;
        let formula = match kind {
            ModelKind::Sgc => table1::sgc(k as u64, m_nnz, n, f, c),
            ModelKind::Sign => table1::sign(k as u64, m_nnz, n, f, c),
            ModelKind::S2gc => table1::s2gc(k as u64, m_nnz, n, f, c),
            ModelKind::Gamlp => table1::gamlp(k as u64, m_nnz, n, f, c),
        } + run.report.macs.stationary; // stationary state term (rank-1, O(nf))
        println!(
            "{:<8} {:>16} {:>16} {:>8.3}",
            kind.name(),
            formula,
            measured,
            measured as f64 / formula as f64
        );
    }

    // q-dependence: NAI's propagation MACs should scale with the mean
    // personalized depth q, not with k.
    println!("\nq-dependence of NAI MACs (SGC, k = {k}):");
    let cfg = PipelineConfig {
        k,
        hidden: vec![],
        epochs: 10,
        use_multi_scale: false,
        ..PipelineConfig::default()
    };
    let trained = NaiPipeline::new(ModelKind::Sgc, cfg).train(&ds.graph, &ds.split, false);
    println!("{:<10} {:>8} {:>16}", "T_s", "mean q", "prop MACs");
    for ts in [0.0f32, 1.0, 2.0, f32::INFINITY] {
        let run = trained.engine.infer(
            &ds.split.test,
            &ds.graph.labels,
            &InferenceConfig::distance(ts, 1, k),
        );
        println!(
            "{:<10} {:>8.2} {:>16}",
            ts,
            run.report.mean_depth(),
            run.report.macs.propagation
        );
    }

    print_paper_reference(
        "Table I",
        &[
            "SGC   vanilla O(kmf + nf^2)        | NAI O(qmf + nf^2 + n^2 f)",
            "SIGN  vanilla O(kmf + kPnf^2)      | NAI O(qmf + qPnf^2 + n^2 f)",
            "S2GC  vanilla O(kmf + knf + nf^2)  | NAI O(qmf + qnf + nf^2 + n^2 f)",
            "GAMLP vanilla O(kmf + Pnf^2)       | NAI O(qmf + Pnf^2 + n^2 f)",
            "here the paper's O(n^2 f) stationary term is realised in O(nf) via the",
            "rank-1 structure of A^inf (EXPERIMENTS.md documents this accounting).",
        ],
    );
}
