//! **Table X** — generalization: inference comparison under base model
//! S²GC (k = 10) on the Flickr proxy (same columns as Table V).

use nai::datasets::DatasetId;
use nai::prelude::*;
use nai_bench::{
    baseline_rows, dataset, nai_rows, print_paper_reference, print_table, train_nai,
    OperatingPoint, Row,
};

fn main() {
    let ds = dataset(DatasetId::FlickrProxy);
    let trained = train_nai(&ds, ModelKind::S2gc);
    let k = trained.k;
    let mut rows = Vec::new();
    let mut cfg = InferenceConfig::fixed(k);
    cfg.batch_size = 500;
    let vanilla = trained.engine.infer(&ds.split.test, &ds.graph.labels, &cfg);
    rows.push(Row::from_report("S2GC", &vanilla.report));
    rows.extend(baseline_rows(&ds, &trained, 500));
    let (nai, ts) = nai_rows(&ds, &trained, k, OperatingPoint::SpeedFirst, 500);
    rows.extend(nai);
    print_table(
        &format!("Table X — S2GC on Flickr (k = {k}, T_s = {ts})"),
        &rows,
        "S2GC",
    );
    print_paper_reference(
        "Table X (S2GC on Flickr)",
        &[
            "S2GC 50.08% 3897.8mMACs 3959ms | GLNN 46.59% | NOSMOG 48.19% | TinyGNN 46.89%",
            "Quant 49.10% | NAI_d 48.94% (32x MACs, 26x time) | NAI_g 49.66% (27x, 24x)",
            "largest NAI speedups of the generalization study (k = 10 propagation).",
        ],
    );
}
