//! Extension bench: PPRGo (related work, §V) vs NAI vs vanilla SGC.
//!
//! The paper argues (§V) that PPRGo targets a different framework
//! (propagate-after-transform) and cannot reuse the Scalable-GNN
//! precompute; this harness measures where its cost signature lands on
//! the same inductive proxies. Expected shape: PPRGo's push cost is
//! bounded by `1/(α·ε)` and independent of `k` — but at proxy scale
//! (where k-hop frontiers do not explode) that bound is *comparable to or
//! above* frontier propagation, while its classification MACs grow with
//! top-k and its accuracy trails the distilled NAI classifiers. NAI keeps
//! the best accuracy/MACs frontier on every proxy.

use nai::baselines::pprgo::{PprGo, PprGoConfig};
use nai::prelude::*;
use nai_bench::{dataset, k_for, print_table, train_nai, Row};

fn main() {
    for id in [
        nai::datasets::DatasetId::ArxivProxy,
        nai::datasets::DatasetId::FlickrProxy,
    ] {
        let ds = dataset(id);
        let k = k_for(ds.id);
        println!(
            "\nPPRGo comparison — {} ({} nodes, {} edges, k={k})",
            ds.id.name(),
            ds.graph.num_nodes(),
            ds.graph.num_edges()
        );
        let trained = train_nai(&ds, ModelKind::Sgc);
        let mut rows = Vec::new();

        let vanilla =
            trained
                .engine
                .infer(&ds.split.test, &ds.graph.labels, &InferenceConfig::fixed(k));
        rows.push(Row::from_report("SGC", &vanilla.report));

        let nai_run = trained.engine.infer(
            &ds.split.test,
            &ds.graph.labels,
            &InferenceConfig::distance(0.5, 1, k),
        );
        rows.push(Row::from_report("NAI_d", &nai_run.report));

        for top_k in [8usize, 32] {
            let cfg = PprGoConfig {
                top_k,
                hidden: vec![64],
                ..PprGoConfig::default()
            };
            let model = PprGo::train(&ds.graph, &ds.split, &cfg);
            let run = model.infer_batched(&ds.graph, &ds.split.test, &ds.graph.labels, 500);
            rows.push(Row::from_report(format!("PPRGo k={top_k}"), &run.report));
        }

        print_table(
            &format!("PPRGo vs NAI vs SGC ({})", ds.id.name()),
            &rows,
            "SGC",
        );
    }
    println!(
        "\nexpected shape: PPRGo's push cost is k-independent (bounded by \
         1/(α·ε)) but not cheaper than frontier propagation at proxy \
         scale; its accuracy trails the distilled NAI classifiers and its \
         classification MACs grow with top-k. NAI keeps the best \
         accuracy/MACs frontier."
    );
}
