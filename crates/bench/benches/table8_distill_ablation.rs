//! **Table VIII** — Inception Distillation ablation: accuracy of the
//! weakest classifier `f^(1)` with no distillation ("w/o ID"), single-scale
//! only ("w/o MS"), multi-scale only ("w/o SS"), and the full method.
//!
//! Stages share the same base-trained classifier stack (cloned per
//! variant) so the comparison isolates the distillation signal.

use nai::core::config::InferenceConfig;
use nai::core::pipeline::NaiPipeline;
use nai::datasets::DatasetId;
use nai::prelude::*;
use nai_bench::{dataset, k_for, pipeline_config, print_paper_reference};

fn f1_accuracy(trained: &TrainedNai, ds: &nai::datasets::Dataset, k: usize) -> f64 {
    // Exit every node at depth 1 → predictions come from f^(1).
    trained
        .engine
        .infer(
            &ds.split.test,
            &ds.graph.labels,
            &InferenceConfig::distance(f32::INFINITY, 1, k),
        )
        .report
        .accuracy
}

fn main() {
    println!("Table VIII reproduction — Inception Distillation ablation (f^(1) accuracy)");
    println!(
        "{:<22} {:>10} {:>10} {:>10}",
        "variant", "Flickr", "Arxiv", "Products"
    );
    let mut table: Vec<(&str, Vec<f64>)> = vec![
        ("NAI w/o ID", vec![]),
        ("NAI w/o MS", vec![]),
        ("NAI w/o SS", vec![]),
        ("NAI (full)", vec![]),
    ];
    for id in DatasetId::all() {
        let ds = dataset(id);
        let k = k_for(id);
        for (variant_idx, (use_ss, use_ms)) in
            [(false, false), (true, false), (false, true), (true, true)]
                .into_iter()
                .enumerate()
        {
            let mut cfg = pipeline_config(id, ModelKind::Sgc);
            cfg.use_single_scale = use_ss;
            cfg.use_multi_scale = use_ms;
            let trained = NaiPipeline::new(ModelKind::Sgc, cfg).train(&ds.graph, &ds.split, false);
            table[variant_idx].1.push(f1_accuracy(&trained, &ds, k));
        }
    }
    for (name, accs) in &table {
        print!("{name:<22}");
        for a in accs {
            print!(" {:>9.2}%", 100.0 * a);
        }
        println!();
    }
    print_paper_reference(
        "Table VIII (f^(1) accuracy, real datasets)",
        &[
            "NAI w/o ID : 40.86 (Flickr) 65.54 (Arxiv) 70.17 (Products)",
            "NAI w/o MS : 44.41          65.91          70.28",
            "NAI w/o SS : 42.81          66.08          70.37",
            "NAI (full) : 44.85          66.10          70.49",
            "shape to reproduce: full >= either single stage >= no distillation.",
        ],
    );
}
