//! Criterion micro-benchmarks of the kernels behind every experiment:
//! SpMM (feature propagation), dense matmul (classification), stationary
//! state, NAP distance checks, gate decisions, and BFS frontier
//! discovery.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use nai::core::stationary::StationaryState;
use nai::core::{napd, InferenceConfig};
use nai::datasets::{load, DatasetId, Scale};
use nai::graph::frontier::BfsScratch;
use nai::graph::{normalized_adjacency, Convolution};
use nai::linalg::DenseMatrix;
use nai::prelude::*;
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let ds = load(DatasetId::FlickrProxy, Scale::Test);
    let norm = normalized_adjacency(&ds.graph.adj, Convolution::Symmetric);
    let x = ds.graph.features.clone();
    let n = ds.graph.num_nodes();

    c.bench_function("spmm_propagation_step", |b| {
        b.iter(|| black_box(norm.spmm(&x)))
    });

    let mut wrng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(1);
    let w = nai::linalg::init::glorot_uniform(x.cols(), 64, &mut wrng);
    c.bench_function("dense_matmul_classifier", |b| {
        b.iter(|| black_box(x.matmul(&w).unwrap()))
    });

    c.bench_function("stationary_state_precompute", |b| {
        b.iter(|| black_box(StationaryState::compute(&ds.graph.adj, &x, 0.5)))
    });

    let st = StationaryState::compute(&ds.graph.adj, &x, 0.5);
    let batch: Vec<u32> = (0..(200.min(n) as u32)).collect();
    c.bench_function("stationary_rows_batch200", |b| {
        b.iter(|| black_box(st.rows(&batch)))
    });

    let xinf = st.rows(&batch);
    let idx: Vec<usize> = batch.iter().map(|&v| v as usize).collect();
    let xb = x.gather_rows(&idx).unwrap();
    c.bench_function("napd_distance_batch200", |b| {
        b.iter(|| black_box(napd::exit_mask(&xb, &xinf, 0.5)))
    });

    c.bench_function("bfs_hop_sets_radius3", |b| {
        b.iter_batched(
            || BfsScratch::new(n),
            |mut bfs| black_box(bfs.hop_sets(&ds.graph.adj, &batch, 3)),
            BatchSize::SmallInput,
        )
    });

    // End-to-end adaptive batch (small, trained quickly once).
    let cfg = PipelineConfig {
        k: 2,
        hidden: vec![16],
        epochs: 8,
        use_single_scale: false,
        use_multi_scale: false,
        ..PipelineConfig::default()
    };
    let trained = NaiPipeline::new(ModelKind::Sgc, cfg).train(&ds.graph, &ds.split, false);
    c.bench_function("engine_infer_batch_napd", |b| {
        b.iter(|| {
            black_box(trained.engine.infer(
                &ds.split.test,
                &ds.graph.labels,
                &InferenceConfig::distance(1.0, 1, 2),
            ))
        })
    });

    // Parallel vs serial engine on multi-batch workloads (batch 100 →
    // several independent batches to distribute).
    let par_cfg = InferenceConfig {
        batch_size: 100,
        ..InferenceConfig::distance(1.0, 1, 2)
    };
    c.bench_function("engine_infer_serial_b100", |b| {
        b.iter(|| {
            black_box(
                trained
                    .engine
                    .infer(&ds.split.test, &ds.graph.labels, &par_cfg),
            )
        })
    });
    c.bench_function("engine_infer_parallel2_b100", |b| {
        b.iter(|| {
            black_box(
                trained
                    .engine
                    .infer_parallel(&ds.split.test, &ds.graph.labels, &par_cfg, 2),
            )
        })
    });

    let mut dm = DenseMatrix::from_fn(512, 64, |r, q| ((r * 64 + q) as f32 * 0.01).sin());
    c.bench_function("softmax_rows_512x64", |b| {
        b.iter(|| {
            nai::linalg::ops::softmax_rows(&mut dm);
            black_box(&dm);
        })
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = kernels;
    config = configured();
    targets = bench_kernels
}
criterion_main!(kernels);
