//! **Table VII** — NAP ablation on Ogbn-arxiv and Ogbn-products proxies:
//! "NAI w/o NAP" (fixed depth) vs NAI_d vs NAI_g for every
//! `T_max ∈ [2, k]`, reporting ACC, per-node time and the node
//! distribution.

use nai::datasets::DatasetId;
use nai::prelude::*;
use nai_bench::{dataset, k_for, print_paper_reference, select_ts, train_nai, OperatingPoint};

fn main() {
    println!("Table VII reproduction — NAP ablation under different T_max");
    for id in [DatasetId::ArxivProxy, DatasetId::ProductsProxy] {
        let ds = dataset(id);
        let k = k_for(id);
        let trained = train_nai(&ds, ModelKind::Sgc);
        let ts = select_ts(&trained, &ds, k, OperatingPoint::Balanced);
        println!("\n[{}] k = {k}, T_s = {ts}", ds.id.name());
        println!(
            "{:<6} {:<12} {:>8} {:>12}  node distribution",
            "T_max", "method", "ACC%", "ms/node"
        );
        for t_max in 2..=k {
            let variants: [(&str, InferenceConfig); 3] = [
                ("w/o NAP", InferenceConfig::fixed(t_max)),
                ("NAI_d", InferenceConfig::distance(ts, 1, t_max)),
                ("NAI_g", InferenceConfig::gate(1, t_max)),
            ];
            for (name, cfg) in variants {
                let run = trained.engine.infer(&ds.split.test, &ds.graph.labels, &cfg);
                println!(
                    "{:<6} {:<12} {:>8.2} {:>12.4}  {:?}",
                    t_max,
                    name,
                    100.0 * run.report.accuracy,
                    run.report.time_ms_per_node(),
                    run.report.depth_histogram
                );
            }
        }
    }
    print_paper_reference(
        "Table VII (shape)",
        &[
            "at every T_max, NAI_d matches or beats 'w/o NAP' accuracy at lower time",
            "(adaptive depth mitigates over-smoothing AND saves computation);",
            "NAI_g is slightly more accurate than NAI_d at slightly higher gate cost;",
            "time grows super-linearly in T_max for the fixed variant.",
        ],
    );
}
