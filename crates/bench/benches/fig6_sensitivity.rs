//! **Figure 6** — hyper-parameter sensitivity of Inception Distillation on
//! the Flickr proxy (base model SGC): `f^(1)` accuracy as a function of
//! the single-/multi-scale mixing weight λ, temperature T, and the
//! ensemble size r.
//!
//! Stages are re-used: the base classifier stack is trained once and
//! cloned per sweep point, so each point only pays for the distillation
//! stage under test.

use nai::core::config::DistillConfig;
use nai::core::distill::{multi_scale, single_scale, train_base};
use nai::datasets::DatasetId;
use nai::graph::split::build_training_view;
use nai::graph::{normalized_adjacency, Convolution};
use nai::models::propagate_features;
use nai::models::train::gather_depth_feats;
use nai::models::DepthClassifier;
use nai::nn::adam::Adam;
use nai::nn::trainer::TrainConfig;
use nai::prelude::*;
use nai_bench::{dataset, k_for, pipeline_config, print_paper_reference};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("Figure 6 reproduction — Inception Distillation sensitivity (Flickr proxy, SGC)");
    let ds = dataset(DatasetId::FlickrProxy);
    let k = k_for(ds.id);
    let pcfg = pipeline_config(ds.id, ModelKind::Sgc);
    let view = build_training_view(&ds.graph, &ds.split).expect("valid split");
    let norm = normalized_adjacency(&view.graph.adj, Convolution::Symmetric);
    let depth_feats = propagate_features(&norm, &view.graph.features, k);
    let tcfg = TrainConfig {
        epochs: pcfg.epochs,
        patience: pcfg.patience,
        adam: Adam::new(pcfg.lr, pcfg.weight_decay),
        seed: pcfg.seed,
        ..TrainConfig::default()
    };

    // Base stack, trained once.
    let mut base: Vec<DepthClassifier> = nai::core::distill::build_classifiers(
        ModelKind::Sgc,
        k,
        ds.graph.feature_dim(),
        ds.graph.num_classes,
        &pcfg.hidden,
        pcfg.dropout,
        &mut StdRng::seed_from_u64(pcfg.seed),
    );
    train_base(
        &mut base,
        &depth_feats,
        &view.train_local,
        &view.graph.labels,
        &view.val_local,
        &tcfg,
    );

    let test_rows: Vec<usize> = ds
        .split
        .test
        .iter()
        .map(|&v| v as usize)
        .filter(|&v| v < ds.graph.num_nodes())
        .collect();
    // f^(1) accuracy is evaluated transductively on the full graph's
    // depth-1 features (the sensitivity study isolates classifier quality,
    // not online propagation).
    let norm_full = normalized_adjacency(&ds.graph.adj, Convolution::Symmetric);
    let full_feats = propagate_features(&norm_full, &ds.graph.features, 1);
    let f1_acc = |cls: &[DepthClassifier]| -> f64 {
        let feats = gather_depth_feats(&full_feats, 2, &test_rows);
        let pred = nai::linalg::ops::argmax_rows(&cls[0].forward(&feats));
        let labels: Vec<u32> = test_rows.iter().map(|&r| ds.graph.labels[r]).collect();
        let all: Vec<usize> = (0..labels.len()).collect();
        nai::linalg::ops::accuracy(&pred, &labels, &all)
    };
    let dcfg0 = pcfg.distill;

    let run_point = |dcfg: DistillConfig, do_single: bool, do_multi: bool| -> f64 {
        let mut cls = base.clone();
        if do_single {
            single_scale(
                &mut cls,
                &depth_feats,
                &view.train_local,
                &view.graph.labels,
                &view.val_local,
                &tcfg,
                &dcfg,
            );
        }
        if do_multi {
            multi_scale(
                &mut cls,
                &depth_feats,
                &view.train_local,
                &view.graph.labels,
                &view.val_local,
                &dcfg,
                &Adam::new(pcfg.lr * 0.5, 0.0),
                128,
                7,
            );
        }
        f1_acc(&cls)
    };

    println!("\nλ sweep (f^(1) accuracy):");
    println!(
        "{:<8} {:>14} {:>14}",
        "lambda", "single-scale", "multi-scale"
    );
    for lambda in [0.0f32, 0.3, 0.6, 0.9] {
        let s = run_point(
            DistillConfig {
                lambda_single: lambda,
                ..dcfg0
            },
            true,
            false,
        );
        let m = run_point(
            DistillConfig {
                lambda_multi: lambda,
                ..dcfg0
            },
            true,
            true,
        );
        println!("{lambda:<8} {:>13.2}% {:>13.2}%", 100.0 * s, 100.0 * m);
    }

    println!("\nT sweep (f^(1) accuracy):");
    println!("{:<8} {:>14} {:>14}", "T", "single-scale", "multi-scale");
    for t in [1.0f32, 1.4, 1.8] {
        let s = run_point(
            DistillConfig {
                t_single: t,
                ..dcfg0
            },
            true,
            false,
        );
        let m = run_point(
            DistillConfig {
                t_multi: t,
                ..dcfg0
            },
            true,
            true,
        );
        println!("{t:<8} {:>13.2}% {:>13.2}%", 100.0 * s, 100.0 * m);
    }

    println!("\nr sweep (ensemble size, f^(1) accuracy):");
    for r in [1usize, 3, 5] {
        if r > k {
            continue;
        }
        let m = run_point(
            DistillConfig {
                ensemble_r: r,
                ..dcfg0
            },
            true,
            true,
        );
        println!("r = {r}: {:.2}%", 100.0 * m);
    }

    print_paper_reference(
        "Fig. 6 (shape)",
        &[
            "multi-scale prefers large λ (0.8–1.0): the ensemble signal beats hard labels;",
            "single-scale λ needs balancing; low T helps single-scale, high T multi-scale;",
            "moderate r (3–5) beats r = 1, but ensembling in the weakest classifier hurts.",
        ],
    );
}
