//! Extension bench: per-arrival latency of the streaming engine.
//!
//! The paper reports per-node inference time for frozen-graph batches;
//! production streaming systems care about the latency *distribution*
//! under micro-batching. This harness replays the Ogbn-arxiv proxy's test
//! nodes as arrivals through `nai-stream` and reports p50/p95/p99 per
//! micro-batch size, for adaptive (NAP_d) vs fixed-depth propagation.
//! Expected shape: adaptive wins at every batch size, and smaller
//! micro-batches pay a relative overhead (fewer nodes amortize the
//! frontier BFS) — the latency/throughput trade a deployment tunes.

use nai::prelude::*;
use nai::stream::{DynamicGraph, StreamingEngine};
use nai_bench::{dataset, k_for, train_nai};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let ds = dataset(nai::datasets::DatasetId::ArxivProxy);
    let k = k_for(ds.id);
    let trained = train_nai(&ds, ModelKind::Sgc);
    let ckpt = ModelCheckpoint::from_engine(&trained.engine, 0.5);

    let observed = ds.split.observed();
    let (observed_graph, _) = ds.graph.induced_subgraph(&observed).expect("valid view");
    let mut stream_id: Vec<Option<u32>> = vec![None; ds.graph.num_nodes()];

    let mut arrivals = ds.split.test.clone();
    arrivals.shuffle(&mut StdRng::seed_from_u64(1));
    arrivals.truncate(1000.min(arrivals.len()));

    println!(
        "streaming latency — {} observed {} nodes, replaying {} arrivals (k={k})",
        ds.id.name(),
        observed_graph.num_nodes(),
        arrivals.len()
    );
    println!(
        "\n{:<22} {:>7} {:>12} {:>12} {:>12} {:>10} {:>12}",
        "policy/batch", "acc%", "p50", "p95", "p99", "q", "arrivals/s"
    );

    // T_s = 8 is the arxiv proxy's operating scale (Table VI: it exits
    // ~2/3 of nodes at depth 1); smaller thresholds exit nothing here.
    for (label, nap) in [
        ("fixed", NapMode::Fixed),
        ("NAP_d 8", NapMode::Distance { ts: 8.0 }),
    ] {
        for batch in [1usize, 8, 25, 100] {
            let mut engine =
                StreamingEngine::from_checkpoint(&ckpt, DynamicGraph::from_graph(&observed_graph));
            for (&global, local) in observed.iter().zip(0u32..) {
                stream_id[global as usize] = Some(local);
            }
            let cfg = InferenceConfig {
                t_min: if matches!(nap, NapMode::Fixed) { k } else { 1 },
                t_max: k,
                nap,
                batch_size: batch,
                parallel_spmm: false,
            };
            let mut correct = 0usize;
            let mut pending_truth: Vec<u32> = Vec::new();
            let mut score = |preds: &[nai::stream::StreamPrediction], truth: &mut Vec<u32>| {
                for (p, &y) in preds.iter().zip(truth.iter()) {
                    if p.prediction == y as usize {
                        correct += 1;
                    }
                }
                truth.clear();
            };
            for &global in &arrivals {
                let nbrs: Vec<u32> = ds
                    .graph
                    .adj
                    .row_indices(global as usize)
                    .iter()
                    .filter_map(|&nb| stream_id[nb as usize])
                    .collect();
                let id = engine.ingest(ds.graph.features.row(global as usize), &nbrs);
                stream_id[global as usize] = Some(id);
                pending_truth.push(ds.graph.labels[global as usize]);
                if engine.pending().len() >= batch {
                    let preds = engine.flush(&cfg);
                    score(&preds, &mut pending_truth);
                }
            }
            let preds = engine.flush(&cfg);
            score(&preds, &mut pending_truth);
            // Reset arrival bookkeeping for the next run.
            for &global in &arrivals {
                stream_id[global as usize] = None;
            }
            let s = engine.stats();
            println!(
                "{:<22} {:>7.2} {:>12?} {:>12?} {:>12?} {:>10.2} {:>12.0}",
                format!("{label} / b={batch}"),
                100.0 * correct as f64 / arrivals.len() as f64,
                s.p50(),
                s.p95(),
                s.p99(),
                s.mean_depth(),
                s.throughput()
            );
        }
    }
    println!(
        "\nexpected shape: NAP_d cuts p50/p95 and mean depth q at every \
         micro-batch size with matched accuracy; batch=1 shows the \
         per-arrival overhead floor."
    );
}
