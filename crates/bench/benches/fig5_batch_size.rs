//! **Figure 5** — MACs and inference time vs batch size on the Flickr
//! proxy for all methods.
//!
//! The paper's observations: SGC/Quantization per-node cost is roughly
//! batch-size independent; TinyGNN cost grows strongly with batch size
//! (attention over more peers); GLNN stays flat and tiny; NAI's extra
//! stationary/NAP terms grow mildly but propagation savings dominate.

use nai::baselines::glnn::{Glnn, GlnnConfig};
use nai::baselines::nosmog::{Nosmog, NosmogConfig};
use nai::baselines::quantization::QuantizedModel;
use nai::baselines::tinygnn::{TinyGnn, TinyGnnConfig};
use nai::datasets::DatasetId;
use nai::nn::trainer::TrainConfig;
use nai::prelude::*;
use nai_bench::{dataset, k_for, print_paper_reference, select_ts, train_nai, OperatingPoint};

const BATCHES: [usize; 5] = [100, 250, 500, 1000, 2000];

fn main() {
    println!("Figure 5 reproduction — per-node mMACs and time vs batch size (Flickr proxy)");
    let ds = dataset(DatasetId::FlickrProxy);
    let k = k_for(ds.id);
    let trained = train_nai(&ds, ModelKind::Sgc);
    let ts = select_ts(&trained, &ds, k, OperatingPoint::SpeedFirst);
    let smoke_epochs = if nai_bench::bench_scale() == nai::datasets::Scale::Test {
        20
    } else {
        50
    };
    let kd_train = TrainConfig {
        epochs: smoke_epochs,
        patience: 12,
        adam: nai::nn::adam::Adam::new(0.01, 0.0),
        ..TrainConfig::default()
    };
    let glnn = Glnn::distill(
        &trained,
        &ds.graph,
        &ds.split,
        &GlnnConfig {
            hidden: vec![256],
            train: kd_train.clone(),
            ..GlnnConfig::default()
        },
        21,
    );
    let nosmog = Nosmog::distill(
        &trained,
        &ds.graph,
        &ds.split,
        &NosmogConfig {
            hidden: vec![256],
            train: kd_train,
            ..NosmogConfig::default()
        },
        22,
    );
    let mut tiny = TinyGnn::distill(
        &trained,
        &ds.graph,
        &ds.split,
        &TinyGnnConfig {
            epochs: 15,
            ..TinyGnnConfig::default()
        },
        23,
    );
    let quant = QuantizedModel::from_engine(&trained.engine);

    println!(
        "\n{:<14} {:>8} {:>14} {:>14}",
        "method", "batch", "mMACs/node", "time ms/node"
    );
    for &b in &BATCHES {
        let labels = &ds.graph.labels;
        let test = &ds.split.test;
        let emit = |name: &str, acc_macs: f64, t: f64| {
            println!("{name:<14} {b:>8} {acc_macs:>14.4} {t:>14.4}");
        };
        let mut cfg = InferenceConfig::fixed(k);
        cfg.batch_size = b;
        let sgc = trained.engine.infer(test, labels, &cfg);
        emit(
            "SGC",
            sgc.report.mmacs_per_node(),
            sgc.report.time_ms_per_node(),
        );

        let g = glnn.infer(&ds.graph, test, labels, b);
        emit(
            "GLNN",
            g.report.mmacs_per_node(),
            g.report.time_ms_per_node(),
        );

        let ns = nosmog.infer(&ds.graph, test, labels, b);
        emit(
            "NOSMOG",
            ns.report.mmacs_per_node(),
            ns.report.time_ms_per_node(),
        );

        let tg = tiny.infer(&ds.graph, test, labels, b, 24);
        emit(
            "TinyGNN",
            tg.report.mmacs_per_node(),
            tg.report.time_ms_per_node(),
        );

        let q = quant.infer(&trained.engine, test, labels, b);
        emit(
            "Quantization",
            q.report.mmacs_per_node(),
            q.report.time_ms_per_node(),
        );

        let mut dcfg = InferenceConfig::distance(ts, 1, k);
        dcfg.batch_size = b;
        let nd = trained.engine.infer(test, labels, &dcfg);
        emit(
            "NAI_d",
            nd.report.mmacs_per_node(),
            nd.report.time_ms_per_node(),
        );

        let mut gcfg = InferenceConfig::gate(1, k);
        gcfg.batch_size = b;
        let ng = trained.engine.infer(test, labels, &gcfg);
        emit(
            "NAI_g",
            ng.report.mmacs_per_node(),
            ng.report.time_ms_per_node(),
        );
        println!();
    }
    print_paper_reference(
        "Fig. 5 (shape)",
        &[
            "SGC/Quantization: flat, high; GLNN: flat, tiny; TinyGNN: grows with batch,",
            "crossing SGC around batch 1000; NAI_d/NAI_g: low, mildly growing MACs from",
            "the per-batch stationary/NAP terms but stable per-node time.",
        ],
    );
}
