//! Exit-round overhead of Algorithm 1's hot loop: legacy bookkeeping
//! (per-depth `HashMap` row location, full-history `gather_rows`
//! compaction, from-scratch BFS after exits) versus the active-set
//! engine (stamped column-map lookups, index-only `ActiveSet`
//! compaction, in-place incremental hop-set shrinking).
//!
//! Both variants perform the *same* exit round — identical graph, batch,
//! support frontier, history depth, and exit mask — so the per-iteration
//! time is exactly the bookkeeping the paper never charges for. A third
//! pair of benchmarks reports the end-to-end engine (`infer`) with the
//! row-parallel SpMM knob off/on for context.
//!
//! Run with `cargo bench --bench hotpath_active_set`
//! (`NAI_BENCH_SCALE=test` for the quick proxy).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use nai::core::active::{ActiveSet, EngineScratch};
use nai::core::stationary::StationaryState;
use nai::graph::frontier::BfsScratch;
use nai::graph::generators::{generate, GeneratorConfig};
use nai::linalg::DenseMatrix;
use nai::prelude::*;
use nai_bench::bench_scale;
use std::collections::HashMap;
use std::hint::black_box;

struct Workload {
    graph: Graph,
    batch: Vec<u32>,
    /// Hop sets of the batch at `t_max`.
    sets: Vec<Vec<u32>>,
    /// Support frontier at the exit depth (`sets[l]`).
    support: Vec<u32>,
    /// Active-aligned history `X^(0..=l)` (legacy layout).
    history: Vec<DenseMatrix>,
    /// Batch-aligned stationary rows.
    x_inf: DenseMatrix,
    exit_mask: Vec<bool>,
    t_max: usize,
    exit_depth: usize,
}

fn workload() -> Workload {
    let (num_nodes, batch_size) = match bench_scale() {
        nai::datasets::Scale::Test => (3_000, 200),
        _ => (20_000, 500),
    };
    let f = 32;
    let graph = generate(
        &GeneratorConfig {
            num_nodes,
            num_classes: 5,
            feature_dim: f,
            avg_degree: 8.0,
            power_law_exponent: 2.3,
            ..Default::default()
        },
        &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(9),
    );
    let t_max = 3;
    let exit_depth = 1;
    let batch: Vec<u32> = (0..batch_size as u32).collect();
    let mut bfs = BfsScratch::new(num_nodes);
    let sets = bfs.hop_sets(&graph.adj, &batch, t_max);
    let support = sets[exit_depth].clone();
    // Active-aligned history as the legacy loop held it at depth l.
    let history: Vec<DenseMatrix> = (0..=exit_depth)
        .map(|lvl| {
            DenseMatrix::from_fn(batch.len(), f, |r, c| ((r * 31 + c * 7 + lvl) as f32).sin())
        })
        .collect();
    let st = StationaryState::compute(&graph.adj, &graph.features, 0.5);
    let x_inf = st.rows(&batch);
    // ~40% of the batch exits this round, spread across the batch.
    let exit_mask: Vec<bool> = (0..batch.len()).map(|i| i % 5 < 2).collect();
    Workload {
        graph,
        batch,
        sets,
        support,
        history,
        x_inf,
        exit_mask,
        t_max,
        exit_depth,
    }
}

/// The pre-refactor exit round: locate actives via a rebuilt `HashMap`,
/// classify-side gathers, compact every history level + stationary rows
/// to the survivors, then BFS the remaining hop sets from scratch.
fn legacy_exit_round(w: &Workload, bfs: &mut BfsScratch) -> usize {
    let mut pos_in_support = HashMap::with_capacity(w.batch.len());
    for (t, &g) in w.support.iter().enumerate() {
        pos_in_support.insert(g, t);
    }
    let active_rows: Vec<usize> = w
        .batch
        .iter()
        .map(|g| *pos_in_support.get(g).expect("active ⊆ support"))
        .collect();
    black_box(&active_rows);

    let exit_rows: Vec<usize> = w
        .exit_mask
        .iter()
        .enumerate()
        .filter_map(|(i, &e)| e.then_some(i))
        .collect();
    let exit_feats: Vec<DenseMatrix> = w
        .history
        .iter()
        .map(|m| m.gather_rows(&exit_rows).unwrap())
        .collect();
    black_box(&exit_feats);

    let keep_rows: Vec<usize> = w
        .exit_mask
        .iter()
        .enumerate()
        .filter_map(|(i, &e)| (!e).then_some(i))
        .collect();
    let survivors: Vec<u32> = keep_rows.iter().map(|&i| w.batch[i]).collect();
    let _x_inf = w.x_inf.gather_rows(&keep_rows).unwrap();
    let compacted: Vec<DenseMatrix> = w
        .history
        .iter()
        .map(|m| m.gather_rows(&keep_rows).unwrap())
        .collect();
    black_box(&compacted);

    let new_sets = bfs.hop_sets(&w.graph.adj, &survivors, w.t_max - w.exit_depth);
    new_sets.iter().map(Vec::len).sum()
}

/// The active-set exit round on the same state: stamped column-map
/// lookups, index-only compaction, exit-rows-only gather, in-place
/// incremental shrink.
fn active_exit_round(
    w: &Workload,
    bfs: &mut BfsScratch,
    active: &mut ActiveSet,
    col_map: &mut [u32],
    sets: &mut [Vec<u32>],
    active_rows: &mut Vec<usize>,
) -> usize {
    for (t, &g) in w.support.iter().enumerate() {
        col_map[g as usize] = t as u32;
    }
    active_rows.clear();
    for &g in active.nodes() {
        active_rows.push(col_map[g as usize] as usize);
    }
    black_box(&active_rows);

    let exited = active.apply_exits(&w.exit_mask);
    let exit_feats: Vec<DenseMatrix> = w
        .history
        .iter()
        .map(|m| m.gather_rows(exited).unwrap())
        .collect();
    black_box(&exit_feats);

    bfs.shrink_hop_sets(
        &w.graph.adj,
        active.nodes(),
        &mut sets[w.exit_depth + 1..=w.t_max],
        w.t_max - w.exit_depth - 1,
    );
    for &g in &w.support {
        col_map[g as usize] = u32::MAX;
    }
    sets[w.exit_depth + 1..].iter().map(Vec::len).sum()
}

fn bench_hotpath(c: &mut Criterion) {
    let w = workload();
    println!(
        "workload: {} nodes, batch {}, support {}, t_max {}, exit depth {}, {} exiting",
        w.graph.num_nodes(),
        w.batch.len(),
        w.support.len(),
        w.t_max,
        w.exit_depth,
        w.exit_mask.iter().filter(|&&e| e).count(),
    );

    let n = w.graph.num_nodes();
    c.bench_function("exit_round/legacy", |b| {
        let mut bfs = BfsScratch::new(n);
        b.iter(|| black_box(legacy_exit_round(&w, &mut bfs)))
    });

    c.bench_function("exit_round/active_set", |b| {
        let mut bfs = BfsScratch::new(n);
        let mut col_map = vec![u32::MAX; n];
        let mut active_rows = Vec::new();
        b.iter_batched(
            || {
                let mut active = ActiveSet::default();
                active.reset(&w.batch);
                (active, w.sets.clone())
            },
            |(mut active, mut sets)| {
                black_box(active_exit_round(
                    &w,
                    &mut bfs,
                    &mut active,
                    &mut col_map,
                    &mut sets,
                    &mut active_rows,
                ))
            },
            BatchSize::SmallInput,
        )
    });

    // End-to-end context: a quickly trained engine under distance NAP,
    // serial vs row-parallel SpMM (bit-identical results either way).
    let split = InductiveSplit::random(
        w.graph.num_nodes(),
        0.6,
        0.2,
        &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(10),
    );
    let cfg = PipelineConfig {
        k: w.t_max,
        hidden: vec![16],
        epochs: 15,
        patience: 5,
        use_single_scale: false,
        use_multi_scale: false,
        gate_epochs: 0,
        ..PipelineConfig::default()
    };
    let trained = NaiPipeline::new(ModelKind::Sgc, cfg).train(&w.graph, &split, false);
    let infer_cfg = InferenceConfig::distance(0.5, 1, w.t_max);
    c.bench_function("infer/distance_serial", |b| {
        b.iter(|| {
            black_box(
                trained
                    .engine
                    .infer(&split.test, &w.graph.labels, &infer_cfg),
            )
        })
    });
    let par_cfg = infer_cfg.with_parallel_spmm(true);
    c.bench_function("infer/distance_parallel_spmm", |b| {
        b.iter(|| black_box(trained.engine.infer(&split.test, &w.graph.labels, &par_cfg)))
    });

    // Fixed-depth propagate-only path with a shared scratch (the
    // baseline fed by `propagate_only_with`).
    let mut scratch = EngineScratch::new();
    c.bench_function("propagate_only/shared_scratch", |b| {
        b.iter(|| {
            black_box(
                trained
                    .engine
                    .propagate_only_with(&w.batch, w.t_max, &mut scratch),
            )
        })
    });
}

criterion_group!(benches, bench_hotpath);
criterion_main!(benches);
