//! **Table VI** — exit-depth node distributions of NAI¹/²/³ (distance and
//! gate variants) on the three proxies: how many test nodes use each
//! personalized propagation depth. Operating points are the jointly
//! validation-selected `(T_s, T_max)` configs of §III-A — the same
//! settings Table V deploys.

use nai::datasets::DatasetId;
use nai::prelude::*;
use nai_bench::{
    dataset, k_for, print_paper_reference, select_distance_config, select_gate_config, select_ts,
    train_nai, OperatingPoint,
};

fn main() {
    println!("Table VI reproduction — node distributions over exit depths (1..k)");
    for id in DatasetId::all() {
        let ds = dataset(id);
        let k = k_for(id);
        let trained = train_nai(&ds, ModelKind::Sgc);
        println!("\n[{}] k = {k}", ds.id.name());
        // NAI¹ is the deployed speed-first config of Table V (joint
        // (T_s, T_max) selection). NAI²/NAI³ keep T_max = k and tune the
        // threshold only — the regime where the *adaptive* spread over
        // depths shows (validation accuracy saturates on the proxies, so
        // a joint sweep would collapse every point to shallow configs).
        for point in OperatingPoint::all() {
            let cfg = if point == OperatingPoint::SpeedFirst {
                select_distance_config(&trained, &ds, k, point)
            } else {
                InferenceConfig::distance(select_ts(&trained, &ds, k, point), 1, k)
            };
            let run = trained.engine.infer(&ds.split.test, &ds.graph.labels, &cfg);
            let ts = match cfg.nap {
                NapMode::Distance { ts } => ts,
                _ => unreachable!("distance selection returns distance configs"),
            };
            let mut h = run.report.depth_histogram.clone();
            h.resize(k, 0);
            println!(
                "  NAI{}_d (T_s={ts:<5} T_max={}): {h:?}",
                point.label(),
                cfg.t_max
            );
        }
        for point in OperatingPoint::all() {
            let cfg = if point == OperatingPoint::SpeedFirst {
                select_gate_config(&trained, &ds, k, point)
            } else {
                let t_max = match point {
                    OperatingPoint::Balanced => (2 * k / 3).max(2),
                    _ => k,
                };
                InferenceConfig::gate(1, t_max)
            };
            let run = trained.engine.infer(&ds.split.test, &ds.graph.labels, &cfg);
            let mut h = run.report.depth_histogram.clone();
            h.resize(k, 0);
            println!(
                "  NAI{}_g (T_max={}):        {h:?}",
                point.label(),
                cfg.t_max
            );
        }
    }
    print_paper_reference(
        "Table VI (shape)",
        &[
            "speed-first settings concentrate nodes at the shallowest depths",
            "(e.g. products NAI1_d: all 2.2M nodes at depth 2);",
            "accuracy-first settings spread nodes across all depths, using every classifier.",
        ],
    );
}
