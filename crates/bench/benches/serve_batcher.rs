//! Extension bench: the Fig. 5 batch-size trade-off at the *service*
//! level.
//!
//! The paper's Fig. 5 varies the inference batch size offline; a
//! serving system tunes the same dial at runtime through the dynamic
//! micro-batcher's `max_batch` / `max_wait` knobs. This harness runs a
//! closed loop of concurrent clients against an in-process
//! [`NaiService`] (no sockets — the batcher and workers are what is
//! being measured) and reports throughput and the p50/p99 service
//! latency per knob setting.
//!
//! Expected shape, mirroring Fig. 5: growing `max_batch` amortizes the
//! per-batch stationary/BFS work (throughput up, per-request p99 up —
//! requests wait for peers); growing `max_wait` with a large
//! `max_batch` moves p99 roughly with the deadline while throughput
//! saturates — the knob trades tail latency against efficiency.

use nai::core::config::{CacheConfig, LoadShedPolicy, ServeConfig};
use nai::prelude::*;
use nai::serve::{NaiService, Op, Reply, Request};
use nai::stream::DynamicGraph;
use nai_bench::{dataset, k_for, train_nai};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

const CLIENTS: usize = 16;

fn run_cell(
    ckpt: &ModelCheckpoint,
    seed_graph: &DynamicGraph,
    infer_cfg: &InferenceConfig,
    max_batch: usize,
    max_wait: Duration,
    requests_per_client: usize,
) -> (f64, Duration, Duration, f64) {
    let service = NaiService::from_checkpoint(
        ckpt,
        seed_graph,
        *infer_cfg,
        ServeConfig {
            workers: 2,
            max_batch,
            max_wait,
            queue_cap: 4 * CLIENTS,
            shed: LoadShedPolicy {
                trigger_fraction: 1.0,
                t_max_cap: 0, // measure the batcher, not the shedder
            },
            cache: CacheConfig::off(),
        },
    )
    .expect("valid service");
    let n = seed_graph.num_nodes() as u32;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let service = &service;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xBE7C + c as u64);
                for _ in 0..requests_per_client {
                    let reply = service
                        .call(Request {
                            op: Op::Infer {
                                nodes: vec![rng.gen_range(0..n)],
                            },
                            shard: None,
                        })
                        .expect("closed loop never overloads");
                    assert!(matches!(reply, Reply::Infer { .. }));
                }
            });
        }
    });
    let wall = start.elapsed().as_secs_f64();
    let m = service.metrics();
    let total = (CLIENTS * requests_per_client) as f64;
    let mean_batch = total / m.batches.max(1) as f64;
    let q = m.latency.quantiles(&[0.5, 0.99]);
    (
        total / wall,
        Duration::from_nanos(q[0]),
        Duration::from_nanos(q[1]),
        mean_batch,
    )
}

fn main() {
    let ds = dataset(nai::datasets::DatasetId::ArxivProxy);
    let k = k_for(ds.id);
    let trained = train_nai(&ds, ModelKind::Sgc);
    let ckpt = ModelCheckpoint::from_engine(&trained.engine, 0.5);
    let seed_graph = DynamicGraph::from_graph(&ds.graph);
    let infer_cfg = InferenceConfig::distance(8.0, 1, k);
    let requests_per_client = if nai_bench::bench_scale() == nai::datasets::Scale::Test {
        40
    } else {
        150
    };

    println!(
        "serve batcher — {} ({} nodes), {CLIENTS} closed-loop clients × {requests_per_client} \
         infer requests, 2 shards (k={k}, NAP_d)",
        ds.id.name(),
        ds.graph.num_nodes(),
    );
    println!(
        "\n{:<26} {:>12} {:>12} {:>12} {:>11}",
        "max_batch / max_wait", "req/s", "p50", "p99", "mean batch"
    );

    // Dial 1: batch size. The deadline is loose enough for the size
    // bound to close full-rate batches, but short enough that the
    // closed loop's end-of-run stragglers (fewer active clients than
    // max_batch) don't sit on it forever.
    for max_batch in [1usize, 4, 16] {
        let (rps, p50, p99, mb) = run_cell(
            &ckpt,
            &seed_graph,
            &infer_cfg,
            max_batch,
            Duration::from_millis(2),
            requests_per_client,
        );
        println!(
            "{:<26} {:>12.0} {:>12?} {:>12?} {:>11.1}",
            format!("b={max_batch} / 2ms"),
            rps,
            p50,
            p99,
            mb
        );
    }
    // Dial 2: wait deadline (batch bound loose, the deadline closes it).
    for wait_us in [200u64, 1000, 5000] {
        let max_wait = Duration::from_micros(wait_us);
        let (rps, p50, p99, mb) = run_cell(
            &ckpt,
            &seed_graph,
            &infer_cfg,
            64,
            max_wait,
            requests_per_client,
        );
        println!(
            "{:<26} {:>12.0} {:>12?} {:>12?} {:>11.1}",
            format!("b=64 / {}µs", wait_us),
            rps,
            p50,
            p99,
            mb
        );
    }
    println!(
        "\nexpected shape: larger max_batch lifts req/s and mean batch while p99 \
         grows (peers wait for the batch to fill); with the size bound loose, p99 \
         tracks max_wait — the service-level Fig. 5 latency/throughput dial."
    );
}
