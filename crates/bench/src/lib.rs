//! Shared plumbing for the table/figure harness.
//!
//! Every `benches/*.rs` target (run via `cargo bench`) regenerates one
//! table or figure of the paper: it trains the required models on the
//! dataset proxies, measures the same columns the paper reports, and
//! prints measured rows next to the paper's reference values. Absolute
//! numbers differ (synthetic proxies, different hardware); the *shape* —
//! who wins, by roughly what factor — is the reproduction target (see
//! EXPERIMENTS.md).
//!
//! Set `NAI_BENCH_SCALE=test` to run every harness on the tiny test-scale
//! proxies (smoke mode, ~10× faster).

use nai::core::config::DistillConfig;
use nai::datasets::{load, Dataset, DatasetId, Scale};
use nai::prelude::*;

/// One printed table row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Method name (left column).
    pub method: String,
    /// Accuracy (fraction).
    pub acc: f64,
    /// Total mega-MACs per node.
    pub mmacs: f64,
    /// Feature-processing mega-MACs per node.
    pub fp_mmacs: f64,
    /// Inference time per node, ms.
    pub time_ms: f64,
    /// Feature-processing time per node, ms.
    pub fp_time_ms: f64,
}

impl Row {
    /// Builds a row from an inference report.
    pub fn from_report(method: impl Into<String>, r: &nai::core::metrics::InferenceReport) -> Self {
        Self {
            method: method.into(),
            acc: r.accuracy,
            mmacs: r.mmacs_per_node(),
            fp_mmacs: r.fp_mmacs_per_node(),
            time_ms: r.time_ms_per_node(),
            fp_time_ms: r.fp_time_ms_per_node(),
        }
    }
}

/// Prints a table in the paper's Table V format, with speedup ratios
/// relative to `baseline_method` (usually the vanilla model).
pub fn print_table(title: &str, rows: &[Row], baseline_method: &str) {
    println!("\n=== {title} ===");
    println!(
        "{:<14} {:>8} {:>12} {:>12} {:>14} {:>14}",
        "method", "ACC%", "#mMACs", "#FP mMACs", "Time(ms)", "FP Time(ms)"
    );
    let base = rows.iter().find(|r| r.method == baseline_method).cloned();
    for r in rows {
        let ratio = |b: f64, v: f64| -> String {
            if v > 0.0 && b > 0.0 && r.method != baseline_method {
                format!("({:.1}x)", b / v)
            } else {
                String::new()
            }
        };
        let (rt, rf) = match &base {
            Some(b) => (
                ratio(b.time_ms, r.time_ms),
                ratio(b.fp_time_ms, r.fp_time_ms),
            ),
            None => (String::new(), String::new()),
        };
        println!(
            "{:<14} {:>8.2} {:>12.4} {:>12.4} {:>8.4}{:<6} {:>8.4}{:<6}",
            r.method,
            100.0 * r.acc,
            r.mmacs,
            r.fp_mmacs,
            r.time_ms,
            rt,
            r.fp_time_ms,
            rf
        );
    }
}

/// Prints the paper's reference rows (verbatim values from the PDF) so the
/// measured shape can be compared at a glance.
pub fn print_paper_reference(title: &str, lines: &[&str]) {
    println!("\n--- paper reference: {title} ---");
    for l in lines {
        println!("  {l}");
    }
}

/// Scale selected by `NAI_BENCH_SCALE` (`test` → tiny proxies).
pub fn bench_scale() -> Scale {
    match std::env::var("NAI_BENCH_SCALE").as_deref() {
        Ok("test") => Scale::Test,
        _ => Scale::Bench,
    }
}

/// Loads a dataset proxy at the harness scale.
pub fn dataset(id: DatasetId) -> Dataset {
    load(id, bench_scale())
}

/// Propagation depth `k` per dataset (Table III: Flickr 7, others 5),
/// halved at smoke scale.
pub fn k_for(id: DatasetId) -> usize {
    let k = match id {
        DatasetId::FlickrProxy => 7,
        _ => 5,
    };
    match bench_scale() {
        Scale::Test => (k / 2).max(2),
        Scale::Bench => k,
    }
}

/// Pipeline configuration mapped from the paper's Tables III–IV
/// hyper-parameters (temperatures/λ taken verbatim; epochs sized for the
/// proxy scale).
pub fn pipeline_config(id: DatasetId, kind: ModelKind) -> PipelineConfig {
    let (t_single, lambda_single, t_multi, lambda_multi) = match (id, kind) {
        (DatasetId::FlickrProxy, ModelKind::Sgc) => (1.2, 0.6, 1.9, 0.8),
        (DatasetId::ArxivProxy, ModelKind::Sgc) => (1.0, 0.1, 1.5, 0.1),
        (DatasetId::ProductsProxy, ModelKind::Sgc) => (1.1, 0.2, 1.0, 0.1),
        (_, ModelKind::S2gc) => (1.0, 0.1, 1.9, 0.6),
        (_, ModelKind::Sign) => (2.0, 0.9, 1.8, 0.9),
        (_, ModelKind::Gamlp) => (1.6, 0.9, 1.8, 0.8),
    };
    let smoke = bench_scale() == Scale::Test;
    PipelineConfig {
        k: match kind {
            // Table IV: S2GC uses k = 10.
            ModelKind::S2gc if !smoke => 10,
            _ => k_for(id),
        },
        hidden: vec![64],
        dropout: match id {
            DatasetId::ProductsProxy => 0.1,
            _ => 0.3,
        },
        lr: 0.01,
        weight_decay: 0.0,
        epochs: if smoke { 30 } else { 80 },
        patience: 15,
        train_batch: 0,
        distill: DistillConfig {
            t_single,
            lambda_single,
            t_multi,
            lambda_multi,
            // r = 3 per the paper; clamped at smoke scale where k may be 2.
            ensemble_r: 3.min(k_for(id)),
            epochs: if smoke { 10 } else { 40 },
        },
        use_single_scale: true,
        use_multi_scale: true,
        gate_epochs: if smoke { 8 } else { 30 },
        gate_tau: 1.0,
        seed: 42,
    }
}

/// Trains the full NAI stack (with gates) for a dataset/model pair.
pub fn train_nai(ds: &Dataset, kind: ModelKind) -> TrainedNai {
    let cfg = pipeline_config(ds.id, kind);
    NaiPipeline::new(kind, cfg).train(&ds.graph, &ds.split, true)
}

/// Candidate `T_s` sweep used by all operating-point selections.
pub const TS_SWEEP: [f32; 7] = [0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0];

/// Operating points of Fig. 4 / Table VI: `NAI¹` (speed-first), `NAI²`
/// (balanced), `NAI³` (accuracy-first).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperatingPoint {
    /// Largest `T_s` whose validation accuracy stays within 3 points of
    /// the fixed-depth reference.
    SpeedFirst,
    /// Largest `T_s` within 1 point.
    Balanced,
    /// The `T_s` with the best validation accuracy.
    AccuracyFirst,
}

impl OperatingPoint {
    /// The three points in Fig. 4 order.
    pub fn all() -> [OperatingPoint; 3] {
        [
            OperatingPoint::SpeedFirst,
            OperatingPoint::Balanced,
            OperatingPoint::AccuracyFirst,
        ]
    }

    /// Superscript label used by the paper ("NAI¹" …).
    pub fn label(self) -> &'static str {
        match self {
            OperatingPoint::SpeedFirst => "1",
            OperatingPoint::Balanced => "2",
            OperatingPoint::AccuracyFirst => "3",
        }
    }
}

/// Selects `T_s` on the validation set per the operating point.
pub fn select_ts(trained: &TrainedNai, ds: &Dataset, k: usize, point: OperatingPoint) -> f32 {
    let val_acc = |cfg: &InferenceConfig| {
        trained
            .engine
            .infer(&ds.split.val, &ds.graph.labels, cfg)
            .report
            .accuracy
    };
    let reference = val_acc(&InferenceConfig::fixed(k));
    let accs: Vec<(f32, f64)> = TS_SWEEP
        .iter()
        .map(|&ts| (ts, val_acc(&InferenceConfig::distance(ts, 1, k))))
        .collect();
    match point {
        OperatingPoint::AccuracyFirst => {
            accs.iter()
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .expect("non-empty sweep")
                .0
        }
        OperatingPoint::SpeedFirst | OperatingPoint::Balanced => {
            let tol = if point == OperatingPoint::SpeedFirst {
                0.03
            } else {
                0.01
            };
            accs.iter()
                .rev()
                .find(|&&(_, acc)| acc >= reference - tol)
                .map(|&(ts, _)| ts)
                .unwrap_or(TS_SWEEP[0])
        }
    }
}

/// Joint `(T_s, T_max)` selection on the validation set — §III-A: "users
/// can choose the hyper-parameters by using \[the\] validation set that
/// align with the latency requirements". Speed-first/balanced pick the
/// config with the lowest validation FP MACs whose accuracy stays within
/// tolerance of the fixed-depth reference; accuracy-first picks the most
/// accurate config. Sweeping `T_max` matters on dense proxies: stragglers
/// that never exit keep full-depth frontiers alive, so capping `T_max`
/// (the paper's products NAI¹ pins every node to depth 2) is where the
/// big savings come from.
pub fn select_distance_config(
    trained: &TrainedNai,
    ds: &Dataset,
    k: usize,
    point: OperatingPoint,
) -> InferenceConfig {
    let val = |cfg: &InferenceConfig| {
        let run = trained.engine.infer(&ds.split.val, &ds.graph.labels, cfg);
        (run.report.accuracy, run.report.fp_mmacs_per_node())
    };
    let (reference, _) = val(&InferenceConfig::fixed(k));
    let tol = match point {
        OperatingPoint::SpeedFirst => 0.03,
        OperatingPoint::Balanced => 0.01,
        OperatingPoint::AccuracyFirst => f64::INFINITY,
    };
    let mut best: Option<(f64, f64, InferenceConfig)> = None;
    for t_max in 1..=k {
        for &ts in TS_SWEEP.iter() {
            let cfg = InferenceConfig::distance(ts, 1, t_max);
            let (acc, fp) = val(&cfg);
            let better = match point {
                OperatingPoint::AccuracyFirst => match &best {
                    None => true,
                    Some((bacc, bfp, _)) => acc > *bacc || (acc == *bacc && fp < *bfp),
                },
                _ => {
                    acc >= reference - tol
                        && match &best {
                            None => true,
                            Some((_, bfp, _)) => fp < *bfp,
                        }
                }
            };
            if better {
                best = Some((acc, fp, cfg));
            }
        }
    }
    best.map(|(_, _, cfg)| cfg)
        .unwrap_or_else(|| InferenceConfig::distance(TS_SWEEP[0], 1, k))
}

/// `T_max` selection for the gate variant (gates have no threshold knob;
/// the latency budget enters through the depth cap).
pub fn select_gate_config(
    trained: &TrainedNai,
    ds: &Dataset,
    k: usize,
    point: OperatingPoint,
) -> InferenceConfig {
    let val = |cfg: &InferenceConfig| {
        let run = trained.engine.infer(&ds.split.val, &ds.graph.labels, cfg);
        (run.report.accuracy, run.report.fp_mmacs_per_node())
    };
    let (reference, _) = val(&InferenceConfig::fixed(k));
    let tol = match point {
        OperatingPoint::SpeedFirst => 0.03,
        OperatingPoint::Balanced => 0.01,
        OperatingPoint::AccuracyFirst => f64::INFINITY,
    };
    let mut best: Option<(f64, f64, InferenceConfig)> = None;
    for t_max in 1..=k {
        let cfg = if t_max == 1 {
            InferenceConfig::fixed(1)
        } else {
            InferenceConfig::gate(1, t_max)
        };
        let (acc, fp) = val(&cfg);
        let better = match point {
            OperatingPoint::AccuracyFirst => match &best {
                None => true,
                Some((bacc, bfp, _)) => acc > *bacc || (acc == *bacc && fp < *bfp),
            },
            _ => {
                acc >= reference - tol
                    && match &best {
                        None => true,
                        Some((_, bfp, _)) => fp < *bfp,
                    }
            }
        };
        if better {
            best = Some((acc, fp, cfg));
        }
    }
    best.map(|(_, _, cfg)| cfg)
        .unwrap_or_else(|| InferenceConfig::gate(1, k))
}

/// Trains and runs the four Table V baselines against a trained NAI
/// teacher; returns rows in paper order. `batch` is the inference batch
/// size (the paper uses 500).
pub fn baseline_rows(ds: &Dataset, trained: &TrainedNai, batch: usize) -> Vec<Row> {
    use nai::baselines::glnn::{Glnn, GlnnConfig};
    use nai::baselines::nosmog::{Nosmog, NosmogConfig};
    use nai::baselines::quantization::QuantizedModel;
    use nai::baselines::tinygnn::{TinyGnn, TinyGnnConfig};
    use nai::nn::trainer::TrainConfig;

    let smoke = bench_scale() == Scale::Test;
    let kd_train = TrainConfig {
        epochs: if smoke { 30 } else { 60 },
        patience: 15,
        adam: nai::nn::adam::Adam::new(0.01, 0.0),
        ..TrainConfig::default()
    };
    let labels = &ds.graph.labels;
    let test = &ds.split.test;
    let mut rows = Vec::new();

    let glnn = Glnn::distill(
        trained,
        &ds.graph,
        &ds.split,
        &GlnnConfig {
            hidden: vec![256],
            train: kd_train.clone(),
            ..GlnnConfig::default()
        },
        11,
    );
    rows.push(Row::from_report(
        "GLNN",
        &glnn.infer(&ds.graph, test, labels, batch).report,
    ));

    let nosmog = Nosmog::distill(
        trained,
        &ds.graph,
        &ds.split,
        &NosmogConfig {
            hidden: vec![256],
            train: kd_train.clone(),
            ..NosmogConfig::default()
        },
        12,
    );
    rows.push(Row::from_report(
        "NOSMOG",
        &nosmog.infer(&ds.graph, test, labels, batch).report,
    ));

    let mut tiny = TinyGnn::distill(
        trained,
        &ds.graph,
        &ds.split,
        &TinyGnnConfig {
            epochs: if smoke { 10 } else { 25 },
            ..TinyGnnConfig::default()
        },
        13,
    );
    rows.push(Row::from_report(
        "TinyGNN",
        &tiny.infer(&ds.graph, test, labels, batch, 14).report,
    ));

    let quant = QuantizedModel::from_engine(&trained.engine);
    rows.push(Row::from_report(
        "Quantization",
        &quant.infer(&trained.engine, test, labels, batch).report,
    ));
    rows
}

/// Runs NAI_d (validation-selected `T_s` at the operating point) and NAI_g
/// on the test set; returns their rows plus the chosen threshold.
pub fn nai_rows(
    ds: &Dataset,
    trained: &TrainedNai,
    k: usize,
    point: OperatingPoint,
    batch: usize,
) -> (Vec<Row>, String) {
    let mut d_cfg = select_distance_config(trained, ds, k, point);
    d_cfg.batch_size = batch;
    let napd = trained
        .engine
        .infer(&ds.split.test, &ds.graph.labels, &d_cfg);
    let mut g_cfg = select_gate_config(trained, ds, k, point);
    g_cfg.batch_size = batch;
    let napg = trained
        .engine
        .infer(&ds.split.test, &ds.graph.labels, &g_cfg);
    let describe = |cfg: &InferenceConfig| match cfg.nap {
        nai::core::config::NapMode::Distance { ts } => {
            format!("T_s={ts}, T_max={}", cfg.t_max)
        }
        _ => format!("T_max={}", cfg.t_max),
    };
    (
        vec![
            Row::from_report("NAI_d", &napd.report),
            Row::from_report("NAI_g", &napg.report),
        ],
        format!("d: {}; g: {}", describe(&d_cfg), describe(&g_cfg)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_values_match_table3_at_bench_scale() {
        std::env::remove_var("NAI_BENCH_SCALE");
        assert_eq!(k_for(DatasetId::FlickrProxy), 7);
        assert_eq!(k_for(DatasetId::ArxivProxy), 5);
        assert_eq!(k_for(DatasetId::ProductsProxy), 5);
    }

    #[test]
    fn pipeline_config_encodes_table3_temperatures() {
        std::env::remove_var("NAI_BENCH_SCALE");
        let c = pipeline_config(DatasetId::FlickrProxy, ModelKind::Sgc);
        assert!((c.distill.t_single - 1.2).abs() < 1e-6);
        assert!((c.distill.lambda_single - 0.6).abs() < 1e-6);
        assert!((c.distill.t_multi - 1.9).abs() < 1e-6);
        assert!((c.distill.lambda_multi - 0.8).abs() < 1e-6);
        let s2gc = pipeline_config(DatasetId::FlickrProxy, ModelKind::S2gc);
        assert_eq!(s2gc.k, 10);
    }

    #[test]
    fn row_formatting_does_not_panic() {
        let rows = vec![
            Row {
                method: "SGC".into(),
                acc: 0.7,
                mmacs: 10.0,
                fp_mmacs: 9.0,
                time_ms: 1.5,
                fp_time_ms: 1.2,
            },
            Row {
                method: "NAI_d".into(),
                acc: 0.69,
                mmacs: 1.0,
                fp_mmacs: 0.5,
                time_ms: 0.2,
                fp_time_ms: 0.1,
            },
        ];
        print_table("smoke", &rows, "SGC");
        print_paper_reference("smoke", &["line"]);
    }

    #[test]
    fn operating_points_have_labels() {
        for p in OperatingPoint::all() {
            assert!(!p.label().is_empty());
        }
    }
}
