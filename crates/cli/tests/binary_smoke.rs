//! End-to-end smoke tests of the compiled `nai` binary.

use std::process::Command;

fn nai() -> Command {
    Command::new(env!("CARGO_BIN_EXE_nai"))
}

#[test]
fn help_prints_usage_and_exits_zero() {
    let out = nai().arg("help").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("generate"));
    assert!(text.contains("stream"));
}

#[test]
fn unknown_command_exits_nonzero_with_usage() {
    let out = nai().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"));
    assert!(err.contains("USAGE"));
}

#[test]
fn missing_flag_is_reported() {
    let out = nai()
        .args(["generate", "--dataset", "arxiv"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--out"), "stderr: {err}");
}

#[test]
fn full_workflow_through_the_binary() {
    let dir = std::env::temp_dir().join("nai_binary_smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let base = dir.join("ds");
    let model = dir.join("m.naic");

    let gen = nai()
        .args([
            "generate",
            "--dataset",
            "arxiv",
            "--scale",
            "test",
            "--out",
            base.to_str().unwrap(),
        ])
        .output()
        .expect("generate");
    assert!(
        gen.status.success(),
        "{}",
        String::from_utf8_lossy(&gen.stderr)
    );

    let gpath = format!("{}.graph", base.display());
    let spath = format!("{}.split", base.display());
    let train = nai()
        .args([
            "train",
            "--graph",
            &gpath,
            "--split",
            &spath,
            "--k",
            "2",
            "--epochs",
            "8",
            "--hidden",
            "8",
            "--out",
            model.to_str().unwrap(),
        ])
        .output()
        .expect("train");
    assert!(
        train.status.success(),
        "{}",
        String::from_utf8_lossy(&train.stderr)
    );
    assert!(model.exists());

    let infer = nai()
        .args([
            "infer",
            "--graph",
            &gpath,
            "--split",
            &spath,
            "--model",
            model.to_str().unwrap(),
            "--nap",
            "upper",
            "--ts",
            "0.5",
        ])
        .output()
        .expect("infer");
    assert!(
        infer.status.success(),
        "{}",
        String::from_utf8_lossy(&infer.stderr)
    );
    let text = String::from_utf8_lossy(&infer.stdout);
    assert!(text.contains("acc"), "stdout: {text}");

    std::fs::remove_dir_all(&dir).ok();
}
