//! `nai` — command-line interface to the Node-Adaptive Inference library.
//!
//! ```text
//! nai generate --dataset arxiv --scale test --out data/arxiv
//! nai train    --graph data/arxiv.graph --split data/arxiv.split \
//!              --model-kind sgc --k 3 --gates --out model.naic
//! nai infer    --graph data/arxiv.graph --split data/arxiv.split \
//!              --model model.naic --nap distance --ts 0.5
//! nai eval     --graph data/arxiv.graph --split data/arxiv.split --model model.naic
//! nai stream   --graph data/arxiv.graph --split data/arxiv.split \
//!              --model model.naic --arrivals 500 --batch 16
//! ```

mod args;
mod bench;
mod commands;
mod lint;

use args::ParsedArgs;
use commands::CliError;

const USAGE: &str = "\
nai — Node-Adaptive Inference for Scalable GNNs

USAGE:
  nai <COMMAND> [--flag value ...]

COMMANDS:
  generate   Materialize a dataset proxy to disk
             --dataset flickr|arxiv|products  --scale test|bench  --out PATH
  train      Train the NAI pipeline, save a checkpoint
             --dataset/--scale or --graph/--split, --model-kind sgc|sign|s2gc|gamlp,
             --k N, --epochs N, --hidden N, --lr F, --gates, --no-distill,
             --seed N, --out PATH
  infer      Deploy a checkpoint, run one adaptive inference pass
             data flags, --model PATH, --nap fixed|distance|gate|upper,
             --ts F, --tmin N, --tmax N, --batch N, --parallel-spmm
  eval       Compare all NAP policies on one deployment
             data flags, --model PATH, --ts F, --tmin N, --batch N
  stream     Streaming-arrival demo with latency percentiles
             data flags, --model PATH, --nap ..., --arrivals N, --degree N,
             --batch N, --seed N, --parallel-spmm
  serve      Online inference service (HTTP + newline-JSON, micro-batching)
             data flags, --model PATH, --nap ..., --port N (0 = ephemeral),
             --workers N, --max-batch N, --max-wait-ms F, --queue-cap N,
             --shed-at F, --shed-tmax N, --cache, --cache-cap N,
             --parallel-spmm
  loadgen    Closed-loop load driver against a running `nai serve`
             --addr HOST:PORT, --requests N, --clients N,
             --mode infer|ingest|mixed, --sampling uniform|zipf, --zipf-s F,
             --nodes-per-request N, --seed N, --cache (print server cache
             counters after the run), --shutdown
  bench      Scenario-matrix benchmark → machine-readable JSON report
             --json PATH, --scale test|bench,
             --topologies power-law,sbm-homophilous,sbm-heterophilous,
                          small-world,hub-star (comma list; default all),
             --workloads uniform-read,zipf-read,mixed-mutation,bursty-zipf
                          (comma list; default all),
             --requests N, --clients N, --workers N, --model-kind KIND,
             --k N, --epochs N, --hidden N, --nap ..., --seed N,
             --queue-cap N, --max-batch N, --max-wait-ms F,
             --shed-at F, --shed-tmax N, --cache, --cache-cap N
  lint       Token-aware static analysis of the project invariants
             --workspace (lint every member crate of the enclosing
             workspace), or bare PATHS (files, directories, or crate
             roots; paths go before flags). Nonzero exit on findings.

Data flags: either --dataset NAME --scale SCALE (generated proxy) or
--graph PATH --split PATH (files from `nai generate`).
";

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match ParsedArgs::parse(&raw) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let result = match parsed.command.as_str() {
        "generate" => commands::generate(&parsed),
        "train" => commands::train(&parsed),
        "infer" => commands::infer(&parsed),
        "eval" => commands::eval(&parsed),
        "stream" => commands::stream(&parsed),
        "serve" => commands::serve(&parsed),
        "loadgen" => commands::loadgen(&parsed),
        "bench" => bench::bench(&parsed),
        "lint" => lint::lint(&parsed),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => {
            eprintln!("error: unknown command `{other}`\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        match e {
            CliError::Args(e) => eprintln!("error: {e}\n\n{USAGE}"),
            CliError::Other(msg) => eprintln!("error: {msg}"),
        }
        std::process::exit(1);
    }
}
