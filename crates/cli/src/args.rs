//! Minimal `--flag value` argument parsing.
//!
//! The offline dependency set has no dedicated CLI parser pinned for this
//! workspace, and the surface is small: every subcommand takes
//! `--key value` pairs (plus bare `--key` booleans). Unknown keys are
//! errors, so typos fail loudly instead of silently using defaults.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus its flags.
#[derive(Debug, Clone)]
pub struct ParsedArgs {
    /// First positional token (the subcommand).
    pub command: String,
    /// Bare (non-`--flag`) tokens after the subcommand. Only commands
    /// that opt in via [`Self::finish_with_positional`] accept these;
    /// for everything else [`Self::finish`] rejects them, so a typoed
    /// flag value still fails loudly.
    pub positional: Vec<String>,
    flags: BTreeMap<String, String>,
}

/// Argument-parsing failures, rendered to the user with usage help.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand was given.
    MissingCommand,
    /// A token that is not a `--flag`.
    UnexpectedToken(String),
    /// A flag the subcommand does not accept.
    UnknownFlag(String),
    /// A flag value failed to parse.
    BadValue {
        /// The flag name.
        flag: String,
        /// The offending value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
    /// A required flag was absent.
    MissingFlag(String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "no subcommand given"),
            ArgError::UnexpectedToken(t) => write!(f, "unexpected token `{t}`"),
            ArgError::UnknownFlag(k) => write!(f, "unknown flag `--{k}`"),
            ArgError::BadValue {
                flag,
                value,
                expected,
            } => write!(f, "bad value `{value}` for --{flag}: expected {expected}"),
            ArgError::MissingFlag(k) => write!(f, "missing required flag `--{k}`"),
        }
    }
}

impl std::error::Error for ArgError {}

impl ParsedArgs {
    /// Parses raw arguments (excluding the program name) into a
    /// subcommand and `--key value` flags. A `--key` immediately followed
    /// by another `--key` (or end of input) is a boolean flag with value
    /// `"true"`.
    ///
    /// # Errors
    /// Returns [`ArgError`] on structural problems; flag *validity* is
    /// checked later by [`Self::finish`].
    pub fn parse(args: &[String]) -> Result<Self, ArgError> {
        let mut it = args.iter().peekable();
        let command = it.next().ok_or(ArgError::MissingCommand)?.clone();
        if command.starts_with("--") {
            return Err(ArgError::MissingCommand);
        }
        let mut flags = BTreeMap::new();
        let mut positional = Vec::new();
        while let Some(tok) = it.next() {
            let Some(key) = tok.strip_prefix("--") else {
                // Bare tokens are collected here and rejected later by
                // `finish` unless the command accepts positionals.
                positional.push(tok.clone());
                continue;
            };
            let value = match it.peek() {
                Some(next) if !next.starts_with("--") => it.next().unwrap().clone(),
                _ => "true".to_string(),
            };
            flags.insert(key.to_string(), value);
        }
        Ok(Self {
            command,
            positional,
            flags,
        })
    }

    /// String flag with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.flags.get(key).map(String::as_str).unwrap_or(default)
    }

    /// Required string flag.
    ///
    /// # Errors
    /// [`ArgError::MissingFlag`] when absent.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.flags
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| ArgError::MissingFlag(key.to_string()))
    }

    /// Parsed numeric flag with a default.
    ///
    /// # Errors
    /// [`ArgError::BadValue`] when present but unparseable.
    pub fn get_parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                flag: key.to_string(),
                value: v.clone(),
                expected: std::any::type_name::<T>(),
            }),
        }
    }

    /// Boolean flag: present (any value except "false") → true.
    pub fn get_bool(&self, key: &str) -> bool {
        matches!(self.flags.get(key), Some(v) if v != "false")
    }

    /// Validates that only `allowed` flags were provided; call once per
    /// subcommand after reading everything.
    ///
    /// # Errors
    /// [`ArgError::UnknownFlag`] on the first unexpected key, or
    /// [`ArgError::UnexpectedToken`] if bare tokens were given (the
    /// command takes no positionals).
    pub fn finish(&self, allowed: &[&str]) -> Result<(), ArgError> {
        if let Some(p) = self.positional.first() {
            return Err(ArgError::UnexpectedToken(p.clone()));
        }
        self.finish_with_positional(allowed)
    }

    /// Like [`Self::finish`], but the command accepts bare positional
    /// tokens (read from [`Self::positional`]).
    ///
    /// # Errors
    /// [`ArgError::UnknownFlag`] on the first unexpected key.
    pub fn finish_with_positional(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for key in self.flags.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(ArgError::UnknownFlag(key.clone()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let p = ParsedArgs::parse(&args(&["train", "--k", "5", "--gates"])).unwrap();
        assert_eq!(p.command, "train");
        assert_eq!(p.get_or("k", "1"), "5");
        assert!(p.get_bool("gates"));
        assert!(!p.get_bool("absent"));
    }

    #[test]
    fn missing_command_is_error() {
        assert_eq!(
            ParsedArgs::parse(&args(&[])).unwrap_err(),
            ArgError::MissingCommand
        );
        assert_eq!(
            ParsedArgs::parse(&args(&["--k", "5"])).unwrap_err(),
            ArgError::MissingCommand
        );
    }

    #[test]
    fn bare_value_is_unexpected_unless_opted_in() {
        // Parse collects bare tokens; `finish` rejects them so commands
        // without positionals still fail loudly on typos.
        let p = ParsedArgs::parse(&args(&["train", "k", "5"])).unwrap();
        assert_eq!(
            p.finish(&["k"]).unwrap_err(),
            ArgError::UnexpectedToken("k".to_string())
        );
        // A command that opts in sees them in order.
        let p = ParsedArgs::parse(&args(&["lint", "a/b.rs", "c", "--workspace"])).unwrap();
        p.finish_with_positional(&["workspace"]).unwrap();
        assert_eq!(p.positional, ["a/b.rs", "c"]);
        assert!(p.get_bool("workspace"));
    }

    #[test]
    fn numeric_parsing_and_defaults() {
        let p = ParsedArgs::parse(&args(&["x", "--epochs", "30"])).unwrap();
        assert_eq!(p.get_parse_or("epochs", 10usize).unwrap(), 30);
        assert_eq!(p.get_parse_or("k", 5usize).unwrap(), 5);
        let bad = ParsedArgs::parse(&args(&["x", "--epochs", "many"])).unwrap();
        assert!(bad.get_parse_or("epochs", 10usize).is_err());
    }

    #[test]
    fn unknown_flags_are_rejected_by_finish() {
        let p = ParsedArgs::parse(&args(&["x", "--good", "1", "--bad", "2"])).unwrap();
        assert!(p.finish(&["good"]).is_err());
        assert!(p.finish(&["good", "bad"]).is_ok());
    }

    #[test]
    fn require_reports_missing() {
        let p = ParsedArgs::parse(&args(&["x"])).unwrap();
        assert_eq!(
            p.require("out").unwrap_err(),
            ArgError::MissingFlag("out".to_string())
        );
    }

    #[test]
    fn boolean_false_literal() {
        let p = ParsedArgs::parse(&args(&["x", "--gates", "false"])).unwrap();
        assert!(!p.get_bool("gates"));
    }
}
