//! `nai bench` — the machine-readable scenario-matrix harness.
//!
//! Runs a (topology × workload) matrix: every [`TopologySpec`] is
//! built and quick-trained once, then every [`WorkloadSpec`] drives the
//! same deterministic op stream through **two** stacks —
//!
//! * the **serve stack** ([`NaiService`]: admission control, dynamic
//!   micro-batching, sequenced replication over shard replicas), paced
//!   closed-loop over client threads or open-loop on the workload's
//!   burst schedule;
//! * the **offline engine** (one solo [`StreamingEngine`] replaying the
//!   stream single-threaded) — the raw algorithmic cost with no
//!   batching or queueing on top.
//!
//! The report lands at `--json PATH` with schema version
//! [`SCHEMA_VERSION`]. **Stability promise:** existing fields are never
//! renamed or removed under the same schema version — new fields may be
//! added; consumers must ignore unknown keys. The emitted file is
//! parsed back and checked against [`validate_report`]'s hard-coded
//! field list before the command exits, so emitter drift fails the run
//! (and CI) instead of silently breaking the perf trajectory in
//! `BENCH_scenarios.json`.

use crate::args::ParsedArgs;
use crate::commands::{inference_config_of, model_kind_of, CliError, CliResult};
use nai_core::checkpoint::ModelCheckpoint;
use nai_core::config::{
    CacheConfig, DistillConfig, InferenceConfig, LoadShedPolicy, NapMode, PipelineConfig,
    ServeConfig,
};
use nai_core::pipeline::NaiPipeline;
use nai_datasets::{Scale, Scenario, TopologySpec};
use nai_serve::{
    Arrivals, HttpClient, Json, NaiService, Op, Reply, Request, ServeError, Server, Ticket,
    WorkloadSampler, WorkloadSpec,
};
use nai_stream::{DynamicGraph, MacsBreakdown, StreamingEngine};
use std::time::{Duration, Instant};

/// Version of the emitted JSON schema; bumped only when an existing
/// field is renamed, removed, or changes meaning. v2: serve latencies
/// come from the log-bucketed observability histograms (quantiles
/// within ~2% relative error, `latency_us.mean` is now fractional) and
/// each cell gains additive `serve.stage_latency` and `serve.batch`
/// sections. Later additive v2 fields: `serve.latency_ns` (exact
/// nanosecond quantiles — `latency_us` clamps non-zero samples to
/// ≥1µs so sub-microsecond cache hits don't read as 0), the `parse`
/// stage, `batch.closed_on_idle`/`closed_on_shutdown`, and the
/// optional per-cell `transport` section emitted under `--transport`
/// (the same op stream replayed over real HTTP through the reactor,
/// pipelined keep-alive and/or per-request connections).
pub const SCHEMA_VERSION: u64 = 2;

/// Which HTTP transport modes to measure per cell (off by default:
/// the core matrix drives [`NaiService`] directly).
#[derive(Debug, Clone, Copy)]
struct TransportPlan {
    pipelined: bool,
    per_request: bool,
    depth: usize,
}

impl TransportPlan {
    fn none() -> Self {
        Self {
            pipelined: false,
            per_request: false,
            depth: 1,
        }
    }

    fn any(&self) -> bool {
        self.pipelined || self.per_request
    }
}

/// Client-observed outcome counts of one serve-stack run.
#[derive(Debug, Default)]
struct RunOutcome {
    ok: u64,
    overloaded: u64,
    errors: u64,
    wall: Duration,
}

/// Offline (solo-engine) replay results.
struct OfflineOutcome {
    predictions: u64,
    depth_histogram: Vec<u64>,
    macs: MacsBreakdown,
    wall: Duration,
}

/// `nai bench`: run the matrix and emit the JSON report.
pub fn bench(args: &ParsedArgs) -> CliResult {
    args.finish(&[
        "json",
        "scale",
        "topologies",
        "workloads",
        "requests",
        "clients",
        "workers",
        "model-kind",
        "k",
        "epochs",
        "hidden",
        "nap",
        "ts",
        "tmin",
        "tmax",
        "batch",
        "parallel-spmm",
        "seed",
        "queue-cap",
        "max-batch",
        "max-wait-ms",
        "shed-at",
        "shed-tmax",
        "cache",
        "cache-cap",
        "transport",
        "pipeline",
    ])?;
    let json_path = args.require("json")?.to_string();
    let scale = match args.get_or("scale", "test") {
        "test" => Scale::Test,
        "bench" => Scale::Bench,
        other => {
            return Err(CliError::Other(format!(
                "bad --scale `{other}` (expected test | bench)"
            )))
        }
    };
    let topologies = match args.require("topologies") {
        Ok(list) => list
            .split(',')
            .map(|n| TopologySpec::named(n.trim(), scale))
            .collect::<Result<Vec<_>, _>>()
            .map_err(CliError::Other)?,
        Err(_) => TopologySpec::matrix(scale),
    };
    let workloads = match args.require("workloads") {
        Ok(list) => list
            .split(',')
            .map(|n| WorkloadSpec::named(n.trim()))
            .collect::<Result<Vec<_>, _>>()
            .map_err(CliError::Other)?,
        Err(_) => WorkloadSpec::matrix(),
    };
    for w in &workloads {
        w.validate().map_err(CliError::Other)?;
    }
    let requests = args.get_parse_or("requests", 120usize)?.max(1);
    let clients = args.get_parse_or("clients", 2usize)?.max(1);
    let seed = args.get_parse_or("seed", 7u64)?;
    let kind = model_kind_of(args)?;
    let k = args.get_parse_or("k", 2usize)?;
    let epochs = args.get_parse_or("epochs", 8usize)?;
    let hidden = args.get_parse_or("hidden", 8usize)?;
    let infer_cfg = inference_config_of(args, k)?;
    let max_wait_ms = args.get_parse_or("max-wait-ms", 1.0f64)?;
    if !max_wait_ms.is_finite() || !(0.0..=60_000.0).contains(&max_wait_ms) {
        return Err(CliError::Other(format!(
            "--max-wait-ms must be a finite value in [0, 60000], got {max_wait_ms}"
        )));
    }
    let serve_cfg = ServeConfig {
        workers: args.get_parse_or("workers", 2usize)?,
        max_batch: args.get_parse_or("max-batch", 16usize)?,
        max_wait: Duration::from_secs_f64(max_wait_ms / 1000.0),
        queue_cap: args.get_parse_or("queue-cap", 64usize)?,
        shed: LoadShedPolicy {
            trigger_fraction: args.get_parse_or("shed-at", 0.75f64)?,
            t_max_cap: args.get_parse_or("shed-tmax", 1usize)?,
        },
        cache: if args.get_bool("cache") {
            CacheConfig::on(args.get_parse_or("cache-cap", 4096usize)?)
        } else {
            CacheConfig::off()
        },
    };
    serve_cfg.validate().map_err(CliError::Other)?;
    let depth = args.get_parse_or("pipeline", 32usize)?.max(1);
    let transport = match args.get_or("transport", "none") {
        "none" => TransportPlan::none(),
        "pipelined" => TransportPlan {
            pipelined: true,
            per_request: false,
            depth,
        },
        "per-request" => TransportPlan {
            pipelined: false,
            per_request: true,
            depth,
        },
        "both" => TransportPlan {
            pipelined: true,
            per_request: true,
            depth,
        },
        other => {
            return Err(CliError::Other(format!(
                "bad --transport `{other}` (expected none | pipelined | per-request | both)"
            )))
        }
    };

    println!(
        "bench: {} topologies × {} workloads, {requests} requests/cell, {} shards, nap {:?}",
        topologies.len(),
        workloads.len(),
        serve_cfg.workers,
        infer_cfg.nap,
    );

    let mut cells: Vec<Json> = Vec::new();
    for topo in &topologies {
        let scenario = topo.build();
        println!(
            "  [{}] {} nodes, {} edges — training {} (k={k}, epochs={epochs}) ...",
            topo.name,
            scenario.graph.num_nodes(),
            scenario.graph.num_edges(),
            kind.name(),
        );
        let pcfg = PipelineConfig {
            k,
            hidden: vec![hidden],
            epochs,
            lr: 0.01,
            seed,
            distill: DistillConfig {
                epochs: epochs / 3 + 1,
                ensemble_r: DistillConfig::default().ensemble_r.min(k),
                ..DistillConfig::default()
            },
            ..PipelineConfig::default()
        };
        let needs_gates = matches!(infer_cfg.nap, NapMode::Gate);
        let trained =
            NaiPipeline::new(kind, pcfg).train(&scenario.graph, &scenario.split, needs_gates);
        let ckpt = ModelCheckpoint::from_engine(&trained.engine, 0.5);
        let seed_graph = DynamicGraph::from_graph(&scenario.graph);

        for workload in &workloads {
            let cell = run_cell(
                &scenario,
                &ckpt,
                &seed_graph,
                workload,
                &infer_cfg,
                serve_cfg,
                requests,
                clients,
                seed,
                transport,
            )?;
            cells.push(cell);
        }
    }

    let report = Json::obj(vec![
        ("schema_version", Json::uint(SCHEMA_VERSION)),
        ("harness", Json::str("nai bench")),
        (
            "scale",
            Json::str(match scale {
                Scale::Test => "test",
                Scale::Bench => "bench",
            }),
        ),
        ("model_kind", Json::str(kind.name())),
        ("nap", Json::str(nap_name(&infer_cfg))),
        ("k", Json::uint(k as u64)),
        ("workers", Json::uint(serve_cfg.workers as u64)),
        ("requests_per_cell", Json::uint(requests as u64)),
        ("clients", Json::uint(clients as u64)),
        ("seed", Json::uint(seed)),
        ("cache_enabled", Json::Bool(serve_cfg.cache.enabled)),
        ("cache_cap", Json::uint(serve_cfg.cache.cap as u64)),
        (
            "topologies",
            Json::Arr(topologies.iter().map(|t| Json::str(&t.name)).collect()),
        ),
        (
            "workloads",
            Json::Arr(workloads.iter().map(|w| Json::str(&w.name)).collect()),
        ),
        ("cells", Json::Arr(cells)),
    ]);
    std::fs::write(&json_path, format!("{report}\n"))
        .map_err(|e| CliError::Other(format!("writing {json_path}: {e}")))?;

    // Self-check: parse the file back and validate it against the
    // hard-coded schema, so emitter drift fails the run (and CI).
    let raw = std::fs::read_to_string(&json_path)
        .map_err(|e| CliError::Other(format!("re-reading {json_path}: {e}")))?;
    let parsed = Json::parse(raw.trim())
        .map_err(|e| CliError::Other(format!("emitted JSON does not parse: {e}")))?;
    let topo_names: Vec<String> = topologies.iter().map(|t| t.name.clone()).collect();
    let workload_names: Vec<String> = workloads.iter().map(|w| w.name.clone()).collect();
    validate_report(&parsed, &topo_names, &workload_names)
        .map_err(|e| CliError::Other(format!("schema validation failed: {e}")))?;
    println!(
        "bench: wrote {} cells to {json_path} (schema v{SCHEMA_VERSION}, validated)",
        topo_names.len() * workload_names.len()
    );
    Ok(())
}

/// One (topology × workload) cell: offline replay + serve-stack run.
#[allow(clippy::too_many_arguments)]
fn run_cell(
    scenario: &Scenario,
    ckpt: &ModelCheckpoint,
    seed_graph: &DynamicGraph,
    workload: &WorkloadSpec,
    infer_cfg: &InferenceConfig,
    serve_cfg: ServeConfig,
    requests: usize,
    clients: usize,
    seed: u64,
    transport: TransportPlan,
) -> Result<Json, CliError> {
    // One deterministic op stream per cell. Ops only reference the seed
    // population, so they are valid under any concurrent interleaving
    // (ingested ids are never read back here — `nai loadgen` covers
    // read-your-writes).
    let population = scenario.graph.num_nodes() as u32;
    let feature_dim = scenario.graph.feature_dim();
    let mut sampler = WorkloadSampler::new(workload.clone(), seed ^ 0xCE11);
    let ops: Vec<Op> = (0..requests)
        .map(|_| sampler.next_op(population, feature_dim))
        .collect();

    let offline = offline_run(ckpt, seed_graph, &ops, infer_cfg);

    let engines = StreamingEngine::shard_replicas(ckpt, seed_graph, serve_cfg.workers);
    let service = NaiService::new(engines, *infer_cfg, serve_cfg).map_err(CliError::Other)?;
    let outcome = match workload.arrivals {
        Arrivals::Closed => closed_loop(&service, &ops, clients),
        Arrivals::Open { burst, period } => open_loop(&service, &ops, burst, period),
    };
    service.shutdown();
    let metrics = service.metrics();

    let serve_throughput = if outcome.wall.as_secs_f64() > 0.0 {
        outcome.ok as f64 / outcome.wall.as_secs_f64()
    } else {
        0.0
    };
    let offline_throughput = if offline.wall.as_secs_f64() > 0.0 {
        offline.predictions as f64 / offline.wall.as_secs_f64()
    } else {
        0.0
    };
    let qs = metrics.latency.quantiles(&[0.5, 0.95, 0.99]);
    // Clamp non-zero samples to ≥1µs: sub-microsecond cache hits would
    // otherwise truncate to 0µs and read as "no latency". Exact values
    // live in the additive `latency_ns` section.
    let us = |ns: u64| Json::uint(if ns == 0 { 0 } else { (ns / 1_000).max(1) });
    println!(
        "    [{} × {}] serve {:.0} req/s (p99 {}us, shed {}), offline {:.0} preds/s",
        scenario.name,
        workload.name,
        serve_throughput,
        qs[2] / 1_000,
        metrics.shed_ops,
        offline_throughput,
    );
    // Per-stage lifecycle spans from the serve-side observability hub:
    // where a request's wall time actually went in this cell.
    let stage_latency = Json::Obj(
        nai_obs::Stage::ALL
            .iter()
            .map(|&s| {
                let h = &metrics.stages[s.index()];
                (
                    s.name().to_string(),
                    Json::obj(vec![
                        ("count", Json::uint(h.count())),
                        ("mean_us", Json::Num(h.mean() / 1_000.0)),
                        ("p99_us", us(h.quantile(0.99))),
                    ]),
                )
            })
            .collect(),
    );

    // Optional HTTP replay: the same op stream again, but over real
    // sockets through the event-driven reactor — what the transport
    // itself costs on top of the service stack. Each mode gets a fresh
    // service so mutations from the direct run don't skew it.
    let transport_section = if transport.any() {
        let mut entries: Vec<(String, Json)> = vec![(
            "pipeline_depth".to_string(),
            Json::uint(transport.depth as u64),
        )];
        for (name, per_request) in [("pipelined", false), ("per_request", true)] {
            if (per_request && !transport.per_request) || (!per_request && !transport.pipelined) {
                continue;
            }
            let engines = StreamingEngine::shard_replicas(ckpt, seed_graph, serve_cfg.workers);
            let service =
                NaiService::new(engines, *infer_cfg, serve_cfg).map_err(CliError::Other)?;
            let server = Server::start(std::sync::Arc::new(service), "127.0.0.1:0")
                .map_err(|e| CliError::Other(format!("transport server: {e}")))?;
            let http = http_run(
                server.local_addr(),
                &ops,
                clients,
                per_request,
                transport.depth,
            );
            server.shutdown();
            let rps = if http.wall.as_secs_f64() > 0.0 {
                http.ok as f64 / http.wall.as_secs_f64()
            } else {
                0.0
            };
            println!(
                "      transport {name}: {rps:.0} req/s (ok {}, overloaded {}, errors {})",
                http.ok, http.overloaded, http.errors,
            );
            entries.push((
                name.to_string(),
                Json::obj(vec![
                    ("ok", Json::uint(http.ok)),
                    ("overloaded", Json::uint(http.overloaded)),
                    ("errors", Json::uint(http.errors)),
                    ("wall_ms", Json::Num(http.wall.as_secs_f64() * 1e3)),
                    ("throughput_rps", Json::Num(rps)),
                ]),
            ));
        }
        Some(Json::Obj(entries))
    } else {
        None
    };

    let mut fields = vec![
        ("topology", Json::str(&scenario.name)),
        ("workload", Json::str(&workload.name)),
        (
            "graph",
            Json::obj(vec![
                ("nodes", Json::uint(scenario.graph.num_nodes() as u64)),
                ("edges", Json::uint(scenario.graph.num_edges() as u64)),
            ]),
        ),
        ("requests", Json::uint(requests as u64)),
        (
            "serve",
            Json::obj(vec![
                ("ok", Json::uint(outcome.ok)),
                ("overloaded", Json::uint(outcome.overloaded)),
                ("errors", Json::uint(outcome.errors)),
                ("wall_ms", Json::Num(outcome.wall.as_secs_f64() * 1e3)),
                ("throughput_rps", Json::Num(serve_throughput)),
                (
                    "latency_us",
                    Json::obj(vec![
                        ("p50", us(qs[0])),
                        ("p95", us(qs[1])),
                        ("p99", us(qs[2])),
                        ("max", us(metrics.latency.max())),
                        ("mean", Json::Num(metrics.latency.mean() / 1_000.0)),
                    ]),
                ),
                (
                    "latency_ns",
                    Json::obj(vec![
                        ("p50", Json::uint(qs[0])),
                        ("p95", Json::uint(qs[1])),
                        ("p99", Json::uint(qs[2])),
                        ("max", Json::uint(metrics.latency.max())),
                    ]),
                ),
                ("stage_latency", stage_latency),
                (
                    "batch",
                    Json::obj(vec![
                        (
                            "closed_on_max_batch",
                            Json::uint(metrics.closed_on_max_batch),
                        ),
                        ("closed_on_deadline", Json::uint(metrics.closed_on_deadline)),
                        ("closed_on_idle", Json::uint(metrics.closed_on_idle)),
                        ("closed_on_shutdown", Json::uint(metrics.closed_on_shutdown)),
                        ("mean_size", Json::Num(metrics.batch_sizes.mean())),
                    ]),
                ),
                ("shed_ops", Json::uint(metrics.shed_ops)),
                ("degraded_batches", Json::uint(metrics.degraded_batches)),
                ("cache_hits", Json::uint(metrics.cache_hits)),
                ("cache_misses", Json::uint(metrics.cache_misses)),
                ("mean_depth", Json::Num(metrics.mean_depth())),
                (
                    "depth_histogram",
                    histogram_json(&metrics.depths.exact_small_counts()),
                ),
                ("macs", macs_json(&metrics.macs)),
            ]),
        ),
        (
            "offline",
            Json::obj(vec![
                ("predictions", Json::uint(offline.predictions)),
                ("wall_ms", Json::Num(offline.wall.as_secs_f64() * 1e3)),
                ("throughput_rps", Json::Num(offline_throughput)),
                (
                    "mean_depth",
                    Json::Num(mean_depth(&offline.depth_histogram)),
                ),
                ("depth_histogram", histogram_json(&offline.depth_histogram)),
                ("macs", macs_json(&offline.macs)),
            ]),
        ),
    ];
    if let Some(t) = transport_section {
        fields.push(("transport", t));
    }
    Ok(Json::obj(fields))
}

/// Drives the op stream over HTTP against a running server —
/// closed-loop client threads, each either pipelining keep-alive
/// bursts of `depth` requests or opening one `Connection: close`
/// connection per request.
fn http_run(
    addr: std::net::SocketAddr,
    ops: &[Op],
    clients: usize,
    per_request: bool,
    depth: usize,
) -> RunOutcome {
    let counters = std::sync::Mutex::new((0u64, 0u64, 0u64));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let my_lines: Vec<String> = ops
                .iter()
                .enumerate()
                .filter(|(i, _)| i % clients == c)
                .map(|(_, op)| {
                    let line = nai_serve::proto::render_request(&Request {
                        op: op.clone(),
                        shard: None,
                    });
                    format!("{line}\n")
                })
                .collect();
            let counters = &counters;
            scope.spawn(move || {
                // 0 = ok, 1 = overloaded, 2 = error.
                let classify = |body: &str| -> usize {
                    match Json::parse(body.trim()) {
                        Ok(v) if v.get("ok").and_then(Json::as_bool) == Some(true) => 0,
                        Ok(v) if v.get("error").and_then(Json::as_str) == Some("overloaded") => 1,
                        _ => 2,
                    }
                };
                let mut tallies = [0u64; 3];
                if per_request {
                    for line in &my_lines {
                        match HttpClient::connect(addr)
                            .and_then(|mut c| c.request_closing("POST", "/v1", Some(line)))
                        {
                            Ok((_, body)) => tallies[classify(&body)] += 1,
                            Err(_) => tallies[2] += 1,
                        }
                    }
                } else {
                    let mut client = HttpClient::connect(addr).ok();
                    let mut sent = 0usize;
                    while sent < my_lines.len() {
                        let window = depth.min(my_lines.len() - sent);
                        let refs: Vec<&str> = my_lines[sent..sent + window]
                            .iter()
                            .map(String::as_str)
                            .collect();
                        match client
                            .as_mut()
                            .ok_or_else(|| {
                                std::io::Error::new(std::io::ErrorKind::NotConnected, "down")
                            })
                            .and_then(|c| c.pipeline("POST", "/v1", &refs))
                        {
                            Ok(responses) => {
                                for (_, body) in responses {
                                    tallies[classify(&body)] += 1;
                                }
                            }
                            Err(_) => {
                                tallies[2] += window as u64;
                                // Poisoned connection; reconnect or give
                                // up on the remainder of this share.
                                client = HttpClient::connect(addr).ok();
                                if client.is_none() {
                                    tallies[2] += (my_lines.len() - sent - window) as u64;
                                    sent = my_lines.len();
                                    continue;
                                }
                            }
                        }
                        sent += window;
                    }
                }
                let mut agg = counters.lock().unwrap();
                agg.0 += tallies[0];
                agg.1 += tallies[1];
                agg.2 += tallies[2];
            });
        }
    });
    let wall = start.elapsed();
    let (ok, overloaded, errors) = counters.into_inner().unwrap();
    RunOutcome {
        ok,
        overloaded,
        errors,
        wall,
    }
}

/// Replays the op stream on one solo engine, single-threaded — the raw
/// algorithmic cost of the cell with no serving layer on top.
fn offline_run(
    ckpt: &ModelCheckpoint,
    seed_graph: &DynamicGraph,
    ops: &[Op],
    cfg: &InferenceConfig,
) -> OfflineOutcome {
    let mut engine = StreamingEngine::from_checkpoint(ckpt, seed_graph.clone());
    let mut depth_histogram: Vec<u64> = Vec::new();
    let bump = |hist: &mut Vec<u64>, depth: usize| {
        if depth >= hist.len() {
            hist.resize(depth + 1, 0);
        }
        hist[depth] += 1;
    };
    let mut predictions = 0u64;
    let start = Instant::now();
    for op in ops {
        match op {
            Op::Infer { nodes } => {
                for (_, depth) in engine.infer_nodes(nodes, cfg) {
                    bump(&mut depth_histogram, depth);
                    predictions += 1;
                }
            }
            Op::Ingest {
                features,
                neighbors,
            } => {
                engine.ingest(features, neighbors);
                for p in engine.flush(cfg) {
                    bump(&mut depth_histogram, p.depth);
                    predictions += 1;
                }
            }
            Op::ObserveEdge { u, v } => {
                engine.observe_edge(*u, *v);
            }
        }
    }
    OfflineOutcome {
        predictions,
        depth_histogram,
        macs: engine.macs_breakdown(),
        wall: start.elapsed(),
    }
}

/// Closed loop: `clients` threads in lockstep, each waiting for its
/// reply before issuing the next request of its share.
fn closed_loop(service: &NaiService, ops: &[Op], clients: usize) -> RunOutcome {
    let counters = std::sync::Mutex::new((0u64, 0u64, 0u64));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let my_ops: Vec<Op> = ops
                .iter()
                .enumerate()
                .filter(|(i, _)| i % clients == c)
                .map(|(_, op)| op.clone())
                .collect();
            let counters = &counters;
            scope.spawn(move || {
                let (mut ok, mut overloaded, mut errors) = (0u64, 0u64, 0u64);
                for op in my_ops {
                    match service.call(Request { op, shard: None }) {
                        Ok(Reply::Error { .. }) => errors += 1,
                        Ok(_) => ok += 1,
                        Err(ServeError::Overloaded) => overloaded += 1,
                        Err(_) => errors += 1,
                    }
                }
                let mut agg = counters.lock().unwrap();
                agg.0 += ok;
                agg.1 += overloaded;
                agg.2 += errors;
            });
        }
    });
    let wall = start.elapsed();
    let (ok, overloaded, errors) = counters.into_inner().unwrap();
    RunOutcome {
        ok,
        overloaded,
        errors,
        wall,
    }
}

/// Open loop: requests fire on the burst schedule regardless of
/// replies (offered load does not back off), so admission control and
/// load shedding actually engage; replies are collected afterwards.
fn open_loop(service: &NaiService, ops: &[Op], burst: usize, period: Duration) -> RunOutcome {
    let mut outcome = RunOutcome::default();
    let mut tickets: Vec<Ticket> = Vec::with_capacity(ops.len());
    let start = Instant::now();
    for (i, op) in ops.iter().enumerate() {
        let due = start + period * (i / burst.max(1)) as u32;
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        match service.submit(Request {
            op: op.clone(),
            shard: None,
        }) {
            Ok(t) => tickets.push(t),
            Err(ServeError::Overloaded) => outcome.overloaded += 1,
            Err(_) => outcome.errors += 1,
        }
    }
    for t in tickets {
        match t.wait(Duration::from_secs(30)) {
            Ok(Reply::Error { .. }) | Err(_) => outcome.errors += 1,
            Ok(_) => outcome.ok += 1,
        }
    }
    outcome.wall = start.elapsed();
    outcome
}

fn histogram_json(hist: &[u64]) -> Json {
    Json::Arr(hist.iter().map(|&c| Json::uint(c)).collect())
}

fn macs_json(m: &MacsBreakdown) -> Json {
    Json::obj(vec![
        ("propagation", Json::uint(m.propagation)),
        ("nap", Json::uint(m.nap)),
        ("classification", Json::uint(m.classification)),
        ("replication", Json::uint(m.replication)),
        ("total", Json::uint(m.total())),
    ])
}

fn mean_depth(hist: &[u64]) -> f64 {
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let weighted: u64 = hist.iter().enumerate().map(|(d, &c)| d as u64 * c).sum();
    weighted as f64 / total as f64
}

fn nap_name(cfg: &InferenceConfig) -> &'static str {
    match cfg.nap {
        NapMode::Fixed => "fixed",
        NapMode::Distance { .. } => "distance",
        NapMode::Gate => "gate",
        NapMode::UpperBound { .. } => "upper",
    }
}

/// Validates a bench report against the **hard-coded** schema: version,
/// top-level fields, one cell per (topology × workload), and every
/// per-cell field `nai bench` promises. Lives apart from the emitter on
/// purpose — renaming or dropping a field there makes this fail, which
/// is exactly the schema-drift signal CI wants.
pub fn validate_report(
    report: &Json,
    topologies: &[String],
    workloads: &[String],
) -> Result<(), String> {
    match report.get("schema_version").and_then(Json::as_u64) {
        Some(v) if v == SCHEMA_VERSION => {}
        other => {
            return Err(format!(
                "schema_version must be {SCHEMA_VERSION}, got {other:?}"
            ))
        }
    }
    for key in [
        "harness",
        "scale",
        "model_kind",
        "nap",
        "k",
        "workers",
        "requests_per_cell",
        "clients",
        "seed",
        "cache_enabled",
        "cache_cap",
        "topologies",
        "workloads",
        "cells",
    ] {
        if report.get(key).is_none() {
            return Err(format!("missing top-level field `{key}`"));
        }
    }
    let cells = report
        .get("cells")
        .and_then(Json::as_arr)
        .ok_or("`cells` must be an array")?;
    let field_str = |v: &Json, key: &str| -> Option<String> {
        v.get(key).and_then(Json::as_str).map(str::to_string)
    };
    for topology in topologies {
        for workload in workloads {
            let cell = cells
                .iter()
                .find(|c| {
                    field_str(c, "topology").as_deref() == Some(topology)
                        && field_str(c, "workload").as_deref() == Some(workload)
                })
                .ok_or_else(|| format!("missing cell ({topology} × {workload})"))?;
            let ctx = format!("cell ({topology} × {workload})");
            let graph = cell
                .get("graph")
                .ok_or_else(|| format!("{ctx}: no graph"))?;
            for key in ["nodes", "edges"] {
                if graph.get(key).and_then(Json::as_u64).is_none() {
                    return Err(format!("{ctx}: graph.{key} missing or not a count"));
                }
            }
            if cell.get("requests").and_then(Json::as_u64).is_none() {
                return Err(format!("{ctx}: `requests` missing"));
            }
            for (side, counters) in [
                (
                    "serve",
                    &[
                        "ok",
                        "overloaded",
                        "errors",
                        "shed_ops",
                        "degraded_batches",
                        "cache_hits",
                        "cache_misses",
                    ][..],
                ),
                ("offline", &["predictions"][..]),
            ] {
                let section = cell
                    .get(side)
                    .ok_or_else(|| format!("{ctx}: `{side}` missing"))?;
                for key in counters {
                    if section.get(key).and_then(Json::as_u64).is_none() {
                        return Err(format!("{ctx}: {side}.{key} missing or not a count"));
                    }
                }
                for key in ["wall_ms", "throughput_rps", "mean_depth"] {
                    if section.get(key).and_then(Json::as_f64).is_none() {
                        return Err(format!("{ctx}: {side}.{key} missing or not a number"));
                    }
                }
                let hist = section
                    .get("depth_histogram")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| format!("{ctx}: {side}.depth_histogram missing"))?;
                if hist.iter().any(|c| c.as_u64().is_none()) {
                    return Err(format!("{ctx}: {side}.depth_histogram holds non-counts"));
                }
                let macs = section
                    .get("macs")
                    .ok_or_else(|| format!("{ctx}: {side}.macs missing"))?;
                for key in [
                    "propagation",
                    "nap",
                    "classification",
                    "replication",
                    "total",
                ] {
                    if macs.get(key).and_then(Json::as_u64).is_none() {
                        return Err(format!("{ctx}: {side}.macs.{key} missing"));
                    }
                }
            }
            let serve = cell.get("serve").expect("checked above");
            let latency = serve
                .get("latency_us")
                .ok_or_else(|| format!("{ctx}: serve.latency_us missing"))?;
            for key in ["p50", "p95", "p99", "max"] {
                if latency.get(key).and_then(Json::as_u64).is_none() {
                    return Err(format!("{ctx}: serve.latency_us.{key} missing"));
                }
            }
            if latency.get("mean").and_then(Json::as_f64).is_none() {
                return Err(format!("{ctx}: serve.latency_us.mean missing"));
            }
            // Exact-nanosecond counterpart: `latency_us` clamps non-zero
            // samples to ≥1µs, so sub-µs truth lives here.
            let latency_ns = serve
                .get("latency_ns")
                .ok_or_else(|| format!("{ctx}: serve.latency_ns missing"))?;
            for key in ["p50", "p95", "p99", "max"] {
                if latency_ns.get(key).and_then(Json::as_u64).is_none() {
                    return Err(format!("{ctx}: serve.latency_ns.{key} missing"));
                }
            }
            // Additive observability fields (schema v2): per-stage
            // lifecycle spans and batch anatomy.
            let stages = serve
                .get("stage_latency")
                .ok_or_else(|| format!("{ctx}: serve.stage_latency missing"))?;
            for stage in [
                "parse",
                "queue_wait",
                "batch_wait",
                "engine_propagation",
                "engine_nap",
                "engine_classify",
                "serialize",
            ] {
                let entry = stages
                    .get(stage)
                    .ok_or_else(|| format!("{ctx}: serve.stage_latency.{stage} missing"))?;
                if entry.get("count").and_then(Json::as_u64).is_none()
                    || entry.get("p99_us").and_then(Json::as_u64).is_none()
                    || entry.get("mean_us").and_then(Json::as_f64).is_none()
                {
                    return Err(format!(
                        "{ctx}: serve.stage_latency.{stage} needs count/mean_us/p99_us"
                    ));
                }
            }
            let batch = serve
                .get("batch")
                .ok_or_else(|| format!("{ctx}: serve.batch missing"))?;
            for key in [
                "closed_on_max_batch",
                "closed_on_deadline",
                "closed_on_idle",
                "closed_on_shutdown",
            ] {
                if batch.get(key).and_then(Json::as_u64).is_none() {
                    return Err(format!("{ctx}: serve.batch.{key} missing or not a count"));
                }
            }
            if batch.get("mean_size").and_then(Json::as_f64).is_none() {
                return Err(format!("{ctx}: serve.batch.mean_size missing"));
            }
            // The `transport` section is optional (emitted only under
            // `--transport`), but when present its modes must be whole.
            if let Some(t) = cell.get("transport") {
                if t.get("pipeline_depth").and_then(Json::as_u64).is_none() {
                    return Err(format!("{ctx}: transport.pipeline_depth missing"));
                }
                for mode in ["pipelined", "per_request"] {
                    let Some(section) = t.get(mode) else { continue };
                    for key in ["ok", "overloaded", "errors"] {
                        if section.get(key).and_then(Json::as_u64).is_none() {
                            return Err(format!("{ctx}: transport.{mode}.{key} missing"));
                        }
                    }
                    for key in ["wall_ms", "throughput_rps"] {
                        if section.get(key).and_then(Json::as_f64).is_none() {
                            return Err(format!("{ctx}: transport.{mode}.{key} missing"));
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> Json {
        let raw = r#"{
            "schema_version": 2, "harness": "nai bench", "scale": "test",
            "model_kind": "SGC", "nap": "distance", "k": 2, "workers": 2,
            "requests_per_cell": 4, "clients": 1, "seed": 7,
            "cache_enabled": false, "cache_cap": 4096,
            "topologies": ["t"], "workloads": ["w"],
            "cells": [{
                "topology": "t", "workload": "w",
                "graph": {"nodes": 10, "edges": 20}, "requests": 4,
                "serve": {"ok": 4, "overloaded": 0, "errors": 0,
                          "wall_ms": 1.5, "throughput_rps": 100.0,
                          "latency_us": {"p50": 5, "p95": 9, "p99": 9, "max": 9, "mean": 6.2},
                          "latency_ns": {"p50": 5200, "p95": 9100, "p99": 9400, "max": 9800},
                          "stage_latency": {
                              "parse": {"count": 4, "mean_us": 0.3, "p99_us": 1},
                              "queue_wait": {"count": 4, "mean_us": 1.1, "p99_us": 2},
                              "batch_wait": {"count": 4, "mean_us": 0.5, "p99_us": 1},
                              "engine_propagation": {"count": 4, "mean_us": 2.0, "p99_us": 3},
                              "engine_nap": {"count": 4, "mean_us": 0.8, "p99_us": 1},
                              "engine_classify": {"count": 4, "mean_us": 1.0, "p99_us": 2},
                              "serialize": {"count": 4, "mean_us": 0.8, "p99_us": 1}},
                          "batch": {"closed_on_max_batch": 1, "closed_on_deadline": 0,
                                    "closed_on_idle": 1, "closed_on_shutdown": 0,
                                    "mean_size": 2.0},
                          "shed_ops": 0, "degraded_batches": 0,
                          "cache_hits": 0, "cache_misses": 0, "mean_depth": 1.5,
                          "depth_histogram": [0, 2, 2],
                          "macs": {"propagation": 1, "nap": 1, "classification": 1,
                                   "replication": 0, "total": 3}},
                "offline": {"predictions": 4, "wall_ms": 1.0, "throughput_rps": 200.0,
                            "mean_depth": 1.5, "depth_histogram": [0, 2, 2],
                            "macs": {"propagation": 1, "nap": 1, "classification": 1,
                                     "replication": 0, "total": 3}},
                "transport": {"pipeline_depth": 32,
                              "pipelined": {"ok": 4, "overloaded": 0, "errors": 0,
                                            "wall_ms": 2.0, "throughput_rps": 80.0},
                              "per_request": {"ok": 4, "overloaded": 0, "errors": 0,
                                              "wall_ms": 4.0, "throughput_rps": 40.0}}
            }]
        }"#;
        Json::parse(raw).unwrap()
    }

    #[test]
    fn validator_accepts_a_complete_report() {
        validate_report(&tiny_report(), &["t".into()], &["w".into()]).unwrap();
    }

    #[test]
    fn validator_rejects_missing_cells_and_schema_drift() {
        let report = tiny_report();
        // A cell the matrix expects but the report lacks.
        let err = validate_report(&report, &["t".into(), "t2".into()], &["w".into()]);
        assert!(err.unwrap_err().contains("missing cell (t2 × w)"));
        // Version drift.
        let mut bumped = report.clone();
        if let Json::Obj(fields) = &mut bumped {
            for (k, v) in fields.iter_mut() {
                if k == "schema_version" {
                    *v = Json::uint(99);
                }
            }
        }
        assert!(validate_report(&bumped, &["t".into()], &["w".into()]).is_err());
        // Field drift: drop a promised per-cell field.
        let mut dropped = report.clone();
        if let Json::Obj(fields) = &mut dropped {
            for (k, v) in fields.iter_mut() {
                if k != "cells" {
                    continue;
                }
                let Json::Arr(cells) = v else { unreachable!() };
                let Json::Obj(cell) = &mut cells[0] else {
                    unreachable!()
                };
                for (ck, cv) in cell.iter_mut() {
                    if ck != "serve" {
                        continue;
                    }
                    let Json::Obj(serve) = cv else { unreachable!() };
                    serve.retain(|(sk, _)| sk != "shed_ops");
                }
            }
        }
        let err = validate_report(&dropped, &["t".into()], &["w".into()]).unwrap_err();
        assert!(err.contains("shed_ops"), "{err}");
    }
}
