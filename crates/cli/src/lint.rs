//! `nai lint` — run the workspace's token-aware static analysis pass.

use crate::args::ParsedArgs;
use crate::commands::{CliError, CliResult};
use nai_lint::{find_workspace_root, lint_paths, lint_workspace, LintReport};
use std::path::PathBuf;
use std::time::Instant;

/// Runs `nai lint [--workspace] [PATHS]`.
///
/// `--workspace` lints every member crate of the enclosing workspace
/// (found by walking up from the current directory); bare `PATHS` lint
/// specific files, directories, or crate roots. Paths must precede
/// flags. Exits nonzero when any finding survives suppression.
pub fn lint(args: &ParsedArgs) -> CliResult {
    args.finish_with_positional(&["workspace"])?;
    let t0 = Instant::now();
    let report = run(args)?;
    for d in &report.diags {
        println!("{d}");
    }
    let secs = t0.elapsed().as_secs_f64();
    if report.diags.is_empty() {
        println!("nai lint: clean ({} files, {:.2}s)", report.files, secs);
        Ok(())
    } else {
        println!(
            "nai lint: {} finding(s) in {} files ({:.2}s)",
            report.diags.len(),
            report.files,
            secs
        );
        Err(CliError::Other(format!(
            "{} lint finding(s)",
            report.diags.len()
        )))
    }
}

fn run(args: &ParsedArgs) -> Result<LintReport, CliError> {
    if args.get_bool("workspace") {
        let cwd = std::env::current_dir()
            .map_err(|e| CliError::Other(format!("cannot read current directory: {e}")))?;
        let root = find_workspace_root(&cwd).ok_or_else(|| {
            CliError::Other(
                "no enclosing Cargo workspace found (run from inside the repo or pass PATHS)"
                    .to_string(),
            )
        })?;
        return lint_workspace(&root).map_err(|e| CliError::Other(format!("lint failed: {e}")));
    }
    if args.positional.is_empty() {
        return Err(CliError::Other(
            "nothing to lint: pass --workspace or one or more PATHS (paths go before flags)"
                .to_string(),
        ));
    }
    let paths: Vec<PathBuf> = args.positional.iter().map(PathBuf::from).collect();
    lint_paths(&paths).map_err(|e| CliError::Other(format!("lint failed: {e}")))
}
