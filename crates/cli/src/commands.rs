//! Subcommand implementations.

use crate::args::{ArgError, ParsedArgs};
use nai_core::checkpoint::ModelCheckpoint;
use nai_core::config::{
    CacheConfig, DistillConfig, InferenceConfig, LoadShedPolicy, NapMode, PipelineConfig,
    ServeConfig,
};
use nai_core::eval::ConfusionMatrix;
use nai_core::inference::InferenceResult;
use nai_core::pipeline::NaiPipeline;
use nai_datasets::{load, DatasetId, Scale};
use nai_graph::io::{load_graph, load_split, save_graph, save_split};
use nai_graph::{Graph, InductiveSplit};
use nai_models::ModelKind;
use nai_serve::{NaiService, Server};
use nai_stream::{DynamicGraph, StreamingEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::Path;
use std::time::Duration;

/// CLI failures with user-readable messages.
#[derive(Debug)]
pub enum CliError {
    /// Argument problems (rendered with usage help).
    Args(ArgError),
    /// Anything else, already formatted.
    Other(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Other(msg) => write!(f, "{msg}"),
        }
    }
}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

impl From<nai_graph::GraphError> for CliError {
    fn from(e: nai_graph::GraphError) -> Self {
        CliError::Other(e.to_string())
    }
}

impl From<nai_core::checkpoint::CheckpointError> for CliError {
    fn from(e: nai_core::checkpoint::CheckpointError) -> Self {
        CliError::Other(e.to_string())
    }
}

/// Result alias for subcommands.
pub type CliResult = Result<(), CliError>;

/// Parses `--dataset` / `--scale` into a dataset id and scale.
pub fn dataset_of(args: &ParsedArgs) -> Result<(DatasetId, Scale), CliError> {
    let id = match args.get_or("dataset", "arxiv") {
        "flickr" => DatasetId::FlickrProxy,
        "arxiv" => DatasetId::ArxivProxy,
        "products" => DatasetId::ProductsProxy,
        other => {
            return Err(ArgError::BadValue {
                flag: "dataset".into(),
                value: other.into(),
                expected: "flickr | arxiv | products",
            }
            .into())
        }
    };
    let scale = match args.get_or("scale", "test") {
        "test" => Scale::Test,
        "bench" => Scale::Bench,
        other => {
            return Err(ArgError::BadValue {
                flag: "scale".into(),
                value: other.into(),
                expected: "test | bench",
            }
            .into())
        }
    };
    Ok((id, scale))
}

/// Parses `--model-kind`.
pub fn model_kind_of(args: &ParsedArgs) -> Result<ModelKind, CliError> {
    match args.get_or("model-kind", "sgc") {
        "sgc" => Ok(ModelKind::Sgc),
        "sign" => Ok(ModelKind::Sign),
        "s2gc" => Ok(ModelKind::S2gc),
        "gamlp" => Ok(ModelKind::Gamlp),
        other => Err(ArgError::BadValue {
            flag: "model-kind".into(),
            value: other.into(),
            expected: "sgc | sign | s2gc | gamlp",
        }
        .into()),
    }
}

/// Parses `--nap`/`--ts`/`--tmin`/`--tmax`/`--batch`/`--parallel-spmm`
/// into an [`InferenceConfig`].
pub fn inference_config_of(args: &ParsedArgs, k: usize) -> Result<InferenceConfig, CliError> {
    let t_min = args.get_parse_or("tmin", 1usize)?;
    let t_max = args.get_parse_or("tmax", k)?;
    let ts = args.get_parse_or("ts", 0.5f32)?;
    let batch_size = args.get_parse_or("batch", 500usize)?;
    let parallel_spmm = args.get_bool("parallel-spmm");
    let nap = match args.get_or("nap", "distance") {
        "fixed" => NapMode::Fixed,
        "distance" => NapMode::Distance { ts },
        "gate" => NapMode::Gate,
        "upper" => NapMode::UpperBound { ts },
        other => {
            return Err(ArgError::BadValue {
                flag: "nap".into(),
                value: other.into(),
                expected: "fixed | distance | gate | upper",
            }
            .into())
        }
    };
    let cfg = InferenceConfig {
        t_min: if matches!(nap, NapMode::Fixed) {
            t_max
        } else {
            t_min
        },
        t_max,
        nap,
        batch_size,
        parallel_spmm,
    };
    cfg.validate(k).map_err(CliError::Other)?;
    Ok(cfg)
}

/// Loads either a named proxy dataset or an on-disk graph+split pair.
pub fn load_data(args: &ParsedArgs) -> Result<(Graph, InductiveSplit, String), CliError> {
    if let (Ok(gpath), Ok(spath)) = (args.require("graph"), args.require("split")) {
        let graph = load_graph(Path::new(gpath))?;
        let split = load_split(Path::new(spath))?;
        split
            .validate(graph.num_nodes())
            .map_err(|e| CliError::Other(e.to_string()))?;
        return Ok((graph, split, format!("{gpath} + {spath}")));
    }
    let (id, scale) = dataset_of(args)?;
    let ds = load(id, scale);
    Ok((ds.graph, ds.split, ds.id.name().to_string()))
}

/// `nai generate`: materializes a dataset proxy to disk.
pub fn generate(args: &ParsedArgs) -> CliResult {
    args.finish(&["dataset", "scale", "out"])?;
    let (id, scale) = dataset_of(args)?;
    let out = args.require("out")?;
    let ds = load(id, scale);
    let gpath = format!("{out}.graph");
    let spath = format!("{out}.split");
    save_graph(&ds.graph, Path::new(&gpath))?;
    save_split(&ds.split, Path::new(&spath))?;
    println!(
        "wrote {} ({} nodes, {} edges, f={}, c={}) to {gpath} / {spath}",
        ds.id.name(),
        ds.graph.num_nodes(),
        ds.graph.num_edges(),
        ds.graph.feature_dim(),
        ds.graph.num_classes,
    );
    Ok(())
}

/// `nai train`: trains the NAI pipeline and saves a checkpoint.
pub fn train(args: &ParsedArgs) -> CliResult {
    args.finish(&[
        "dataset",
        "scale",
        "graph",
        "split",
        "model-kind",
        "k",
        "epochs",
        "hidden",
        "lr",
        "gates",
        "no-distill",
        "seed",
        "out",
    ])?;
    let (graph, split, name) = load_data(args)?;
    let kind = model_kind_of(args)?;
    let k = args.get_parse_or("k", 3usize)?;
    let epochs = args.get_parse_or("epochs", 50usize)?;
    let hidden = args.get_parse_or("hidden", 32usize)?;
    let lr = args.get_parse_or("lr", 0.01f32)?;
    let seed = args.get_parse_or("seed", 42u64)?;
    let distill = !args.get_bool("no-distill");
    let train_gates = args.get_bool("gates");
    let out = args.require("out")?;

    let cfg = PipelineConfig {
        k,
        hidden: vec![hidden],
        epochs,
        lr,
        seed,
        use_single_scale: distill,
        use_multi_scale: distill,
        distill: DistillConfig {
            epochs: epochs / 3 + 1,
            ensemble_r: DistillConfig::default().ensemble_r.min(k),
            ..DistillConfig::default()
        },
        ..PipelineConfig::default()
    };
    println!(
        "training {} (k={k}, hidden={hidden}, epochs={epochs}, gates={train_gates}) on {name} ...",
        kind.name()
    );
    let trained = NaiPipeline::new(kind, cfg).train(&graph, &split, train_gates);
    println!(
        "base f^({k}) best val acc {:.4}",
        trained.reports.base.best_val_acc
    );
    let ckpt = ModelCheckpoint::from_engine(&trained.engine, 0.5);
    ckpt.save(Path::new(out))?;
    println!("checkpoint saved to {out}");
    Ok(())
}

fn print_report(label: &str, res: &InferenceResult, graph: &Graph, test: &[u32]) {
    let r = &res.report;
    let labels_view: Vec<u32> = test.iter().map(|&v| graph.labels[v as usize]).collect();
    let cm = ConfusionMatrix::from_predictions(&res.predictions, &labels_view, graph.num_classes);
    println!(
        "{label:>10} | acc {:.4} | macro-F1 {:.4} | mMACs/node {:.3} (fp {:.3}) | \
         ms/node {:.4} (fp {:.4}) | mean depth {:.2} | exits {:?}",
        r.accuracy,
        cm.macro_f1(),
        r.mmacs_per_node(),
        r.fp_mmacs_per_node(),
        r.time_ms_per_node(),
        r.fp_time_ms_per_node(),
        r.mean_depth(),
        r.depth_histogram,
    );
}

/// `nai infer`: deploys a checkpoint and runs one inference pass.
pub fn infer(args: &ParsedArgs) -> CliResult {
    args.finish(&[
        "dataset",
        "scale",
        "graph",
        "split",
        "model",
        "nap",
        "ts",
        "tmin",
        "tmax",
        "batch",
        "parallel-spmm",
    ])?;
    let (graph, split, name) = load_data(args)?;
    let ckpt = ModelCheckpoint::load(Path::new(args.require("model")?))?;
    let engine = ckpt.deploy(&graph);
    let cfg = inference_config_of(args, ckpt.k)?;
    println!(
        "{} (k={}) on {name}: {} test nodes, nap {:?}",
        ckpt.kind.name(),
        ckpt.k,
        split.test.len(),
        cfg.nap
    );
    let res = engine.infer(&split.test, &graph.labels, &cfg);
    print_report("result", &res, &graph, &split.test);
    Ok(())
}

/// `nai eval`: compares every NAP policy on one deployment.
pub fn eval(args: &ParsedArgs) -> CliResult {
    args.finish(&[
        "dataset", "scale", "graph", "split", "model", "ts", "tmin", "batch",
    ])?;
    let (graph, split, name) = load_data(args)?;
    let ckpt = ModelCheckpoint::load(Path::new(args.require("model")?))?;
    let engine = ckpt.deploy(&graph);
    let k = ckpt.k;
    let ts = args.get_parse_or("ts", 0.5f32)?;
    let t_min = args.get_parse_or("tmin", 1usize)?;
    let batch = args.get_parse_or("batch", 500usize)?;
    println!(
        "{} (k={k}) on {name}: {} test nodes, T_s={ts}",
        ckpt.kind.name(),
        split.test.len()
    );
    let mut configs = vec![
        ("fixed", InferenceConfig::fixed(k)),
        ("distance", InferenceConfig::distance(ts, t_min, k)),
        ("upper", InferenceConfig::upper_bound(ts, t_min, k)),
    ];
    if ckpt.has_gates() {
        configs.push(("gate", InferenceConfig::gate(t_min, k)));
    }
    for (label, mut cfg) in configs {
        cfg.batch_size = batch;
        let res = engine.infer(&split.test, &graph.labels, &cfg);
        print_report(label, &res, &graph, &split.test);
    }
    Ok(())
}

/// `nai stream`: streaming-arrival demo with latency percentiles.
pub fn stream(args: &ParsedArgs) -> CliResult {
    args.finish(&[
        "dataset",
        "scale",
        "graph",
        "split",
        "model",
        "nap",
        "ts",
        "tmin",
        "tmax",
        "arrivals",
        "batch",
        "degree",
        "seed",
        "parallel-spmm",
    ])?;
    let (graph, _, name) = load_data(args)?;
    let ckpt = ModelCheckpoint::load(Path::new(args.require("model")?))?;
    let cfg = inference_config_of(args, ckpt.k)?;
    let arrivals = args.get_parse_or("arrivals", 200usize)?;
    let degree = args.get_parse_or("degree", 3usize)?;
    let seed = args.get_parse_or("seed", 7u64)?;
    let mut engine = StreamingEngine::from_checkpoint(&ckpt, DynamicGraph::from_graph(&graph));
    let mut rng = StdRng::seed_from_u64(seed);
    let f = graph.feature_dim();
    println!(
        "streaming {arrivals} arrivals (≈{degree} edges each) into {name}, \
         micro-batch {} ...",
        cfg.batch_size
    );
    let mut served = 0usize;
    for _ in 0..arrivals {
        let feats: Vec<f32> = (0..f).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let n = engine.graph().num_nodes();
        let nbrs: Vec<u32> = (0..degree).map(|_| rng.gen_range(0..n) as u32).collect();
        engine.ingest(&feats, &nbrs);
        if engine.pending().len() >= cfg.batch_size {
            served += engine.flush(&cfg).len();
        }
    }
    served += engine.flush(&cfg).len();
    let s = engine.stats();
    println!(
        "served {served} | p50 {:?} | p95 {:?} | p99 {:?} | max {:?} | \
         mean depth {:.2} | throughput {:.0}/s | total MACs {:.1}M",
        s.p50(),
        s.p95(),
        s.p99(),
        s.max(),
        s.mean_depth(),
        s.throughput(),
        engine.macs_total() as f64 / 1e6,
    );
    Ok(())
}

/// `nai serve`: boots the online inference service over a checkpoint.
///
/// Prints `nai-serve listening on HOST:PORT` once ready, then blocks
/// until a `POST /shutdown` arrives (scripts grep the line for the
/// ephemeral port when `--port 0`).
pub fn serve(args: &ParsedArgs) -> CliResult {
    args.finish(&[
        "dataset",
        "scale",
        "graph",
        "split",
        "model",
        "nap",
        "ts",
        "tmin",
        "tmax",
        "batch",
        "parallel-spmm",
        "port",
        "workers",
        "max-batch",
        "max-wait-ms",
        "queue-cap",
        "shed-at",
        "shed-tmax",
        "cache",
        "cache-cap",
        "read-timeout-ms",
    ])?;
    let (graph, _, name) = load_data(args)?;
    let ckpt = ModelCheckpoint::load(Path::new(args.require("model")?))?;
    let infer_cfg = inference_config_of(args, ckpt.k)?;
    let port = args.get_parse_or("port", 8080u16)?;
    let max_wait_ms = args.get_parse_or("max-wait-ms", 2.0f64)?;
    if !max_wait_ms.is_finite() || !(0.0..=60_000.0).contains(&max_wait_ms) {
        return Err(CliError::Other(format!(
            "--max-wait-ms must be a finite value in [0, 60000], got {max_wait_ms}"
        )));
    }
    let serve_cfg = ServeConfig {
        workers: args.get_parse_or("workers", 2usize)?,
        max_batch: args.get_parse_or("max-batch", 64usize)?,
        max_wait: Duration::from_secs_f64(max_wait_ms / 1000.0),
        queue_cap: args.get_parse_or("queue-cap", 1024usize)?,
        shed: LoadShedPolicy {
            trigger_fraction: args.get_parse_or("shed-at", 0.75f64)?,
            t_max_cap: args.get_parse_or("shed-tmax", 1usize)?,
        },
        cache: if args.get_bool("cache") {
            CacheConfig::on(args.get_parse_or("cache-cap", 4096usize)?)
        } else {
            CacheConfig::off()
        },
    };
    let read_timeout_ms = args.get_parse_or("read-timeout-ms", 30_000.0f64)?;
    if !read_timeout_ms.is_finite() || !(1.0..=600_000.0).contains(&read_timeout_ms) {
        return Err(CliError::Other(format!(
            "--read-timeout-ms must be a finite value in [1, 600000], got {read_timeout_ms}"
        )));
    }
    let transport_cfg = nai_serve::TransportConfig {
        read_timeout: Duration::from_secs_f64(read_timeout_ms / 1000.0),
        ..nai_serve::TransportConfig::default()
    };
    let service = NaiService::from_checkpoint(
        &ckpt,
        &DynamicGraph::from_graph(&graph),
        infer_cfg,
        serve_cfg,
    )
    .map_err(CliError::Other)?;
    let server = Server::start_with(
        std::sync::Arc::new(service),
        ("127.0.0.1", port),
        transport_cfg,
    )
    .map_err(|e| CliError::Other(format!("bind failed: {e}")))?;
    let cache_desc = if serve_cfg.cache.enabled {
        format!("cap {}", serve_cfg.cache.cap)
    } else {
        "off".to_string()
    };
    println!(
        "nai-serve listening on {} ({} k={} on {name}; shards {}, max_batch {}, \
         max_wait {max_wait_ms}ms, queue_cap {}, shed at {:.0}% → t_max {}, cache {cache_desc})",
        server.local_addr(),
        ckpt.kind.name(),
        ckpt.k,
        serve_cfg.workers,
        serve_cfg.max_batch,
        serve_cfg.queue_cap,
        serve_cfg.shed.trigger_fraction * 100.0,
        serve_cfg.shed.t_max_cap,
    );
    server.join();
    println!("nai-serve stopped cleanly");
    Ok(())
}

/// Builds the [`nai_serve::WorkloadSpec`] a loadgen invocation drives:
/// `--mode` picks the read/mutation mix, `--sampling`/`--zipf-s` the
/// node-id distribution — one shared code path with `nai bench` (no
/// loadgen-local RNG plumbing).
pub fn loadgen_workload(args: &ParsedArgs) -> Result<nai_serve::WorkloadSpec, CliError> {
    let mode = args.get_or("mode", "infer");
    let read_fraction = match mode {
        "infer" => 1.0,
        "ingest" => 0.0,
        "mixed" => 2.0 / 3.0,
        other => {
            return Err(ArgError::BadValue {
                flag: "mode".into(),
                value: other.into(),
                expected: "infer | ingest | mixed",
            }
            .into())
        }
    };
    let sampling = match args.get_or("sampling", "uniform") {
        "uniform" => nai_serve::Sampling::Uniform,
        "zipf" => nai_serve::Sampling::Zipf {
            exponent: args.get_parse_or("zipf-s", 1.1f64)?,
        },
        other => {
            return Err(ArgError::BadValue {
                flag: "sampling".into(),
                value: other.into(),
                expected: "uniform | zipf",
            }
            .into())
        }
    };
    let spec = nai_serve::WorkloadSpec {
        name: mode.to_string(),
        read_fraction,
        edge_fraction: 0.0,
        sampling,
        nodes_per_read: args.get_parse_or("nodes-per-request", 1usize)?.max(1),
        ingest_degree: 3,
        arrivals: nai_serve::Arrivals::Closed,
    };
    spec.validate().map_err(CliError::Other)?;
    Ok(spec)
}

/// `nai loadgen`: closed-loop load driver against a running server.
///
/// Requests carry no `shard` routing — mutations are sequenced and
/// replicated server-side, so each client simply reads back any node
/// id it has learned about, including the ids of its own ingests
/// (read-your-writes with no client routing contract).
pub fn loadgen(args: &ParsedArgs) -> CliResult {
    args.finish(&[
        "addr",
        "requests",
        "clients",
        "mode",
        "sampling",
        "zipf-s",
        "nodes-per-request",
        "seed",
        "cache",
        "shutdown",
        "pipeline",
        "per-request",
    ])?;
    let addr = args.require("addr")?.to_string();
    let total: usize = args.get_parse_or("requests", 200usize)?;
    let clients: usize = args.get_parse_or("clients", 4usize)?.max(1);
    let seed = args.get_parse_or("seed", 7u64)?;
    let pipeline: usize = args.get_parse_or("pipeline", 1usize)?.max(1);
    let per_request = args.get_bool("per-request");
    if per_request && pipeline > 1 {
        return Err(CliError::Other(
            "--per-request opens one connection per request; it cannot pipeline \
             (drop --pipeline or --per-request)"
                .into(),
        ));
    }
    let workload = loadgen_workload(args)?;

    // Discover deployment facts from the server itself.
    let (status, body) = nai_serve::http_call(addr.as_str(), "GET", "/healthz", None)
        .map_err(|e| CliError::Other(format!("healthz failed: {e}")))?;
    if status != 200 {
        return Err(CliError::Other(format!("healthz returned {status}")));
    }
    let health = nai_serve::Json::parse(body.trim())
        .map_err(|e| CliError::Other(format!("healthz parse: {e}")))?;
    let want = |field: &str| -> Result<u64, CliError> {
        health
            .get(field)
            .and_then(nai_serve::Json::as_u64)
            .ok_or_else(|| CliError::Other(format!("healthz missing `{field}`")))
    };
    let seed_nodes = want("seed_nodes")? as u32;
    let feature_dim = want("feature_dim")? as usize;
    if seed_nodes == 0 {
        return Err(CliError::Other("server has an empty seed graph".into()));
    }
    let transport = if per_request {
        "per-request connections".to_string()
    } else if pipeline > 1 {
        format!("keep-alive, pipeline depth {pipeline}")
    } else {
        "keep-alive".to_string()
    };
    println!(
        "loadgen: {total} {} requests ({clients} clients, {:?} sampling, {transport}) \
         against {addr} (seed_nodes {seed_nodes}, f {feature_dim})",
        workload.name, workload.sampling,
    );

    let counters = std::sync::Mutex::new((nai_stream::LatencyStats::new(), 0u64, 0u64, 0u64));
    std::thread::scope(|scope| {
        for c in 0..clients {
            let share = total / clients + usize::from(c < total % clients);
            let (addr, workload, counters) = (&addr, &workload, &counters);
            scope.spawn(move || {
                let mut sampler = nai_serve::WorkloadSampler::new(
                    workload.clone(),
                    seed ^ (c as u64).wrapping_mul(0x9E37),
                );
                let mut local = nai_stream::LatencyStats::new();
                let (mut ok, mut overloaded, mut failed) = (0u64, 0u64, 0u64);
                let mut client = match nai_serve::HttpClient::connect(addr.as_str()) {
                    Ok(cl) => cl,
                    Err(_) => {
                        counters.lock().unwrap().3 += share as u64;
                        return;
                    }
                };
                // Exclusive bound of the node ids this client knows to
                // exist: the seed graph plus every ingest it has had
                // acknowledged — any replica must serve all of them.
                let mut known_nodes = seed_nodes;
                let mut sent = 0usize;
                while sent < share {
                    // Burst size: 1 closed-loop, `pipeline` when
                    // pipelining. Ops are sampled up front against the
                    // ids known *now*; acks inside the burst extend
                    // `known_nodes` for the next burst.
                    let window = if per_request {
                        1
                    } else {
                        pipeline.min(share - sent)
                    };
                    let bodies: Vec<String> = (0..window)
                        .map(|_| {
                            let op = sampler.next_op(known_nodes, feature_dim);
                            let line = nai_serve::proto::render_request(&nai_serve::Request {
                                op,
                                shard: None,
                            });
                            format!("{line}\n")
                        })
                        .collect();
                    let start = std::time::Instant::now();
                    let outcome: std::io::Result<Vec<(u16, String)>> = if per_request {
                        nai_serve::HttpClient::connect(addr.as_str())
                            .and_then(|mut c| c.request_closing("POST", "/v1", Some(&bodies[0])))
                            .map(|r| vec![r])
                    } else if window == 1 {
                        client
                            .request("POST", "/v1", Some(&bodies[0]))
                            .map(|r| vec![r])
                    } else {
                        let refs: Vec<&str> = bodies.iter().map(String::as_str).collect();
                        client.pipeline("POST", "/v1", &refs)
                    };
                    sent += window;
                    match outcome {
                        Ok(responses) => {
                            for (_, body) in responses {
                                // Pipelined latency is burst-relative:
                                // time from the burst's single write to
                                // this response's arrival.
                                let elapsed = start.elapsed();
                                match nai_serve::Json::parse(body.trim()) {
                                    Ok(v)
                                        if v.get("ok").and_then(nai_serve::Json::as_bool)
                                            == Some(true) =>
                                    {
                                        if let Some(node) =
                                            v.get("node").and_then(nai_serve::Json::as_u64)
                                        {
                                            // Ingest ack: the id is valid
                                            // service-wide from now on.
                                            known_nodes =
                                                known_nodes.max((node as u32).saturating_add(1));
                                        }
                                        let depth = v
                                            .get("depth")
                                            .or_else(|| {
                                                v.get("results")
                                                    .and_then(nai_serve::Json::as_arr)
                                                    .and_then(|r| r.first())
                                                    .and_then(|r| r.get("depth"))
                                            })
                                            .and_then(nai_serve::Json::as_u64)
                                            .unwrap_or(0);
                                        local.record(elapsed, depth as usize);
                                        ok += 1;
                                    }
                                    Ok(v)
                                        if v.get("error").and_then(nai_serve::Json::as_str)
                                            == Some("overloaded") =>
                                    {
                                        overloaded += 1;
                                    }
                                    _ => failed += 1,
                                }
                            }
                        }
                        Err(_) => {
                            failed += window as u64;
                            if !per_request {
                                // The connection is poisoned; reconnect.
                                match nai_serve::HttpClient::connect(addr.as_str()) {
                                    Ok(cl) => client = cl,
                                    Err(_) => {
                                        counters.lock().unwrap().3 += (share - sent) as u64;
                                        break;
                                    }
                                }
                            }
                        }
                    }
                }
                let mut agg = counters.lock().unwrap();
                agg.0.merge(&local);
                agg.1 += ok;
                agg.2 += overloaded;
                agg.3 += failed;
            });
        }
    });
    let (stats, ok, overloaded, failed) = counters.into_inner().unwrap();
    println!(
        "ok {ok} | overloaded {overloaded} | failed {failed} | p50 {:?} | p95 {:?} | \
         p99 {:?} | max {:?} | mean depth {:.2} | throughput {:.0}/s",
        stats.p50(),
        stats.p95(),
        stats.p99(),
        stats.max(),
        stats.mean_depth(),
        stats.throughput(),
    );
    // Server-side batch anatomy and stage spans for this deployment
    // (cumulative since boot, not per-run deltas). Best-effort: a
    // scrape failure doesn't fail the run the clients just finished.
    if let Ok((200, body)) = nai_serve::http_call(addr.as_str(), "GET", "/metrics", None) {
        if let Ok(metrics) = nai_serve::Json::parse(body.trim()) {
            let batch = |field: &str| {
                metrics
                    .get("batch")
                    .and_then(|b| b.get(field))
                    .and_then(nai_serve::Json::as_u64)
                    .unwrap_or(0)
            };
            println!(
                "batches: closed_on_max_batch {} | closed_on_deadline {} | closed_on_idle {} \
                 | closed_on_shutdown {} | mean size {:.2}",
                batch("closed_on_max_batch"),
                batch("closed_on_deadline"),
                batch("closed_on_idle"),
                batch("closed_on_shutdown"),
                metrics
                    .get("batch")
                    .and_then(|b| b.get("mean_size"))
                    .and_then(nai_serve::Json::as_f64)
                    .unwrap_or(0.0),
            );
            if let Some(stages) = metrics.get("stages") {
                let mean = |stage: &str| {
                    stages
                        .get(stage)
                        .and_then(|s| s.get("mean_us"))
                        .and_then(nai_serve::Json::as_f64)
                        .unwrap_or(0.0)
                };
                println!(
                    "stages (mean us): parse {:.1} | queue_wait {:.1} | batch_wait {:.1} \
                     | propagation {:.1} | nap {:.1} | classify {:.1} | serialize {:.1}",
                    mean("parse"),
                    mean("queue_wait"),
                    mean("batch_wait"),
                    mean("engine_propagation"),
                    mean("engine_nap"),
                    mean("engine_classify"),
                    mean("serialize"),
                );
            }
        }
    }
    if args.get_bool("cache") {
        // Report the server-side prediction-cache counters for this
        // deployment (cumulative since boot, not per-run deltas).
        let (status, body) = nai_serve::http_call(addr.as_str(), "GET", "/metrics", None)
            .map_err(|e| CliError::Other(format!("metrics failed: {e}")))?;
        if status != 200 {
            return Err(CliError::Other(format!("metrics returned {status}")));
        }
        let metrics = nai_serve::Json::parse(body.trim())
            .map_err(|e| CliError::Other(format!("metrics parse: {e}")))?;
        let counter = |field: &str| {
            metrics
                .get(field)
                .and_then(nai_serve::Json::as_u64)
                .unwrap_or(0)
        };
        println!(
            "cache: hits {} | misses {} | evicted {} | invalidated {}",
            counter("cache_hits"),
            counter("cache_misses"),
            counter("cache_evicted"),
            counter("cache_invalidated"),
        );
    }
    if args.get_bool("shutdown") {
        let (status, _) = nai_serve::http_call(addr.as_str(), "POST", "/shutdown", None)
            .map_err(|e| CliError::Other(format!("shutdown failed: {e}")))?;
        println!("shutdown requested (status {status})");
    }
    if ok == 0 {
        return Err(CliError::Other(
            "no request succeeded — is the server reachable?".into(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(s: &[&str]) -> ParsedArgs {
        let v: Vec<String> = s.iter().map(|x| x.to_string()).collect();
        ParsedArgs::parse(&v).unwrap()
    }

    #[test]
    fn dataset_parsing() {
        let p = parsed(&["x", "--dataset", "flickr", "--scale", "bench"]);
        let (id, scale) = dataset_of(&p).unwrap();
        assert_eq!(id, DatasetId::FlickrProxy);
        assert_eq!(scale, Scale::Bench);
        let bad = parsed(&["x", "--dataset", "reddit"]);
        assert!(dataset_of(&bad).is_err());
    }

    #[test]
    fn model_kind_parsing() {
        assert_eq!(
            model_kind_of(&parsed(&["x", "--model-kind", "gamlp"])).unwrap(),
            ModelKind::Gamlp
        );
        assert!(model_kind_of(&parsed(&["x", "--model-kind", "gcn"])).is_err());
    }

    #[test]
    fn inference_config_parsing() {
        let p = parsed(&["x", "--nap", "upper", "--ts", "0.3", "--tmax", "2"]);
        let cfg = inference_config_of(&p, 3).unwrap();
        assert_eq!(cfg.t_max, 2);
        assert!(matches!(cfg.nap, NapMode::UpperBound { ts } if (ts - 0.3).abs() < 1e-6));
        // The PR 2 knob is reachable from the binary.
        assert!(!cfg.parallel_spmm, "off by default");
        let par = parsed(&["x", "--parallel-spmm"]);
        assert!(inference_config_of(&par, 3).unwrap().parallel_spmm);
        let off = parsed(&["x", "--parallel-spmm", "false"]);
        assert!(!inference_config_of(&off, 3).unwrap().parallel_spmm);
        // fixed pins t_min to t_max.
        let f = inference_config_of(&parsed(&["x", "--nap", "fixed", "--tmax", "2"]), 3).unwrap();
        assert_eq!(f.t_min, 2);
        // t_max beyond k is rejected.
        assert!(inference_config_of(&parsed(&["x", "--tmax", "9"]), 3).is_err());
    }

    #[test]
    fn generate_train_infer_roundtrip_via_tempdir() {
        let dir = std::env::temp_dir().join("nai_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("ds");
        let base_s = base.to_str().unwrap();

        generate(&parsed(&[
            "generate",
            "--dataset",
            "arxiv",
            "--scale",
            "test",
            "--out",
            base_s,
        ]))
        .unwrap();
        assert!(dir.join("ds.graph").exists());
        assert!(dir.join("ds.split").exists());

        let model = dir.join("m.naic");
        let model_s = model.to_str().unwrap();
        let gpath = format!("{base_s}.graph");
        let spath = format!("{base_s}.split");
        train(&parsed(&[
            "train", "--graph", &gpath, "--split", &spath, "--k", "2", "--epochs", "10",
            "--hidden", "8", "--out", model_s,
        ]))
        .unwrap();
        assert!(model.exists());

        infer(&parsed(&[
            "infer", "--graph", &gpath, "--split", &spath, "--model", model_s, "--nap", "distance",
            "--ts", "0.5",
        ]))
        .unwrap();

        eval(&parsed(&[
            "eval", "--graph", &gpath, "--split", &spath, "--model", model_s,
        ]))
        .unwrap();

        stream(&parsed(&[
            "stream",
            "--graph",
            &gpath,
            "--split",
            &spath,
            "--model",
            model_s,
            "--arrivals",
            "20",
            "--batch",
            "5",
        ]))
        .unwrap();

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loadgen_workload_maps_modes_and_sampling_onto_one_spec() {
        let spec = loadgen_workload(&parsed(&["loadgen"])).unwrap();
        assert_eq!(spec.read_fraction, 1.0, "default mode is read-only");
        assert_eq!(spec.sampling, nai_serve::Sampling::Uniform);
        assert_eq!(spec.edge_fraction, 0.0);

        let spec = loadgen_workload(&parsed(&[
            "loadgen",
            "--mode",
            "mixed",
            "--sampling",
            "zipf",
            "--zipf-s",
            "1.4",
            "--nodes-per-request",
            "3",
        ]))
        .unwrap();
        assert!((spec.read_fraction - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(spec.nodes_per_read, 3);
        assert!(
            matches!(spec.sampling, nai_serve::Sampling::Zipf { exponent } if (exponent - 1.4).abs() < 1e-9)
        );
        assert_eq!(
            loadgen_workload(&parsed(&["loadgen", "--mode", "ingest"]))
                .unwrap()
                .read_fraction,
            0.0
        );
        assert!(loadgen_workload(&parsed(&["loadgen", "--mode", "chaos"])).is_err());
        assert!(loadgen_workload(&parsed(&["loadgen", "--sampling", "pareto"])).is_err());
        assert!(
            loadgen_workload(&parsed(&[
                "loadgen",
                "--sampling",
                "zipf",
                "--zipf-s",
                "-2"
            ]))
            .is_err(),
            "invalid exponent rejected by WorkloadSpec::validate"
        );
    }

    #[test]
    fn unknown_flag_is_rejected() {
        let p = parsed(&["generate", "--dataset", "arxiv", "--frobnicate", "1"]);
        assert!(matches!(generate(&p), Err(CliError::Args(_))));
    }
}
