//! Symmetric INT8 post-training quantization — the "Quantization" baseline.
//!
//! The paper quantizes classifier parameters from FP32 to INT8 and observes
//! that only classification MACs shrink; feature propagation (the dominant
//! cost) is untouched, which is why the baseline's acceleration is limited.
//! We reproduce the same scheme: per-tensor symmetric weight quantization,
//! per-row dynamic input quantization, i32 accumulation, f32 bias add.

use crate::mlp::Mlp;
use nai_linalg::DenseMatrix;

/// INT8-quantized linear layer.
#[derive(Debug, Clone)]
pub struct QuantizedLinear {
    /// Quantized weights, row-major `in_dim × out_dim`.
    q_weights: Vec<i8>,
    /// Weight dequantization scale.
    w_scale: f32,
    /// Bias kept in f32 (standard for INT8 inference).
    bias: Vec<f32>,
    in_dim: usize,
    out_dim: usize,
}

impl QuantizedLinear {
    /// Quantizes an f32 weight matrix symmetrically to INT8.
    pub fn from_weights(w: &DenseMatrix, bias: &[f32]) -> Self {
        let max_abs = w.max_abs().max(f32::MIN_POSITIVE);
        let w_scale = max_abs / 127.0;
        let q_weights = w
            .as_slice()
            .iter()
            .map(|&v| (v / w_scale).round().clamp(-127.0, 127.0) as i8)
            .collect();
        Self {
            q_weights,
            w_scale,
            bias: bias.to_vec(),
            in_dim: w.rows(),
            out_dim: w.cols(),
        }
    }

    /// Quantized forward pass: dynamic per-row input quantization, i32
    /// accumulation, dequantized f32 output.
    ///
    /// # Panics
    /// Panics if `x.cols() != in_dim`.
    pub fn forward(&self, x: &DenseMatrix) -> DenseMatrix {
        assert_eq!(x.cols(), self.in_dim, "quantized linear input dim");
        let mut out = DenseMatrix::zeros(x.rows(), self.out_dim);
        let mut qx = vec![0i8; self.in_dim];
        for r in 0..x.rows() {
            let row = x.row(r);
            let max_abs = row.iter().fold(0.0f32, |m, v| m.max(v.abs()));
            let x_scale = (max_abs / 127.0).max(f32::MIN_POSITIVE);
            for (q, &v) in qx.iter_mut().zip(row.iter()) {
                *q = (v / x_scale).round().clamp(-127.0, 127.0) as i8;
            }
            let orow = out.row_mut(r);
            // i32 accumulation over the quantized operands.
            for (k, &xq) in qx.iter().enumerate() {
                if xq == 0 {
                    continue;
                }
                let wrow = &self.q_weights[k * self.out_dim..(k + 1) * self.out_dim];
                for (o, &wq) in orow.iter_mut().zip(wrow.iter()) {
                    *o += (xq as i32 * wq as i32) as f32;
                }
            }
            let dequant = x_scale * self.w_scale;
            for (o, &b) in orow.iter_mut().zip(self.bias.iter()) {
                *o = *o * dequant + b;
            }
        }
        out
    }

    /// MACs per input row (same count as f32; the baseline saves on
    /// operand width, not operation count).
    pub fn macs_per_row(&self) -> u64 {
        (self.in_dim * self.out_dim) as u64
    }
}

/// INT8-quantized MLP (ReLU between layers, like [`Mlp`]).
#[derive(Debug, Clone)]
pub struct QuantizedMlp {
    layers: Vec<QuantizedLinear>,
}

impl QuantizedMlp {
    /// Quantizes every layer of an [`Mlp`].
    pub fn from_mlp(mlp: &Mlp) -> Self {
        let layers = mlp
            .layers()
            .iter()
            .map(|l| QuantizedLinear::from_weights(&l.w, &l.b))
            .collect();
        Self { layers }
    }

    /// Quantized inference forward.
    pub fn forward(&self, x: &DenseMatrix) -> DenseMatrix {
        let n = self.layers.len();
        let mut h = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(&h);
            if i + 1 < n {
                for v in h.as_mut_slice() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
            }
        }
        h
    }

    /// Total MACs per input row.
    pub fn macs_per_row(&self) -> u64 {
        self.layers.iter().map(|l| l.macs_per_row()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::MlpConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn quantized_linear_approximates_f32() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = nai_linalg::init::glorot_uniform(16, 8, &mut rng);
        let bias = vec![0.1f32; 8];
        let q = QuantizedLinear::from_weights(&w, &bias);
        let x = nai_linalg::init::gaussian(10, 16, 1.0, &mut rng);
        let got = q.forward(&x);
        let mut want = x.matmul(&w).unwrap();
        want.add_bias_row(&bias);
        let scale = want.max_abs().max(1e-6);
        for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
            assert!(
                (a - b).abs() / scale < 0.05,
                "quantization error too large: {a} vs {b}"
            );
        }
    }

    #[test]
    fn quantized_mlp_mostly_preserves_argmax() {
        let mut rng = StdRng::seed_from_u64(8);
        let mlp = Mlp::new(&MlpConfig::one_hidden(12, 24, 5, 0.0), &mut rng);
        let q = QuantizedMlp::from_mlp(&mlp);
        let x = nai_linalg::init::gaussian(200, 12, 1.0, &mut rng);
        let f32_pred = nai_linalg::ops::argmax_rows(&mlp.forward(&x));
        let q_pred = nai_linalg::ops::argmax_rows(&q.forward(&x));
        let agree = f32_pred
            .iter()
            .zip(q_pred.iter())
            .filter(|(a, b)| a == b)
            .count();
        assert!(agree >= 190, "only {agree}/200 predictions agree");
    }

    #[test]
    fn mac_counts_match_f32_layer() {
        let mut rng = StdRng::seed_from_u64(9);
        let mlp = Mlp::new(&MlpConfig::one_hidden(10, 20, 3, 0.0), &mut rng);
        let q = QuantizedMlp::from_mlp(&mlp);
        assert_eq!(q.macs_per_row(), mlp.macs_per_row());
    }

    #[test]
    fn zero_weight_matrix_quantizes_safely() {
        let w = DenseMatrix::zeros(4, 4);
        let q = QuantizedLinear::from_weights(&w, &[0.0; 4]);
        let x = DenseMatrix::from_fn(2, 4, |_, _| 1.0);
        let y = q.forward(&x);
        assert!(y.as_slice().iter().all(|&v| v == 0.0));
    }
}
