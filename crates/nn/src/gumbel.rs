//! Gumbel-softmax sampling (Jang et al.), used by the NAP gates (Eq. 11).
//!
//! During gate training the discrete "exit vs continue" decision is relaxed
//! to a differentiable sample `GS(e)`; at inference the decision is the
//! hard argmax. The straight-through estimator keeps the forward pass
//! discrete while gradients flow through the soft sample.

use nai_linalg::ops::softmax_slice;
use rand::Rng;

/// One standard Gumbel(0, 1) sample.
pub fn sample_gumbel<R: Rng>(rng: &mut R) -> f32 {
    let mut u: f32 = rng.gen();
    while u <= f32::MIN_POSITIVE {
        u = rng.gen();
    }
    -(-u.ln()).ln()
}

/// In-place Gumbel-softmax: perturbs `logits` with Gumbel noise, applies a
/// tempered softmax and leaves the *soft* sample in the slice.
///
/// # Panics
/// Panics (debug) if `tau <= 0`.
pub fn gumbel_softmax<R: Rng>(logits: &mut [f32], tau: f32, rng: &mut R) {
    debug_assert!(tau > 0.0, "gumbel-softmax temperature must be positive");
    for v in logits.iter_mut() {
        *v = (*v + sample_gumbel(rng)) / tau;
    }
    softmax_slice(logits);
}

/// Straight-through hard sample: returns the one-hot argmax of the soft
/// sample (forward value); callers back-propagate through the soft values.
pub fn hard_one_hot(soft: &[f32]) -> Vec<f32> {
    let k = nai_linalg::ops::argmax(soft);
    let mut out = vec![0.0; soft.len()];
    out[k] = 1.0;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gumbel_mean_is_euler_mascheroni() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mean: f32 = (0..n).map(|_| sample_gumbel(&mut rng)).sum::<f32>() / n as f32;
        assert!((mean - 0.5772).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn soft_sample_is_distribution() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut logits = vec![1.0f32, 0.0, -1.0];
        gumbel_softmax(&mut logits, 0.5, &mut rng);
        let s: f32 = logits.iter().sum();
        assert!((s - 1.0).abs() < 1e-5);
        assert!(logits.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn low_temperature_approaches_one_hot() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut logits = vec![5.0f32, 0.0];
        gumbel_softmax(&mut logits, 0.05, &mut rng);
        assert!(logits.iter().any(|&v| v > 0.99));
    }

    #[test]
    fn sampling_frequencies_track_logits() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 2];
        for _ in 0..2000 {
            let mut logits = vec![1.5f32, 0.0];
            gumbel_softmax(&mut logits, 1.0, &mut rng);
            let hard = hard_one_hot(&logits);
            if hard[0] == 1.0 {
                counts[0] += 1;
            } else {
                counts[1] += 1;
            }
        }
        // P(argmax = 0) should be softmax(1.5, 0) ≈ 0.82.
        let p0 = counts[0] as f32 / 2000.0;
        assert!((p0 - 0.82).abs() < 0.05, "p0 = {p0}");
    }

    #[test]
    fn hard_one_hot_is_one_hot() {
        let h = hard_one_hot(&[0.1, 0.7, 0.2]);
        assert_eq!(h, vec![0.0, 1.0, 0.0]);
        assert_eq!(h.iter().sum::<f32>(), 1.0);
    }
}
