//! Explicit-backprop neural-network substrate.
//!
//! No autograd framework is available offline, and none is needed: every
//! trainable component in the NAI pipeline (per-depth classifiers `f^(l)`,
//! propagation gates `g^(l)`, distillation ensembles, baseline models) is a
//! shallow network whose gradients have simple closed forms. This crate
//! provides those pieces:
//!
//! * [`linear::Linear`] — dense layer with cached forward and accumulated
//!   gradients, each layer carrying its own Adam moments;
//! * [`mlp::Mlp`] — ReLU/dropout stacks used for every classifier;
//! * [`loss`] — softmax cross-entropy, soft-target cross-entropy, and the
//!   temperature-scaled distillation loss of Eq. (14)–(15);
//! * [`adam::Adam`] — the optimizer used throughout the paper;
//! * [`gumbel`] — Gumbel-softmax sampling for the NAP gates (Eq. 11);
//! * [`quant`] — symmetric INT8 post-training quantization, the
//!   "Quantization" baseline;
//! * [`attention`] — single-hop neighbor attention for the TinyGNN
//!   baseline's peer-aware module;
//! * [`trainer`] — a small supervised training loop with early stopping.

pub mod adam;
pub mod attention;
pub mod gumbel;
pub mod linear;
pub mod loss;
pub mod mlp;
pub mod quant;
pub mod trainer;

pub use adam::Adam;
pub use linear::Linear;
pub use mlp::{Mlp, MlpConfig};
