//! Single-hop neighbor attention — the peer-aware module of the TinyGNN
//! baseline.
//!
//! For each target node `i` with neighbor multiset `N(i)` (the baseline
//! includes the node itself), scaled dot-product attention aggregates
//! neighbor values:
//!
//! ```text
//! q_i = x_i W_q,   k_j = x_j W_k,   v_j = x_j W_v
//! α_ij = softmax_j (q_i · k_j / √d)
//! out_i = Σ_j α_ij v_j
//! ```
//!
//! This reproduces TinyGNN's cost signature (Table V / Fig. 5 of the
//! paper): only 1-hop propagation, but per-edge attention MACs that grow
//! with batch size and dominate on high-dimensional features.

use crate::adam::Adam;
use crate::linear::Linear;
use nai_linalg::ops::softmax_slice;
use nai_linalg::DenseMatrix;
use rand::Rng;

/// Flattened neighbor structure for one batch: node `b` owns the slice
/// `offsets[b]..offsets[b+1]` of `neighbor_rows`, which index into the
/// neighbor feature matrix passed to [`NeighborAttention::forward`].
#[derive(Debug, Clone, Default)]
pub struct NeighborBatch {
    /// Prefix offsets, length `batch + 1`.
    pub offsets: Vec<usize>,
    /// Concatenated neighbor indices (rows of the neighbor feature matrix).
    pub neighbor_rows: Vec<u32>,
}

impl NeighborBatch {
    /// Builds from per-node neighbor lists.
    pub fn from_lists(lists: &[Vec<u32>]) -> Self {
        let mut offsets = Vec::with_capacity(lists.len() + 1);
        offsets.push(0);
        let mut neighbor_rows = Vec::new();
        for l in lists {
            neighbor_rows.extend_from_slice(l);
            offsets.push(neighbor_rows.len());
        }
        Self {
            offsets,
            neighbor_rows,
        }
    }

    /// Number of target nodes.
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// True when there are no target nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total neighbor entries.
    pub fn total_neighbors(&self) -> usize {
        self.neighbor_rows.len()
    }
}

/// Cached state from the last training forward.
#[derive(Debug)]
struct AttentionCache {
    q: DenseMatrix,
    k: DenseMatrix,
    v: DenseMatrix,
    alphas: Vec<f32>,
    batch: NeighborBatch,
}

/// Scaled dot-product neighbor attention with trainable `W_q`, `W_k`,
/// `W_v` (all `f × d`).
#[derive(Debug)]
pub struct NeighborAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    dim: usize,
    cache: Option<AttentionCache>,
}

impl NeighborAttention {
    /// New attention module mapping `f`-dim features to `d`-dim outputs.
    pub fn new<R: Rng>(feature_dim: usize, attn_dim: usize, rng: &mut R) -> Self {
        Self {
            wq: Linear::new(feature_dim, attn_dim, rng),
            wk: Linear::new(feature_dim, attn_dim, rng),
            wv: Linear::new(feature_dim, attn_dim, rng),
            dim: attn_dim,
            cache: None,
        }
    }

    /// Output dimensionality `d`.
    pub fn out_dim(&self) -> usize {
        self.dim
    }

    /// Forward pass.
    ///
    /// * `x_self` — features of the target nodes (`batch × f`);
    /// * `x_neighbors` — features of all referenced neighbors (`rows ≥ max
    ///   index in the batch`);
    /// * `batch` — flattened neighbor structure.
    ///
    /// Nodes with zero neighbors produce a zero row.
    pub fn forward(
        &mut self,
        x_self: &DenseMatrix,
        x_neighbors: &DenseMatrix,
        batch: &NeighborBatch,
        train: bool,
    ) -> DenseMatrix {
        assert_eq!(x_self.rows(), batch.len(), "batch size mismatch");
        let q = self.wq.forward(x_self, train);
        let k = self.wk.forward(x_neighbors, train);
        let v = self.wv.forward(x_neighbors, train);
        let scale = 1.0 / (self.dim as f32).sqrt();
        let mut out = DenseMatrix::zeros(batch.len(), self.dim);
        let mut alphas = vec![0.0f32; batch.total_neighbors()];
        for b in 0..batch.len() {
            let (lo, hi) = (batch.offsets[b], batch.offsets[b + 1]);
            if lo == hi {
                continue;
            }
            let qb = q.row(b);
            for (slot, &j) in alphas[lo..hi].iter_mut().zip(&batch.neighbor_rows[lo..hi]) {
                *slot = nai_linalg::ops::dot(qb, k.row(j as usize)) * scale;
            }
            softmax_slice(&mut alphas[lo..hi]);
            let orow = out.row_mut(b);
            for (&a, &j) in alphas[lo..hi].iter().zip(&batch.neighbor_rows[lo..hi]) {
                for (o, &vv) in orow.iter_mut().zip(v.row(j as usize)) {
                    *o += a * vv;
                }
            }
        }
        if train {
            self.cache = Some(AttentionCache {
                q,
                k,
                v,
                alphas,
                batch: batch.clone(),
            });
        }
        out
    }

    /// Backward pass from `d_out` (`batch × d`), accumulating gradients in
    /// the three projections. Input gradients are not produced (raw
    /// features are leaves in TinyGNN).
    ///
    /// # Panics
    /// Panics if called without a cached training forward.
    pub fn backward(&mut self, d_out: &DenseMatrix) {
        let cache = self
            .cache
            .take()
            .expect("backward called without training forward");
        let scale = 1.0 / (self.dim as f32).sqrt();
        let batch = &cache.batch;
        let mut dq = DenseMatrix::zeros(cache.q.rows(), self.dim);
        let mut dk = DenseMatrix::zeros(cache.k.rows(), self.dim);
        let mut dv = DenseMatrix::zeros(cache.v.rows(), self.dim);
        for b in 0..batch.len() {
            let (lo, hi) = (batch.offsets[b], batch.offsets[b + 1]);
            if lo == hi {
                continue;
            }
            let dout_b = d_out.row(b);
            let alphas = &cache.alphas[lo..hi];
            let nbrs = &batch.neighbor_rows[lo..hi];
            // dα_j = dout · v_j ; dv_j += α_j dout.
            let mut dalpha = vec![0.0f32; hi - lo];
            for (t, &j) in nbrs.iter().enumerate() {
                dalpha[t] = nai_linalg::ops::dot(dout_b, cache.v.row(j as usize));
                let dvrow = dv.row_mut(j as usize);
                for (dvv, &g) in dvrow.iter_mut().zip(dout_b.iter()) {
                    *dvv += alphas[t] * g;
                }
            }
            // Softmax backward: ds_j = α_j (dα_j − Σ_k α_k dα_k).
            let dot_ad: f32 = alphas.iter().zip(dalpha.iter()).map(|(a, d)| a * d).sum();
            let qb = cache.q.row(b).to_vec();
            let dqb = dq.row_mut(b);
            for (t, &j) in nbrs.iter().enumerate() {
                let ds = alphas[t] * (dalpha[t] - dot_ad) * scale;
                let krow = cache.k.row(j as usize);
                for (dqv, &kv) in dqb.iter_mut().zip(krow.iter()) {
                    *dqv += ds * kv;
                }
                let dkrow = dk.row_mut(j as usize);
                for (dkv, &qv) in dkrow.iter_mut().zip(qb.iter()) {
                    *dkv += ds * qv;
                }
            }
        }
        self.wq.backward(&dq);
        self.wk.backward(&dk);
        self.wv.backward(&dv);
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grads(&mut self) {
        self.wq.zero_grads();
        self.wk.zero_grads();
        self.wv.zero_grads();
    }

    /// Applies accumulated gradients.
    pub fn apply_grads(&mut self, opt: &Adam) {
        self.wq.apply_grads(opt);
        self.wk.apply_grads(opt);
        self.wv.apply_grads(opt);
    }

    /// MACs for one batch: three projections plus per-edge score/mix work.
    /// `f` is the feature dim; counts follow DESIGN.md §5.
    pub fn macs(&self, batch_nodes: u64, neighbor_rows: u64, total_edges: u64, f: u64) -> u64 {
        let d = self.dim as u64;
        batch_nodes * f * d            // queries
            + neighbor_rows * 2 * f * d // keys + values
            + total_edges * 2 * d // scores + weighted sum
    }

    /// Trainable parameter count.
    pub fn num_params(&self) -> usize {
        self.wq.num_params() + self.wk.num_params() + self.wv.num_params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (NeighborAttention, DenseMatrix, DenseMatrix, NeighborBatch) {
        let mut rng = StdRng::seed_from_u64(21);
        let attn = NeighborAttention::new(4, 3, &mut rng);
        let x_self = nai_linalg::init::gaussian(2, 4, 1.0, &mut rng);
        let x_nbr = nai_linalg::init::gaussian(5, 4, 1.0, &mut rng);
        let batch = NeighborBatch::from_lists(&[vec![0, 1, 2], vec![3, 4]]);
        (attn, x_self, x_nbr, batch)
    }

    #[test]
    fn forward_shapes_and_convexity() {
        let (mut attn, x_self, x_nbr, batch) = setup();
        let out = attn.forward(&x_self, &x_nbr, &batch, false);
        assert_eq!(out.shape(), (2, 3));
        // Output of node 0 lies in the convex hull of v rows — check max
        // bound via values.
        let v0 = attn.wv.forward_infer(&x_nbr);
        for c in 0..3 {
            let vals: Vec<f32> = (0..3).map(|j| v0.get(j, c)).collect();
            let (lo, hi) = vals
                .iter()
                .fold((f32::INFINITY, f32::NEG_INFINITY), |(l, h), &v| {
                    (l.min(v), h.max(v))
                });
            let o = out.get(0, c);
            assert!(
                o >= lo - 1e-5 && o <= hi + 1e-5,
                "out {o} outside [{lo},{hi}]"
            );
        }
    }

    #[test]
    fn node_without_neighbors_gets_zero_row() {
        let mut rng = StdRng::seed_from_u64(22);
        let mut attn = NeighborAttention::new(4, 3, &mut rng);
        let x_self = nai_linalg::init::gaussian(1, 4, 1.0, &mut rng);
        let x_nbr = DenseMatrix::zeros(1, 4);
        let batch = NeighborBatch::from_lists(&[vec![]]);
        let out = attn.forward(&x_self, &x_nbr, &batch, false);
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn gradients_match_finite_difference() {
        let (mut attn, x_self, x_nbr, batch) = setup();
        // Loss = sum(out²)/2.
        attn.zero_grads();
        let out = attn.forward(&x_self, &x_nbr, &batch, true);
        attn.backward(&out);
        let analytic = attn.wq.grad_w().get(1, 2);
        let eps = 1e-3f32;
        let loss_with = |attn: &mut NeighborAttention| -> f32 {
            let o = attn.forward(&x_self.clone(), &x_nbr.clone(), &batch, false);
            o.as_slice().iter().map(|v| v * v / 2.0).sum()
        };
        let orig = attn.wq.w.get(1, 2);
        attn.wq.w.set(1, 2, orig + eps);
        let lp = loss_with(&mut attn);
        attn.wq.w.set(1, 2, orig - eps);
        let lm = loss_with(&mut attn);
        attn.wq.w.set(1, 2, orig);
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
            "wq grad: numeric {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    fn value_projection_gradient_matches_finite_difference() {
        let (mut attn, x_self, x_nbr, batch) = setup();
        attn.zero_grads();
        let out = attn.forward(&x_self, &x_nbr, &batch, true);
        attn.backward(&out);
        let analytic = attn.wv.grad_w().get(0, 0);
        let eps = 1e-3f32;
        let orig = attn.wv.w.get(0, 0);
        let loss_with = |attn: &mut NeighborAttention| -> f32 {
            let o = attn.forward(&x_self.clone(), &x_nbr.clone(), &batch, false);
            o.as_slice().iter().map(|v| v * v / 2.0).sum()
        };
        attn.wv.w.set(0, 0, orig + eps);
        let lp = loss_with(&mut attn);
        attn.wv.w.set(0, 0, orig - eps);
        let lm = loss_with(&mut attn);
        attn.wv.w.set(0, 0, orig);
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
            "wv grad: numeric {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    fn neighbor_batch_bookkeeping() {
        let b = NeighborBatch::from_lists(&[vec![1, 2], vec![], vec![0]]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.total_neighbors(), 3);
        assert_eq!(b.offsets, vec![0, 2, 2, 3]);
        assert!(!b.is_empty());
        assert!(NeighborBatch::from_lists(&[]).is_empty());
    }

    #[test]
    fn macs_formula_counts_edges() {
        let mut rng = StdRng::seed_from_u64(23);
        let attn = NeighborAttention::new(8, 4, &mut rng);
        let macs = attn.macs(10, 50, 60, 8);
        assert_eq!(macs, 10 * 8 * 4 + 50 * 2 * 8 * 4 + 60 * 2 * 4);
    }
}
