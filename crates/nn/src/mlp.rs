//! Multi-layer perceptron with ReLU activations and inverted dropout.
//!
//! Every classifier in the reproduction — the per-depth classifiers
//! `f^(l)`, the GLNN/NOSMOG students, TinyGNN's head — is an [`Mlp`].

use crate::adam::Adam;
use crate::linear::Linear;
use nai_linalg::DenseMatrix;
use rand::Rng;

/// Architecture + regularisation of an MLP.
#[derive(Debug, Clone)]
pub struct MlpConfig {
    /// Input dimensionality.
    pub in_dim: usize,
    /// Hidden layer widths (empty = linear model, as in SGC's head).
    pub hidden: Vec<usize>,
    /// Output dimensionality (number of classes).
    pub out_dim: usize,
    /// Inverted-dropout probability applied after each hidden activation.
    pub dropout: f32,
}

impl MlpConfig {
    /// Linear softmax classifier (no hidden layers).
    pub fn linear(in_dim: usize, out_dim: usize) -> Self {
        Self {
            in_dim,
            hidden: vec![],
            out_dim,
            dropout: 0.0,
        }
    }

    /// Single-hidden-layer classifier.
    pub fn one_hidden(in_dim: usize, hidden: usize, out_dim: usize, dropout: f32) -> Self {
        Self {
            in_dim,
            hidden: vec![hidden],
            out_dim,
            dropout,
        }
    }
}

/// ReLU + dropout MLP with explicit backprop.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    dropout: f32,
    // Caches from the last training forward.
    relu_inputs: Vec<DenseMatrix>,
    dropout_masks: Vec<Vec<f32>>,
}

impl Mlp {
    /// Builds the MLP described by `cfg`.
    pub fn new<R: Rng>(cfg: &MlpConfig, rng: &mut R) -> Self {
        let mut dims = vec![cfg.in_dim];
        dims.extend_from_slice(&cfg.hidden);
        dims.push(cfg.out_dim);
        let layers = dims
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], rng))
            .collect();
        Self {
            layers,
            dropout: cfg.dropout,
            relu_inputs: Vec::new(),
            dropout_masks: Vec::new(),
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Layer access (custom heads need the raw layers).
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// Training forward: caches pre-activations and dropout masks.
    pub fn forward_train<R: Rng>(&mut self, x: &DenseMatrix, rng: &mut R) -> DenseMatrix {
        self.relu_inputs.clear();
        self.dropout_masks.clear();
        let n_layers = self.layers.len();
        let mut h = x.clone();
        for li in 0..n_layers {
            h = self.layers[li].forward(&h, true);
            if li + 1 < n_layers {
                // Cache pre-activation, apply ReLU.
                self.relu_inputs.push(h.clone());
                for v in h.as_mut_slice() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
                // Inverted dropout.
                let mut mask = vec![1.0f32; h.as_slice().len()];
                if self.dropout > 0.0 {
                    let keep = 1.0 - self.dropout;
                    let scale = 1.0 / keep;
                    for m in mask.iter_mut() {
                        *m = if rng.gen::<f32>() < keep { scale } else { 0.0 };
                    }
                    for (v, &m) in h.as_mut_slice().iter_mut().zip(mask.iter()) {
                        *v *= m;
                    }
                }
                self.dropout_masks.push(mask);
            }
        }
        h
    }

    /// Inference forward (no dropout, no caching).
    pub fn forward(&self, x: &DenseMatrix) -> DenseMatrix {
        let n_layers = self.layers.len();
        let mut h = x.clone();
        for (li, layer) in self.layers.iter().enumerate() {
            h = layer.forward_infer(&h);
            if li + 1 < n_layers {
                for v in h.as_mut_slice() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
            }
        }
        h
    }

    /// Backward from output gradient, accumulating into every layer.
    /// Returns the input gradient (needed by custom heads like GAMLP).
    pub fn backward(&mut self, dlogits: &DenseMatrix) -> DenseMatrix {
        let n_layers = self.layers.len();
        let mut g = dlogits.clone();
        for li in (0..n_layers).rev() {
            if li + 1 < n_layers {
                // Undo dropout then ReLU.
                let mask = &self.dropout_masks[li];
                for (v, &m) in g.as_mut_slice().iter_mut().zip(mask.iter()) {
                    *v *= m;
                }
                let pre = &self.relu_inputs[li];
                for (v, &p) in g.as_mut_slice().iter_mut().zip(pre.as_slice().iter()) {
                    if p <= 0.0 {
                        *v = 0.0;
                    }
                }
            }
            g = self.layers[li].backward(&g);
        }
        g
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for l in &mut self.layers {
            l.zero_grads();
        }
    }

    /// Applies all accumulated gradients with Adam.
    pub fn apply_grads(&mut self, opt: &Adam) {
        for l in &mut self.layers {
            l.apply_grads(opt);
        }
    }

    /// Total trainable parameter count.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.num_params()).sum()
    }

    /// Multiply-accumulates per input row at inference (classification MACs
    /// in the paper's accounting).
    pub fn macs_per_row(&self) -> u64 {
        self.layers.iter().map(|l| l.macs_per_row()).sum()
    }

    /// Parameter snapshot for early stopping.
    pub fn snapshot(&self) -> Vec<(Vec<f32>, Vec<f32>)> {
        self.layers.iter().map(|l| l.snapshot()).collect()
    }

    /// Restores a snapshot taken with [`Self::snapshot`].
    ///
    /// # Panics
    /// Panics if the snapshot does not match the architecture.
    pub fn restore(&mut self, snap: &[(Vec<f32>, Vec<f32>)]) {
        assert_eq!(snap.len(), self.layers.len(), "snapshot layer count");
        for (l, s) in self.layers.iter_mut().zip(snap.iter()) {
            l.restore(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::softmax_cross_entropy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_flow_through() {
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = Mlp::new(&MlpConfig::one_hidden(8, 16, 3, 0.0), &mut rng);
        assert_eq!(mlp.in_dim(), 8);
        assert_eq!(mlp.out_dim(), 3);
        let x = DenseMatrix::zeros(5, 8);
        assert_eq!(mlp.forward(&x).shape(), (5, 3));
        assert_eq!(mlp.num_params(), 8 * 16 + 16 + 16 * 3 + 3);
        assert_eq!(mlp.macs_per_row(), (8 * 16 + 16 * 3) as u64);
    }

    #[test]
    fn linear_config_has_single_layer() {
        let mut rng = StdRng::seed_from_u64(2);
        let mlp = Mlp::new(&MlpConfig::linear(4, 2), &mut rng);
        assert_eq!(mlp.layers().len(), 1);
    }

    #[test]
    fn learns_xor_like_separation() {
        // Two interleaved clusters that a linear model cannot separate.
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200;
        let x = DenseMatrix::from_fn(n, 2, |r, c| {
            let q = r % 4;
            let (a, b) = match q {
                0 => (0.0, 0.0),
                1 => (1.0, 1.0),
                2 => (0.0, 1.0),
                _ => (1.0, 0.0),
            };
            let base = if c == 0 { a } else { b };
            base + 0.05 * ((r * 31 + c * 7) % 10) as f32 / 10.0
        });
        let y: Vec<u32> = (0..n).map(|r| if r % 4 < 2 { 0 } else { 1 }).collect();
        let mut mlp = Mlp::new(&MlpConfig::one_hidden(2, 16, 2, 0.0), &mut rng);
        let opt = Adam::new(0.02, 0.0);
        for _ in 0..300 {
            mlp.zero_grads();
            let logits = mlp.forward_train(&x, &mut rng);
            let (_, dlogits) = softmax_cross_entropy(&logits, &y);
            mlp.backward(&dlogits);
            mlp.apply_grads(&opt);
        }
        let logits = mlp.forward(&x);
        let pred = nai_linalg::ops::argmax_rows(&logits);
        let all: Vec<usize> = (0..n).collect();
        let acc = nai_linalg::ops::accuracy(&pred, &y, &all);
        assert!(acc > 0.95, "xor accuracy {acc}");
    }

    #[test]
    fn dropout_zeroes_some_activations_in_training_only() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut mlp = Mlp::new(
            &MlpConfig {
                in_dim: 4,
                hidden: vec![64],
                out_dim: 2,
                dropout: 0.5,
            },
            &mut rng,
        );
        let x = DenseMatrix::from_fn(8, 4, |_, _| 1.0);
        let _ = mlp.forward_train(&x, &mut rng);
        let zeros = mlp.dropout_masks[0].iter().filter(|&&m| m == 0.0).count();
        assert!(zeros > 0, "expected some dropped units");
        // Inference path must be deterministic.
        let a = mlp.forward(&x);
        let b = mlp.forward(&x);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn backward_matches_finite_difference_loss() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut mlp = Mlp::new(&MlpConfig::one_hidden(3, 5, 2, 0.0), &mut rng);
        let x = DenseMatrix::from_fn(4, 3, |r, c| ((r + c) as f32 * 0.41).cos());
        let y = vec![0u32, 1, 1, 0];
        mlp.zero_grads();
        let logits = mlp.forward_train(&x, &mut rng);
        let (_, dlogits) = softmax_cross_entropy(&logits, &y);
        mlp.backward(&dlogits);
        // Numeric check on first-layer weight (0,0).
        let eps = 1e-3f32;
        let loss_at = |mlp: &Mlp| {
            let (l, _) = softmax_cross_entropy(&mlp.forward(&x), &y);
            l
        };
        let analytic = mlp.layers()[0].grad_w().get(0, 0);
        let mut plus = mlp.clone();
        let snap = plus.snapshot();
        let mut sp = snap.clone();
        sp[0].0[0] += eps;
        plus.restore(&sp);
        let lp = loss_at(&plus);
        let mut sm = snap.clone();
        sm[0].0[0] -= eps;
        plus.restore(&sm);
        let lm = loss_at(&plus);
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (numeric - analytic).abs() < 1e-2 * (1.0 + numeric.abs()),
            "numeric {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut mlp = Mlp::new(&MlpConfig::one_hidden(3, 4, 2, 0.0), &mut rng);
        let snap = mlp.snapshot();
        let x = DenseMatrix::from_fn(2, 3, |_, _| 0.5);
        let before = mlp.forward(&x);
        let opt = Adam::new(0.1, 0.0);
        mlp.zero_grads();
        let logits = mlp.forward_train(&x, &mut rng);
        let (_, d) = softmax_cross_entropy(&logits, &[0, 1]);
        mlp.backward(&d);
        mlp.apply_grads(&opt);
        mlp.restore(&snap);
        let after = mlp.forward(&x);
        assert_eq!(before.as_slice(), after.as_slice());
    }
}
