//! Supervised training loop with mini-batches, early stopping and optional
//! knowledge distillation.
//!
//! Used for the base classifier `f^(k)` (plain cross-entropy) and — with a
//! teacher attached — for Single-Scale Distillation students and the
//! GLNN/NOSMOG baselines. Multi-Scale Distillation needs a joint objective
//! over all students and lives in `nai-core::distill`.

use crate::adam::Adam;
use crate::loss::{distillation_loss, softmax_cross_entropy};
use crate::mlp::Mlp;
use nai_linalg::ops::{accuracy, argmax_rows};
use nai_linalg::DenseMatrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Training-loop configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Maximum epochs.
    pub epochs: usize,
    /// Mini-batch size (0 = full batch).
    pub batch_size: usize,
    /// Early-stopping patience in epochs without val-accuracy improvement.
    pub patience: usize,
    /// Optimizer settings.
    pub adam: Adam,
    /// RNG seed for shuffling and dropout.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 100,
            batch_size: 0,
            patience: 20,
            adam: Adam::default(),
            seed: 0,
        }
    }
}

/// Optional distillation signal: teacher logits aligned row-for-row with
/// the training matrix, plus Eq. (17)'s temperature and mixing weight.
#[derive(Debug, Clone, Copy)]
pub struct Distillation<'a> {
    /// Teacher logits (`rows == training rows`).
    pub teacher_logits: &'a DenseMatrix,
    /// Softening temperature `T`.
    pub temperature: f32,
    /// Mixing weight λ: loss = `(1−λ)·CE + λ·T²·KD`.
    pub lambda: f32,
}

/// Outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Best validation accuracy seen (the restored model's accuracy).
    pub best_val_acc: f64,
    /// Epochs actually run (≤ `epochs` with early stopping).
    pub epochs_run: usize,
    /// Training loss of the final epoch.
    pub final_train_loss: f32,
}

/// Trains `mlp` on `(x, y)`, early-stopping on `(x_val, y_val)` accuracy,
/// and restores the best snapshot before returning.
///
/// # Panics
/// Panics on row/label count mismatches.
pub fn train(
    mlp: &mut Mlp,
    x: &DenseMatrix,
    y: &[u32],
    distill: Option<Distillation<'_>>,
    x_val: &DenseMatrix,
    y_val: &[u32],
    cfg: &TrainConfig,
) -> TrainReport {
    assert_eq!(x.rows(), y.len(), "one label per training row");
    assert_eq!(x_val.rows(), y_val.len(), "one label per val row");
    if let Some(d) = &distill {
        assert_eq!(
            d.teacher_logits.rows(),
            x.rows(),
            "teacher logits must align with training rows"
        );
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = x.rows();
    let batch = if cfg.batch_size == 0 || cfg.batch_size >= n {
        n
    } else {
        cfg.batch_size
    };
    let mut order: Vec<usize> = (0..n).collect();
    let mut best_val = -1.0f64;
    let mut best_snap = mlp.snapshot();
    let mut since_best = 0usize;
    let mut epochs_run = 0usize;
    let mut last_loss = 0.0f32;
    let val_all: Vec<usize> = (0..y_val.len()).collect();

    for _epoch in 0..cfg.epochs {
        epochs_run += 1;
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f32;
        let mut batches = 0usize;
        for chunk in order.chunks(batch) {
            let xb = x.gather_rows(chunk).expect("indices in range");
            let yb: Vec<u32> = chunk.iter().map(|&i| y[i]).collect();
            mlp.zero_grads();
            let logits = mlp.forward_train(&xb, &mut rng);
            let (loss, dlogits) = match &distill {
                None => softmax_cross_entropy(&logits, &yb),
                Some(d) => {
                    let tb = d.teacher_logits.gather_rows(chunk).expect("teacher rows");
                    let (ce, mut dce) = softmax_cross_entropy(&logits, &yb);
                    let (kd, dkd) = distillation_loss(&logits, &tb, d.temperature);
                    let t2 = d.temperature * d.temperature;
                    dce.scale(1.0 - d.lambda);
                    dce.axpy(d.lambda * t2, &dkd).expect("grad shapes");
                    ((1.0 - d.lambda) * ce + d.lambda * t2 * kd, dce)
                }
            };
            epoch_loss += loss;
            batches += 1;
            mlp.backward(&dlogits);
            mlp.apply_grads(&cfg.adam);
        }
        last_loss = epoch_loss / batches.max(1) as f32;

        // Validation.
        let val_acc = if y_val.is_empty() {
            // No validation set: treat training loss decrease as progress.
            -last_loss as f64
        } else {
            let pred = argmax_rows(&mlp.forward(x_val));
            accuracy(&pred, y_val, &val_all)
        };
        if val_acc > best_val {
            best_val = val_acc;
            best_snap = mlp.snapshot();
            since_best = 0;
        } else {
            since_best += 1;
            if since_best > cfg.patience {
                break;
            }
        }
    }
    mlp.restore(&best_snap);
    TrainReport {
        best_val_acc: best_val.max(0.0),
        epochs_run,
        final_train_loss: last_loss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::MlpConfig;
    use nai_linalg::init::gaussian;

    /// Two gaussian blobs; returns (x, y).
    fn blobs(n: usize, seed: u64) -> (DenseMatrix, Vec<u32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let noise = gaussian(n, 2, 0.5, &mut rng);
        let mut x = DenseMatrix::zeros(n, 2);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let cls = (i % 2) as u32;
            let center = if cls == 0 { -1.5 } else { 1.5 };
            x.set(i, 0, center + noise.get(i, 0));
            x.set(i, 1, -center + noise.get(i, 1));
            y.push(cls);
        }
        (x, y)
    }

    #[test]
    fn trains_to_high_accuracy_on_blobs() {
        let (x, y) = blobs(200, 1);
        let (xv, yv) = blobs(80, 2);
        let mut mlp = Mlp::new(&MlpConfig::linear(2, 2), &mut StdRng::seed_from_u64(3));
        let report = train(
            &mut mlp,
            &x,
            &y,
            None,
            &xv,
            &yv,
            &TrainConfig {
                epochs: 100,
                adam: Adam::new(0.05, 0.0),
                ..TrainConfig::default()
            },
        );
        assert!(
            report.best_val_acc > 0.95,
            "val acc {}",
            report.best_val_acc
        );
    }

    #[test]
    fn early_stopping_halts_before_epoch_limit() {
        let (x, y) = blobs(100, 4);
        let (xv, yv) = blobs(40, 5);
        let mut mlp = Mlp::new(&MlpConfig::linear(2, 2), &mut StdRng::seed_from_u64(6));
        let report = train(
            &mut mlp,
            &x,
            &y,
            None,
            &xv,
            &yv,
            &TrainConfig {
                epochs: 5000,
                patience: 5,
                adam: Adam::new(0.05, 0.0),
                ..TrainConfig::default()
            },
        );
        assert!(report.epochs_run < 5000, "ran {} epochs", report.epochs_run);
    }

    #[test]
    fn distillation_transfers_teacher_behaviour() {
        // Teacher: fixed linear map. Student trained only on KD (λ = 1)
        // should match the teacher's predictions even where labels disagree.
        let (x, y) = blobs(300, 7);
        let mut teacher = Mlp::new(&MlpConfig::linear(2, 2), &mut StdRng::seed_from_u64(8));
        let _ = train(
            &mut teacher,
            &x,
            &y,
            None,
            &x,
            &y,
            &TrainConfig {
                epochs: 150,
                adam: Adam::new(0.05, 0.0),
                ..TrainConfig::default()
            },
        );
        let teacher_logits = teacher.forward(&x);
        let mut student = Mlp::new(
            &MlpConfig::one_hidden(2, 8, 2, 0.0),
            &mut StdRng::seed_from_u64(9),
        );
        let report = train(
            &mut student,
            &x,
            &y,
            Some(Distillation {
                teacher_logits: &teacher_logits,
                temperature: 2.0,
                lambda: 1.0,
            }),
            &x,
            &y,
            &TrainConfig {
                epochs: 200,
                adam: Adam::new(0.02, 0.0),
                ..TrainConfig::default()
            },
        );
        let tp = argmax_rows(&teacher.forward(&x));
        let sp = argmax_rows(&student.forward(&x));
        let agree = tp.iter().zip(sp.iter()).filter(|(a, b)| a == b).count();
        assert!(
            agree as f64 / tp.len() as f64 > 0.95,
            "student agrees on {agree}/{} (report {report:?})",
            tp.len()
        );
    }

    #[test]
    fn minibatch_and_fullbatch_both_learn() {
        let (x, y) = blobs(128, 10);
        for bs in [0usize, 32] {
            let mut mlp = Mlp::new(&MlpConfig::linear(2, 2), &mut StdRng::seed_from_u64(11));
            let report = train(
                &mut mlp,
                &x,
                &y,
                None,
                &x,
                &y,
                &TrainConfig {
                    epochs: 80,
                    batch_size: bs,
                    adam: Adam::new(0.05, 0.0),
                    ..TrainConfig::default()
                },
            );
            assert!(
                report.best_val_acc > 0.9,
                "bs={bs}: acc {}",
                report.best_val_acc
            );
        }
    }

    #[test]
    fn empty_validation_uses_training_loss() {
        let (x, y) = blobs(64, 12);
        let xv = DenseMatrix::zeros(0, 2);
        let yv: Vec<u32> = vec![];
        let mut mlp = Mlp::new(&MlpConfig::linear(2, 2), &mut StdRng::seed_from_u64(13));
        let report = train(
            &mut mlp,
            &x,
            &y,
            None,
            &xv,
            &yv,
            &TrainConfig {
                epochs: 30,
                adam: Adam::new(0.05, 0.0),
                ..TrainConfig::default()
            },
        );
        assert!(report.epochs_run >= 1);
    }
}
