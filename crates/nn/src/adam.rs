//! Adam optimizer (Kingma & Ba), the optimizer used for every trainable
//! component in the paper's experiments.

/// Adam hyper-parameters. `weight_decay` is decoupled (AdamW-style): it is
/// applied directly to the parameter, not folded into the moment estimates.
#[derive(Debug, Clone, Copy)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Decoupled weight decay coefficient.
    pub weight_decay: f32,
}

impl Default for Adam {
    fn default() -> Self {
        Self {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }
}

impl Adam {
    /// Convenience constructor with the two knobs the paper tunes.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        Self {
            lr,
            weight_decay,
            ..Self::default()
        }
    }
}

/// Per-tensor optimizer state (first/second moments + step counter).
#[derive(Debug, Clone)]
pub struct AdamState {
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl AdamState {
    /// State for a tensor with `len` elements.
    pub fn new(len: usize) -> Self {
        Self {
            m: vec![0.0; len],
            v: vec![0.0; len],
            t: 0,
        }
    }

    /// Applies one Adam update: `param -= lr * m̂ / (sqrt(v̂) + eps)`.
    ///
    /// # Panics
    /// Panics (debug) if tensor lengths disagree with the state.
    pub fn update(&mut self, opt: &Adam, param: &mut [f32], grad: &[f32]) {
        debug_assert_eq!(param.len(), self.m.len());
        debug_assert_eq!(grad.len(), self.m.len());
        self.t += 1;
        let b1t = 1.0 - opt.beta1.powi(self.t as i32);
        let b2t = 1.0 - opt.beta2.powi(self.t as i32);
        for i in 0..param.len() {
            let g = grad[i];
            self.m[i] = opt.beta1 * self.m[i] + (1.0 - opt.beta1) * g;
            self.v[i] = opt.beta2 * self.v[i] + (1.0 - opt.beta2) * g * g;
            let m_hat = self.m[i] / b1t;
            let v_hat = self.v[i] / b2t;
            let mut p = param[i];
            if opt.weight_decay > 0.0 {
                p -= opt.lr * opt.weight_decay * p;
            }
            param[i] = p - opt.lr * m_hat / (v_hat.sqrt() + opt.eps);
        }
    }

    /// Resets moments and step count (used when a snapshot is restored).
    pub fn reset(&mut self) {
        self.m.fill(0.0);
        self.v.fill(0.0);
        self.t = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimizes_quadratic() {
        // f(x) = ||x - target||², gradient 2(x - target).
        let target = [3.0f32, -2.0, 0.5];
        let mut x = [0.0f32; 3];
        let opt = Adam::new(0.05, 0.0);
        let mut state = AdamState::new(3);
        for _ in 0..800 {
            let grad: Vec<f32> = x
                .iter()
                .zip(target.iter())
                .map(|(a, t)| 2.0 * (a - t))
                .collect();
            state.update(&opt, &mut x, &grad);
        }
        for (a, t) in x.iter().zip(target.iter()) {
            assert!((a - t).abs() < 1e-2, "x = {x:?}");
        }
    }

    #[test]
    fn weight_decay_shrinks_params_without_gradient() {
        let mut x = [10.0f32];
        let opt = Adam {
            lr: 0.1,
            weight_decay: 0.1,
            ..Adam::default()
        };
        let mut state = AdamState::new(1);
        for _ in 0..50 {
            state.update(&opt, &mut x, &[0.0]);
        }
        assert!(x[0] < 10.0 * 0.99f32.powi(10));
    }

    #[test]
    fn reset_clears_state() {
        let mut state = AdamState::new(2);
        let opt = Adam::default();
        let mut x = [1.0f32, 1.0];
        state.update(&opt, &mut x, &[1.0, 1.0]);
        assert_eq!(state.t, 1);
        state.reset();
        assert_eq!(state.t, 0);
        assert!(state.m.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn first_step_moves_by_approximately_lr() {
        // With bias correction, |Δx| of the first step ≈ lr regardless of
        // gradient magnitude.
        let mut x = [0.0f32];
        let opt = Adam::new(0.01, 0.0);
        let mut state = AdamState::new(1);
        state.update(&opt, &mut x, &[123.0]);
        assert!((x[0] + 0.01).abs() < 1e-4, "x = {}", x[0]);
    }
}
