//! Dense linear layer with cached forward pass and accumulated gradients.

use crate::adam::{Adam, AdamState};
use nai_linalg::init::glorot_uniform;
use nai_linalg::DenseMatrix;
use rand::Rng;

/// `y = x W + b`, with `W : in_dim × out_dim` and row-vector bias.
///
/// The layer owns its gradients and Adam moments; a training step is
/// `zero_grads → forward → backward → apply_grads`.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight matrix, `in_dim × out_dim`.
    pub w: DenseMatrix,
    /// Bias vector, `out_dim`.
    pub b: Vec<f32>,
    gw: DenseMatrix,
    gb: Vec<f32>,
    w_state: AdamState,
    b_state: AdamState,
    input_cache: Option<DenseMatrix>,
}

impl Linear {
    /// Glorot-initialised layer.
    pub fn new<R: Rng>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        Self {
            w: glorot_uniform(in_dim, out_dim, rng),
            b: vec![0.0; out_dim],
            gw: DenseMatrix::zeros(in_dim, out_dim),
            gb: vec![0.0; out_dim],
            w_state: AdamState::new(in_dim * out_dim),
            b_state: AdamState::new(out_dim),
            input_cache: None,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    /// Forward pass. When `train` is set, the input is cached for
    /// [`Self::backward`].
    pub fn forward(&mut self, x: &DenseMatrix, train: bool) -> DenseMatrix {
        let mut y = x.matmul(&self.w).expect("linear shape mismatch");
        y.add_bias_row(&self.b);
        if train {
            self.input_cache = Some(x.clone());
        }
        y
    }

    /// Inference-only forward (no caching, usable through `&self`).
    pub fn forward_infer(&self, x: &DenseMatrix) -> DenseMatrix {
        let mut y = x.matmul(&self.w).expect("linear shape mismatch");
        y.add_bias_row(&self.b);
        y
    }

    /// Single-row inference forward into a caller buffer, **bit-identical**
    /// with the corresponding row of [`Self::forward_infer`] (same
    /// accumulation order and zero-input skip as the matmul kernel). Lets
    /// hot loops score one row at a time without materializing an input
    /// matrix.
    ///
    /// # Panics
    /// Panics if `x.len() != in_dim` or `out.len() != out_dim`.
    pub fn forward_row_infer(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.w.rows(), "input row length");
        assert_eq!(out.len(), self.w.cols(), "output row length");
        let wcols = self.w.cols();
        let wdata = self.w.as_slice();
        out.fill(0.0);
        for (k, &a) in x.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let brow = &wdata[k * wcols..(k + 1) * wcols];
            for (o, &b) in out.iter_mut().zip(brow.iter()) {
                *o += a * b;
            }
        }
        for (o, &b) in out.iter_mut().zip(self.b.iter()) {
            *o += b;
        }
    }

    /// Backward pass: accumulates `dW += xᵀ dy`, `db += Σ dy`, returns
    /// `dx = dy Wᵀ`.
    ///
    /// # Panics
    /// Panics if called without a cached training forward.
    pub fn backward(&mut self, dy: &DenseMatrix) -> DenseMatrix {
        let x = self
            .input_cache
            .as_ref()
            .expect("backward called without training forward");
        let gw = x.transpose_matmul(dy).expect("grad shape");
        self.gw.add_assign(&gw).expect("grad accumulation shape");
        for row in dy.as_slice().chunks(dy.cols()) {
            for (g, &d) in self.gb.iter_mut().zip(row.iter()) {
                *g += d;
            }
        }
        dy.matmul_transpose_rhs(&self.w).expect("input grad shape")
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grads(&mut self) {
        self.gw.as_mut_slice().fill(0.0);
        self.gb.fill(0.0);
    }

    /// Applies accumulated gradients with Adam and drops the forward cache.
    pub fn apply_grads(&mut self, opt: &Adam) {
        self.w_state
            .update(opt, self.w.as_mut_slice(), self.gw.as_slice());
        self.b_state.update(opt, &mut self.b, &self.gb);
        self.input_cache = None;
    }

    /// Direct access to the accumulated weight gradient (tests, custom
    /// heads).
    pub fn grad_w(&self) -> &DenseMatrix {
        &self.gw
    }

    /// Number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.len()
    }

    /// Multiply-accumulates needed per input row at inference.
    pub fn macs_per_row(&self) -> u64 {
        (self.w.rows() * self.w.cols()) as u64
    }

    /// Copies of the parameters (early-stopping snapshots).
    pub fn snapshot(&self) -> (Vec<f32>, Vec<f32>) {
        (self.w.as_slice().to_vec(), self.b.clone())
    }

    /// Restores parameters from a snapshot and resets optimizer state.
    ///
    /// # Panics
    /// Panics if lengths disagree with the layer shape.
    pub fn restore(&mut self, snap: &(Vec<f32>, Vec<f32>)) {
        assert_eq!(snap.0.len(), self.w.as_slice().len());
        assert_eq!(snap.1.len(), self.b.len());
        self.w.as_mut_slice().copy_from_slice(&snap.0);
        self.b.copy_from_slice(&snap.1);
        self.w_state.reset();
        self.b_state.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn forward_shapes_and_bias() {
        let mut l = Linear::new(3, 2, &mut rng());
        l.b = vec![1.0, -1.0];
        let x = DenseMatrix::zeros(4, 3);
        let y = l.forward(&x, false);
        assert_eq!(y.shape(), (4, 2));
        for r in 0..4 {
            assert_eq!(y.row(r), &[1.0, -1.0]);
        }
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut l = Linear::new(3, 2, &mut rng());
        let x = DenseMatrix::from_fn(2, 3, |r, c| (r as f32 + 1.0) * 0.3 - c as f32 * 0.2);
        // Loss = sum(y²)/2 so dy = y.
        let y = l.forward(&x, true);
        let dx = l.backward(&y);

        let eps = 1e-3f32;
        // Check dW numerically for a few entries.
        for &(i, j) in &[(0usize, 0usize), (1, 1), (2, 0)] {
            let orig = l.w.get(i, j);
            l.w.set(i, j, orig + eps);
            let yp = l.forward_infer(&x);
            let lp: f32 = yp.as_slice().iter().map(|v| v * v / 2.0).sum();
            l.w.set(i, j, orig - eps);
            let ym = l.forward_infer(&x);
            let lm: f32 = ym.as_slice().iter().map(|v| v * v / 2.0).sum();
            l.w.set(i, j, orig);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = l.grad_w().get(i, j);
            assert!(
                (numeric - analytic).abs() < 1e-2 * (1.0 + numeric.abs()),
                "dW[{i},{j}]: numeric {numeric} vs analytic {analytic}"
            );
        }
        // Check dx numerically for one entry.
        let probe = (1usize, 2usize);
        let base = |l: &Linear, x: &DenseMatrix| -> f32 {
            let y = l.forward_infer(x);
            y.as_slice().iter().map(|v| v * v / 2.0).sum()
        };
        let mut xp = x.clone();
        xp.set(probe.0, probe.1, x.get(probe.0, probe.1) + eps);
        let mut xm = x.clone();
        xm.set(probe.0, probe.1, x.get(probe.0, probe.1) - eps);
        let numeric = (base(&l, &xp) - base(&l, &xm)) / (2.0 * eps);
        let analytic = dx.get(probe.0, probe.1);
        assert!(
            (numeric - analytic).abs() < 1e-2 * (1.0 + numeric.abs()),
            "dx: numeric {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    fn training_step_reduces_regression_loss() {
        let mut rng = rng();
        let mut l = Linear::new(4, 1, &mut rng);
        let x = DenseMatrix::from_fn(16, 4, |r, c| ((r * 4 + c) as f32 * 0.7).sin());
        let target = DenseMatrix::from_fn(16, 1, |r, _| x.row(r).iter().sum::<f32>() * 0.5);
        let opt = Adam::new(0.05, 0.0);
        let mut last = f32::INFINITY;
        for epoch in 0..200 {
            l.zero_grads();
            let y = l.forward(&x, true);
            let mut dy = y.clone();
            dy.axpy(-1.0, &target).unwrap();
            let loss: f32 = dy.as_slice().iter().map(|v| v * v / 2.0).sum();
            l.backward(&dy);
            l.apply_grads(&opt);
            if epoch % 50 == 0 {
                assert!(loss <= last + 1e-3, "loss rose: {last} -> {loss}");
                last = loss;
            }
        }
        assert!(last < 0.1, "final loss {last}");
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut l = Linear::new(3, 3, &mut rng());
        let snap = l.snapshot();
        let opt = Adam::new(0.1, 0.0);
        let x = DenseMatrix::from_fn(2, 3, |_, _| 1.0);
        l.zero_grads();
        let y = l.forward(&x, true);
        l.backward(&y);
        l.apply_grads(&opt);
        assert_ne!(l.w.as_slice(), snap.0.as_slice());
        l.restore(&snap);
        assert_eq!(l.w.as_slice(), snap.0.as_slice());
    }

    #[test]
    fn macs_and_params_counts() {
        let l = Linear::new(10, 5, &mut rng());
        assert_eq!(l.macs_per_row(), 50);
        assert_eq!(l.num_params(), 55);
    }

    #[test]
    #[should_panic(expected = "backward called without training forward")]
    fn backward_without_forward_panics() {
        let mut l = Linear::new(2, 2, &mut rng());
        let dy = DenseMatrix::zeros(1, 2);
        let _ = l.backward(&dy);
    }
}
