//! Loss functions: hard-label cross-entropy, soft-target cross-entropy and
//! the temperature-scaled knowledge-distillation loss of Eq. (14)–(15).
//!
//! Every function returns `(mean loss, dlogits)` with the gradient already
//! divided by the batch size, so callers can scale by loss weights (the
//! paper's λ and T² factors) and feed straight into `Mlp::backward`.

use nai_linalg::ops::{log_softmax_slice, softmax_slice};
use nai_linalg::DenseMatrix;

/// Hard-label softmax cross-entropy over all rows.
///
/// Returns the mean loss and `d loss / d logits`.
///
/// # Panics
/// Panics if `labels.len() != logits.rows()` or a label is out of range.
pub fn softmax_cross_entropy(logits: &DenseMatrix, labels: &[u32]) -> (f32, DenseMatrix) {
    assert_eq!(labels.len(), logits.rows(), "one label per row");
    let n = logits.rows().max(1) as f32;
    let c = logits.cols();
    let mut grad = logits.clone();
    let mut loss = 0.0f32;
    for (r, row) in grad.as_mut_slice().chunks_mut(c).enumerate() {
        let y = labels[r] as usize;
        assert!(y < c, "label {y} out of range ({c} classes)");
        let mut logp = row.to_vec();
        log_softmax_slice(&mut logp);
        loss -= logp[y];
        // grad = (softmax - onehot) / n
        softmax_slice(row);
        row[y] -= 1.0;
        for v in row.iter_mut() {
            *v /= n;
        }
    }
    (loss / n, grad)
}

/// Cross-entropy against soft targets (rows of `targets` are probability
/// distributions). Returns mean loss and gradient w.r.t. logits.
///
/// # Panics
/// Panics if shapes differ.
pub fn soft_cross_entropy(logits: &DenseMatrix, targets: &DenseMatrix) -> (f32, DenseMatrix) {
    assert_eq!(logits.shape(), targets.shape(), "soft CE shape mismatch");
    let n = logits.rows().max(1) as f32;
    let c = logits.cols();
    let mut grad = logits.clone();
    let mut loss = 0.0f32;
    for (r, row) in grad.as_mut_slice().chunks_mut(c).enumerate() {
        let t = targets.row(r);
        let mut logp = row.to_vec();
        log_softmax_slice(&mut logp);
        for (lp, &tv) in logp.iter().zip(t.iter()) {
            loss -= tv * lp;
        }
        softmax_slice(row);
        for (g, &tv) in row.iter_mut().zip(t.iter()) {
            *g = (*g - tv) / n;
        }
    }
    (loss / n, grad)
}

/// Knowledge-distillation loss (Hinton et al., Eq. 14–15 of the paper):
/// `CE(softmax(z_s / T), softmax(z_t / T))`.
///
/// The returned gradient is w.r.t. the *student* logits and includes the
/// `1/T` chain factor; the conventional `T²` loss rescaling (Eq. 17) is
/// left to the caller as part of the loss weight.
///
/// # Panics
/// Panics if shapes differ or `temperature <= 0`.
pub fn distillation_loss(
    student_logits: &DenseMatrix,
    teacher_logits: &DenseMatrix,
    temperature: f32,
) -> (f32, DenseMatrix) {
    assert!(temperature > 0.0, "temperature must be positive");
    assert_eq!(
        student_logits.shape(),
        teacher_logits.shape(),
        "distillation shape mismatch"
    );
    let n = student_logits.rows().max(1) as f32;
    let c = student_logits.cols();
    let inv_t = 1.0 / temperature;
    let mut grad = DenseMatrix::zeros(student_logits.rows(), c);
    let mut loss = 0.0f32;
    let mut ps = vec![0.0f32; c];
    let mut pt = vec![0.0f32; c];
    for r in 0..student_logits.rows() {
        for (dst, &src) in ps.iter_mut().zip(student_logits.row(r)) {
            *dst = src * inv_t;
        }
        log_softmax_slice(&mut ps);
        for (dst, &src) in pt.iter_mut().zip(teacher_logits.row(r)) {
            *dst = src * inv_t;
        }
        softmax_slice(&mut pt);
        for (lp, &t) in ps.iter().zip(pt.iter()) {
            loss -= t * lp;
        }
        let grow = grad.row_mut(r);
        for ((g, lp), &t) in grow.iter_mut().zip(ps.iter()).zip(pt.iter()) {
            // d/dz_s [CE(softmax(z_s/T), p_t)] = (softmax(z_s/T) − p_t) / T
            *g = (lp.exp() - t) * inv_t / n;
        }
    }
    (loss / n, grad)
}

/// Row-wise soft predictions `softmax(logits / T)` — the `p̃` of Eq. (14).
pub fn soften(logits: &DenseMatrix, temperature: f32) -> DenseMatrix {
    assert!(temperature > 0.0, "temperature must be positive");
    let mut out = logits.clone();
    let c = out.cols();
    for row in out.as_mut_slice().chunks_mut(c) {
        for v in row.iter_mut() {
            *v /= temperature;
        }
        softmax_slice(row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hard_ce_is_minimized_by_correct_confident_logits() {
        let good = DenseMatrix::from_vec(1, 3, vec![10.0, -5.0, -5.0]);
        let bad = DenseMatrix::from_vec(1, 3, vec![-5.0, 10.0, -5.0]);
        let (lg, _) = softmax_cross_entropy(&good, &[0]);
        let (lb, _) = softmax_cross_entropy(&bad, &[0]);
        assert!(lg < 0.01);
        assert!(lb > 5.0);
    }

    #[test]
    fn hard_ce_gradient_sums_to_zero_per_row() {
        let logits = DenseMatrix::from_vec(2, 3, vec![0.1, 0.5, -0.3, 1.0, 1.0, 1.0]);
        let (_, g) = softmax_cross_entropy(&logits, &[2, 0]);
        for r in 0..2 {
            let s: f32 = g.row(r).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn hard_ce_gradient_matches_finite_difference() {
        let logits = DenseMatrix::from_vec(1, 3, vec![0.2, -0.4, 0.9]);
        let labels = [1u32];
        let (_, g) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3;
        for j in 0..3 {
            let mut lp = logits.clone();
            lp.set(0, j, logits.get(0, j) + eps);
            let mut lm = logits.clone();
            lm.set(0, j, logits.get(0, j) - eps);
            let (fp, _) = softmax_cross_entropy(&lp, &labels);
            let (fm, _) = softmax_cross_entropy(&lm, &labels);
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - g.get(0, j)).abs() < 1e-3,
                "j={j}: {numeric} vs {}",
                g.get(0, j)
            );
        }
    }

    #[test]
    fn soft_ce_with_onehot_matches_hard_ce() {
        let logits = DenseMatrix::from_vec(2, 3, vec![0.3, -0.2, 0.8, 1.2, 0.0, -1.0]);
        let onehot = DenseMatrix::from_vec(2, 3, vec![0.0, 0.0, 1.0, 1.0, 0.0, 0.0]);
        let (lh, gh) = softmax_cross_entropy(&logits, &[2, 0]);
        let (ls, gs) = soft_cross_entropy(&logits, &onehot);
        assert!((lh - ls).abs() < 1e-5);
        for (a, b) in gh.as_slice().iter().zip(gs.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn distillation_zero_when_student_equals_teacher() {
        let z = DenseMatrix::from_vec(2, 3, vec![0.5, -0.5, 0.1, 2.0, 1.0, 0.0]);
        let (_, g) = distillation_loss(&z, &z, 2.0);
        // Gradient vanishes when distributions coincide (loss is at entropy
        // floor, not zero).
        assert!(g.as_slice().iter().all(|v| v.abs() < 1e-6));
    }

    #[test]
    fn distillation_gradient_matches_finite_difference() {
        let zs = DenseMatrix::from_vec(1, 3, vec![0.2, 0.7, -0.1]);
        let zt = DenseMatrix::from_vec(1, 3, vec![1.0, -1.0, 0.3]);
        let t = 1.7;
        let (_, g) = distillation_loss(&zs, &zt, t);
        let eps = 1e-3;
        for j in 0..3 {
            let mut p = zs.clone();
            p.set(0, j, zs.get(0, j) + eps);
            let mut m = zs.clone();
            m.set(0, j, zs.get(0, j) - eps);
            let (fp, _) = distillation_loss(&p, &zt, t);
            let (fm, _) = distillation_loss(&m, &zt, t);
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - g.get(0, j)).abs() < 1e-3,
                "j={j}: {numeric} vs {}",
                g.get(0, j)
            );
        }
    }

    #[test]
    fn higher_temperature_softens_targets() {
        let z = DenseMatrix::from_vec(1, 2, vec![2.0, 0.0]);
        let sharp = soften(&z, 1.0);
        let soft = soften(&z, 5.0);
        assert!(sharp.get(0, 0) > soft.get(0, 0));
        assert!((soft.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "one label per row")]
    fn label_count_mismatch_panics() {
        let logits = DenseMatrix::zeros(2, 2);
        let _ = softmax_cross_entropy(&logits, &[0]);
    }
}
