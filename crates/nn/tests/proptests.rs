//! Property-based tests for the neural-network substrate.

use nai_linalg::DenseMatrix;
use nai_nn::adam::{Adam, AdamState};
use nai_nn::loss::{distillation_loss, soft_cross_entropy, soften, softmax_cross_entropy};
use nai_nn::mlp::{Mlp, MlpConfig};
use nai_nn::quant::QuantizedLinear;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CE loss is non-negative and its gradient rows sum to zero.
    #[test]
    fn ce_loss_properties(
        logits in proptest::collection::vec(-8.0f32..8.0, 4 * 5),
        labels in proptest::collection::vec(0u32..5, 4),
    ) {
        let logits = DenseMatrix::from_vec(4, 5, logits);
        let (loss, grad) = softmax_cross_entropy(&logits, &labels);
        prop_assert!(loss >= 0.0);
        for r in 0..4 {
            let s: f32 = grad.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
    }

    /// KD gradient vanishes iff student and teacher distributions agree;
    /// tempered softening always yields valid distributions.
    #[test]
    fn distillation_properties(
        zs in proptest::collection::vec(-4.0f32..4.0, 3 * 4),
        zt in proptest::collection::vec(-4.0f32..4.0, 3 * 4),
        t in 0.5f32..4.0,
    ) {
        let zs = DenseMatrix::from_vec(3, 4, zs);
        let zt = DenseMatrix::from_vec(3, 4, zt);
        let (loss, _) = distillation_loss(&zs, &zt, t);
        prop_assert!(loss.is_finite() && loss >= 0.0);
        let p = soften(&zt, t);
        for r in 0..3 {
            let s: f32 = p.row(r).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
        }
        // Self-distillation gradient is ~0.
        let (_, g) = distillation_loss(&zt, &zt, t);
        prop_assert!(g.as_slice().iter().all(|v| v.abs() < 1e-5));
    }

    /// Soft CE against a one-hot target equals hard CE.
    #[test]
    fn soft_ce_consistency(
        logits in proptest::collection::vec(-6.0f32..6.0, 2 * 3),
        labels in proptest::collection::vec(0u32..3, 2),
    ) {
        let logits = DenseMatrix::from_vec(2, 3, logits);
        let mut onehot = DenseMatrix::zeros(2, 3);
        for (r, &y) in labels.iter().enumerate() {
            onehot.set(r, y as usize, 1.0);
        }
        let (lh, gh) = softmax_cross_entropy(&logits, &labels);
        let (ls, gs) = soft_cross_entropy(&logits, &onehot);
        prop_assert!((lh - ls).abs() < 1e-4);
        for (a, b) in gh.as_slice().iter().zip(gs.as_slice()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    /// Adam converges on arbitrary strongly-convex quadratics.
    #[test]
    fn adam_converges_on_quadratics(
        target in proptest::collection::vec(-5.0f32..5.0, 4),
        curvature in 0.5f32..4.0,
    ) {
        let opt = Adam::new(0.1, 0.0);
        let mut state = AdamState::new(4);
        let mut x = vec![0.0f32; 4];
        for _ in 0..600 {
            let grad: Vec<f32> = x.iter().zip(target.iter())
                .map(|(a, t)| 2.0 * curvature * (a - t)).collect();
            state.update(&opt, &mut x, &grad);
        }
        for (a, t) in x.iter().zip(target.iter()) {
            prop_assert!((a - t).abs() < 0.05, "x {} target {}", a, t);
        }
    }

    /// Quantized linear output stays within a few percent of f32.
    #[test]
    fn quantization_error_bounded(
        seed in 0u64..1000,
        rows in 1usize..8,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = nai_linalg::init::glorot_uniform(10, 6, &mut rng);
        let bias = vec![0.05f32; 6];
        let q = QuantizedLinear::from_weights(&w, &bias);
        let x = nai_linalg::init::gaussian(rows, 10, 1.0, &mut rng);
        let got = q.forward(&x);
        let mut want = x.matmul(&w).unwrap();
        want.add_bias_row(&bias);
        let scale = want.max_abs().max(0.1);
        for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
            prop_assert!((a - b).abs() / scale < 0.08, "{} vs {}", a, b);
        }
    }

    /// MLP inference is deterministic and dropout-free.
    #[test]
    fn mlp_inference_deterministic(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(&MlpConfig::one_hidden(5, 8, 3, 0.5), &mut rng);
        let x = nai_linalg::init::gaussian(4, 5, 1.0, &mut rng);
        let a = mlp.forward(&x);
        let b = mlp.forward(&x);
        prop_assert_eq!(a.as_slice(), b.as_slice());
    }
}
