//! Offline stand-in for the `proptest` property-testing crate.
//!
//! Implements the subset the workspace's `*/tests/proptests.rs` suites
//! use: the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `boxed`, range and tuple strategies, [`collection::vec`], [`any`],
//! [`Just`], [`prop_oneof!`], [`sample::Index`], the [`proptest!`] test
//! macro, and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted for an offline
//! test dependency:
//!
//! * **No shrinking.** A failing case reports its case number and the
//!   deterministic per-test seed, which is enough to re-run it, but the
//!   inputs are not minimized.
//! * **Deterministic by default.** Each test function derives its RNG
//!   stream from its source location, so runs are reproducible without a
//!   persistence file. Set `PROPTEST_CASES` to override the case count.

use std::fmt;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator driving strategy sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "TestRng::below(0)");
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen_fn: std::rc::Rc::new(move |rng| self.generate(rng)),
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<V> {
    gen_fn: std::rc::Rc<dyn Fn(&mut TestRng) -> V>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (self.gen_fn)(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (built by [`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    // `$unit` draws uniformly from [0, 1) with the type's own mantissa
    // width, so scaling by the span cannot round up to the exclusive
    // upper bound (casting a wider unit value down could).
    ($($t:ty => $unit:expr),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u: $t = $unit(rng);
                let v = self.start + u * (self.end - self.start);
                // Guard the half-open contract against rounding in the
                // scale-and-shift itself.
                if v >= self.end {
                    self.end.next_down()
                } else {
                    v
                }
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let u: $t = $unit(rng);
                (lo + u * (hi - lo)).min(hi)
            }
        }
    )*};
}
impl_float_range_strategy!(
    f32 => |rng: &mut TestRng| (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32),
    f64 => |rng: &mut TestRng| rng.unit_f64()
);

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($S:ident),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($S,)+) = self;
                ($($S.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------------
// Arbitrary / any
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, roughly symmetric values; real proptest also biases
        // toward "ordinary" floats rather than raw bit patterns.
        (rng.unit_f64() as f32 - 0.5) * 2.0e6
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.unit_f64() - 0.5) * 2.0e12
    }
}

/// Strategy returned by [`any`].
pub struct ArbitraryStrategy<A> {
    _marker: std::marker::PhantomData<A>,
}

impl<A: Arbitrary> Strategy for ArbitraryStrategy<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// The canonical strategy for `A`: `any::<u64>()`, `any::<bool>()`, …
pub fn any<A: Arbitrary>() -> ArbitraryStrategy<A> {
    ArbitraryStrategy {
        _marker: std::marker::PhantomData,
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec()`]: an exact length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn from `size` (an exact `usize` or a range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling helpers (`prop::sample`).
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection whose length is only known at use time.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Maps this abstract index into `0..len`. Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// A failed property: carries the `prop_assert!` message.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Runs `body` for each case with a location-seeded deterministic RNG.
/// Called by the [`proptest!`] expansion; not for direct use.
pub fn run_cases<F>(config: &ProptestConfig, file: &str, line: u32, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    // Stable seed per test site: FNV-1a over file:line.
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in file.bytes().chain(line.to_le_bytes()) {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    for case in 0..config.cases {
        let mut rng = TestRng::from_seed(seed ^ (case as u64).wrapping_mul(0x9E37_79B9));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        match result {
            Ok(Ok(())) => {}
            Ok(Err(e)) => panic!(
                "proptest property failed at {file}:{line}, case {case}/{} (seed {seed:#x}): {e}",
                config.cases
            ),
            Err(payload) => {
                eprintln!(
                    "proptest property panicked at {file}:{line}, case {case}/{} (seed {seed:#x})",
                    config.cases
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config) $($rest)*);
    };
    (@run ($config:expr)
        $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                $crate::run_cases(&__config, file!(), line!(), |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strategy), __rng);)*
                    $body
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case
/// (with an optional formatted message) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// `prop_assert!` for inequality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// One-stop imports mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };

    /// Alias module mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -2i64..=2, f in -1.0f32..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2..=2).contains(&y));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_follow_size_range(v in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn flat_map_threads_dependent_values(
            (n, v) in (1usize..8).prop_flat_map(|n| {
                (Just(n), crate::collection::vec(0..n as u32, n))
            })
        ) {
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&e| (e as usize) < n));
        }

        #[test]
        fn oneof_hits_every_arm_eventually(k in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1..=3).contains(&k));
        }

        #[test]
        fn index_maps_into_len(ix in any::<prop::sample::Index>()) {
            let pos = ix.index(17);
            prop_assert!(pos < 17);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_attr_is_accepted(b in any::<bool>()) {
            prop_assert!(matches!(b, true | false));
        }
    }

    #[test]
    fn failing_property_panics_with_case_info() {
        let result = std::panic::catch_unwind(|| {
            crate::run_cases(&ProptestConfig::with_cases(4), "virtual.rs", 1, |_rng| {
                Err(crate::TestCaseError::fail("boom"))
            });
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("boom") && msg.contains("case 0"), "{msg}");
    }
}
