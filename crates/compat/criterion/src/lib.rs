//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the handful of entry points `crates/bench/benches/kernels.rs`
//! uses — [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — with a simple wall-clock measurement
//! loop instead of criterion's statistical machinery. Each benchmark
//! runs a warm-up, then `sample_size` timed samples, and prints the
//! mean / min / max per-iteration time.

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Hint for how `iter_batched` amortizes setup cost. The stub reruns
/// setup per iteration for every variant (setup time is excluded from
/// measurement either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    /// Collected per-iteration durations, one entry per sample.
    results: Vec<Duration>,
}

impl Bencher {
    fn new(warm_up: Duration, measurement: Duration, samples: usize) -> Self {
        Bencher {
            warm_up,
            measurement,
            samples,
            results: Vec::new(),
        }
    }

    /// Times `routine`, running it repeatedly until the warm-up and
    /// measurement budgets are spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until the budget elapses (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let per_sample = self.measurement.max(Duration::from_millis(1)) / self.samples as u32;
        for _ in 0..self.samples {
            let mut iters = 0u64;
            let start = Instant::now();
            loop {
                black_box(routine());
                iters += 1;
                if start.elapsed() >= per_sample {
                    break;
                }
            }
            self.results.push(start.elapsed() / iters as u32);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        loop {
            let input = setup();
            black_box(routine(input));
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.results.push(start.elapsed());
        }
    }
}

/// Benchmark driver: configuration plus a result printer.
pub struct Criterion {
    sample_size: usize,
    measurement: Duration,
    warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement: Duration::from_secs(2),
            warm_up: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Runs one named benchmark and prints its timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.warm_up, self.measurement, self.sample_size);
        f(&mut b);
        let fmt = |d: Duration| -> String {
            let ns = d.as_nanos();
            if ns >= 1_000_000_000 {
                format!("{:.3} s", d.as_secs_f64())
            } else if ns >= 1_000_000 {
                format!("{:.3} ms", ns as f64 / 1e6)
            } else if ns >= 1_000 {
                format!("{:.3} µs", ns as f64 / 1e3)
            } else {
                format!("{ns} ns")
            }
        };
        if b.results.is_empty() {
            println!("{name:<40} (no samples)");
        } else {
            let total: Duration = b.results.iter().sum();
            let mean = total / b.results.len() as u32;
            let min = *b.results.iter().min().unwrap();
            let max = *b.results.iter().max().unwrap();
            println!(
                "{name:<40} mean {:>12}   min {:>12}   max {:>12}   ({} samples)",
                fmt(mean),
                fmt(min),
                fmt(max),
                b.results.len()
            );
        }
        self
    }
}

/// Declares a benchmark group: a function that builds the configured
/// [`Criterion`] and runs each target against it.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(1));
        let mut ran = 0u64;
        c.bench_function("noop", |b| b.iter(|| ran += 1));
        assert!(ran >= 3);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default()
            .sample_size(4)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
