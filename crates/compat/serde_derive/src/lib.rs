//! Offline stand-in for `serde_derive`: no-op `Serialize` / `Deserialize`
//! derive macros.
//!
//! The workspace never serializes through serde (the binary codecs in
//! `nai-graph::io` and `nai-core::checkpoint` are hand-rolled); the
//! derives exist only so config/metrics structs stay annotated for a
//! future online build against real serde. Each macro expands to an
//! empty token stream.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
