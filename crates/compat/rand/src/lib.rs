//! Offline stand-in for the `rand` crate (0.8-era API surface).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, dependency-free implementation of exactly the API
//! the NAI crates use:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256** generator seeded via
//!   SplitMix64 (`seed_from_u64`) or a 32-byte seed (`from_seed`).
//! * [`Rng`] — `gen`, `gen_range` (half-open and inclusive ranges over
//!   the common integer and float types), `gen_bool`.
//! * [`SeedableRng`] — `from_seed` / `seed_from_u64`.
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle` and `choose`.
//!
//! The streams are **not** bit-compatible with the real `rand` crate;
//! everything in this repository that depends on randomness treats the
//! RNG as an arbitrary-but-deterministic source, never as a fixed
//! reference stream.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from the generator's "standard" distribution:
/// full range for integers and booleans, `[0, 1)` for floats.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high-quality mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                let v = self.start + u * (self.end - self.start);
                // u < 1, but the scale-and-shift can still round up to
                // the exclusive bound for narrow ranges; keep the
                // half-open contract exact.
                if v >= self.end { self.end.next_down() } else { v }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                (lo + u * (hi - lo)).min(hi)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`. Panics on an empty range.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Fixed-width seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Not bit-compatible with `rand`'s ChaCha-based `StdRng`; see the
    /// crate docs.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64_pub()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64_pub()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64_pub()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f32 = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u: f32 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn narrow_float_range_respects_exclusive_bound() {
        // The span here is far below one ULP of the bound, so unguarded
        // scale-and-shift would round to exactly 2.0.
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100_000 {
            let v: f32 = rng.gen_range(1.999_999_9f32..2.0);
            assert!(v < 2.0, "{v}");
        }
    }

    #[test]
    fn float_range_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(2);
        let mean: f64 = (0..20_000).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / 20_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
