//! Self-tests for the model checker: the memory model must both *find* real
//! interleaving bugs (staleness, lost publication, torn check-then-act,
//! deadlock) and *pass* correct protocols exhaustively, and every failure it
//! reports must replay deterministically from its recorded schedule.

use loom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use loom::sync::{mpsc, Arc, Condvar, Mutex};
use loom::{Builder, Failure, Stats};
use std::collections::HashSet;
use std::sync::Mutex as StdMutex;

fn dfs(bound: usize) -> Builder {
    Builder {
        preemption_bound: Some(bound),
        ..Builder::new()
    }
}

#[test]
fn mutex_counter_is_exact() {
    let stats: Stats = dfs(2)
        .check_quiet(|| {
            let n = Arc::new(Mutex::new(0usize));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let n = n.clone();
                handles.push(loom::thread::spawn(move || {
                    *n.lock().unwrap() += 1;
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*n.lock().unwrap(), 2);
        })
        .expect("mutex counter must hold under every schedule");
    assert!(stats.exhausted, "bounded DFS should finish the tree");
    assert!(stats.iterations > 1, "more than one schedule must exist");
}

#[test]
fn rmw_is_atomic_even_relaxed() {
    dfs(2).check(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = n.clone();
        let h = loom::thread::spawn(move || {
            n2.fetch_add(1, Ordering::Relaxed);
        });
        n.fetch_add(1, Ordering::Relaxed);
        h.join().unwrap();
        assert_eq!(n.load(Ordering::Relaxed), 2);
    });
}

/// A non-atomic read-modify-write (load; add; store) over Relaxed atomics
/// loses updates under some interleaving — the checker must find it, and the
/// recorded schedule must replay to the same failure.
#[test]
fn torn_increment_found_and_replays() {
    let body = || {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = n.clone();
        let h = loom::thread::spawn(move || {
            let v = n2.load(Ordering::Relaxed);
            n2.store(v + 1, Ordering::Relaxed);
        });
        let v = n.load(Ordering::Relaxed);
        n.store(v + 1, Ordering::Relaxed);
        h.join().unwrap();
        assert_eq!(n.load(Ordering::Relaxed), 2, "lost update");
    };
    let failure: Failure = dfs(2)
        .check_quiet(body)
        .expect_err("DFS must find the lost update");
    assert!(failure.message.contains("lost update"), "{failure}");

    let replayed = Builder {
        replay: Some(failure.schedule.clone()),
        ..Builder::new()
    }
    .check_quiet(body)
    .expect_err("replaying the failing schedule must fail again");
    assert!(replayed.message.contains("lost update"));
    assert_eq!(replayed.iteration, 1, "replay is a single execution");
}

/// Seeded random exploration also finds the bug, without DFS, and its
/// schedule replays identically — the `--seed` workflow documented in
/// ARCHITECTURE.md.
#[test]
fn seeded_exploration_finds_and_replays() {
    let body = || {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = n.clone();
        let h = loom::thread::spawn(move || {
            let v = n2.load(Ordering::Relaxed);
            n2.store(v + 1, Ordering::Relaxed);
        });
        let v = n.load(Ordering::Relaxed);
        n.store(v + 1, Ordering::Relaxed);
        h.join().unwrap();
        assert_eq!(n.load(Ordering::Relaxed), 2, "lost update");
    };
    let failure = Builder {
        seed: Some(0xA11CE),
        preemption_bound: None,
        ..Builder::new()
    }
    .check_quiet(body)
    .expect_err("seeded mode must find the lost update");
    let replayed = Builder {
        replay: Some(failure.schedule.clone()),
        ..Builder::new()
    }
    .check_quiet(body)
    .expect_err("seeded schedule must replay");
    assert!(replayed.message.contains("lost update"));
}

/// Release/acquire publication: if the reader acquires the flag, the data
/// write must be visible. Must hold under every schedule.
#[test]
fn release_acquire_publishes() {
    dfs(2).check(|| {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d, f) = (data.clone(), flag.clone());
        let h = loom::thread::spawn(move || {
            d.store(42, Ordering::Relaxed);
            f.store(true, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) {
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        h.join().unwrap();
    });
}

/// Same shape with a Relaxed flag: the acquire edge is gone, so the checker
/// must exhibit an execution where the flag is up but the data write is not
/// yet visible — i.e. Relaxed loads really do return stale values.
#[test]
fn relaxed_flag_loses_publication() {
    let failure = dfs(2)
        .check_quiet(|| {
            let data = Arc::new(AtomicUsize::new(0));
            let flag = Arc::new(AtomicBool::new(false));
            let (d, f) = (data.clone(), flag.clone());
            let h = loom::thread::spawn(move || {
                d.store(42, Ordering::Relaxed);
                f.store(true, Ordering::Relaxed);
            });
            if flag.load(Ordering::Relaxed) {
                assert_eq!(data.load(Ordering::Relaxed), 42, "stale data");
            }
            h.join().unwrap();
        })
        .expect_err("relaxed publication must be observably broken");
    assert!(failure.message.contains("stale data"), "{failure}");
}

/// Relaxed loads are allowed to be stale but never invented: across the
/// whole exploration a reader sees both the old and the new value, and
/// nothing else.
#[test]
fn relaxed_staleness_is_explored_both_ways() {
    let seen = std::sync::Arc::new(StdMutex::new(HashSet::new()));
    let seen2 = seen.clone();
    dfs(2).check(move || {
        let x = Arc::new(AtomicUsize::new(0));
        let x2 = x.clone();
        let h = loom::thread::spawn(move || {
            x2.store(7, Ordering::Relaxed);
        });
        let v = x.load(Ordering::Relaxed);
        h.join().unwrap();
        seen2.lock().unwrap().insert(v);
    });
    let seen = seen.lock().unwrap();
    assert_eq!(
        *seen,
        HashSet::from([0, 7]),
        "exploration must cover both the stale and the fresh read"
    );
}

/// Classic AB-BA lock ordering: the checker must report a deadlock with the
/// blocked thread ids rather than hanging.
#[test]
fn ab_ba_deadlock_detected() {
    let failure = dfs(2)
        .check_quiet(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (a.clone(), b.clone());
            let h = loom::thread::spawn(move || {
                let _ga = a2.lock().unwrap();
                let _gb = b2.lock().unwrap();
            });
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap();
            drop((_gb, _ga));
            h.join().unwrap();
        })
        .expect_err("AB-BA ordering must deadlock under some schedule");
    assert!(failure.message.contains("deadlock"), "{failure}");
}

#[test]
fn channel_is_fifo_and_reports_disconnect() {
    dfs(2).check(|| {
        let (tx, rx) = mpsc::channel();
        let h = loom::thread::spawn(move || {
            tx.send(1).unwrap();
            tx.send(2).unwrap();
        });
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        h.join().unwrap();
        assert!(rx.recv().is_err(), "all senders gone => disconnect");
    });
}

#[test]
fn sync_channel_blocks_at_capacity() {
    dfs(2).check(|| {
        let (tx, rx) = mpsc::sync_channel(1);
        let h = loom::thread::spawn(move || {
            tx.send(1).unwrap();
            // Second send must wait for the receiver to drain slot one.
            tx.send(2).unwrap();
        });
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        h.join().unwrap();
    });
}

/// Condvar handoff with the state checked under the mutex: no lost wakeup,
/// terminates under every schedule (a lost wakeup would surface as a
/// detected deadlock).
#[test]
fn condvar_handoff_terminates() {
    dfs(2).check(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let h = loom::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock().unwrap() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock().unwrap();
        while !*ready {
            ready = cv.wait(ready).unwrap();
        }
        drop(ready);
        h.join().unwrap();
    });
}

/// A panic while holding the lock poisons it; `PoisonError::into_inner`
/// still reaches the data. (The panic is caught inside the owning thread,
/// as the serve worker loop does.)
#[test]
fn mutex_poisoning_is_modeled() {
    dfs(2).check(|| {
        let m = Arc::new(Mutex::new(5usize));
        let m2 = m.clone();
        let h = loom::thread::spawn(move || {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _g = m2.lock().unwrap();
                panic!("die holding the lock");
            }));
        });
        h.join().unwrap();
        assert!(m.is_poisoned());
        let v = m.lock().unwrap_or_else(|p| p.into_inner());
        assert_eq!(*v, 5, "poison must not lose the data");
    });
}
