//! Ordering-aware atomics. Each atomic keeps its full modification order
//! (store history). A load may legally observe any store in the window
//! between its *visibility floor* — the newest store that happens-before the
//! loading thread, or anything older the thread has already observed — and
//! the newest store. When more than one store is visible the selection is a
//! recorded choice point, so the explorer drives `Relaxed` loads through
//! every legal stale value. Acquire loads join the observed store's release
//! clock; Relaxed loads do not, so `Relaxed` publication genuinely fails to
//! establish happens-before in the model, exactly like on real hardware.
//!
//! Simplifications vs. C11 (documented, deliberate): RMWs always read the
//! newest store (atomicity of the read-modify-write is what the serve
//! protocols rely on); SeqCst is modeled as Acquire/Release plus a global
//! SC clock that every SeqCst access joins, which is sound (never invents
//! impossible executions) though it may miss some exotic SC-only
//! interleavings.

use crate::rt::{self, VClock};
use std::sync::Mutex;

pub use std::sync::atomic::Ordering;

struct Store {
    val: u64,
    /// Clock of the storing thread at the store: used for the visibility
    /// floor ("has this store happened-before the reader?").
    hb: VClock,
    /// Release clock carried to acquire loads (empty for Relaxed stores).
    sync: VClock,
}

struct Inner {
    stores: Vec<Store>,
    /// Per-thread coherence floor: index of the oldest store each thread may
    /// still observe (monotone; reading or writing advances it).
    floor: Vec<usize>,
}

impl Inner {
    fn new(val: u64) -> Self {
        Inner {
            stores: vec![Store {
                val,
                hb: VClock::default(),
                sync: VClock::default(),
            }],
            floor: Vec::new(),
        }
    }

    fn floor_for(&self, tid: usize) -> usize {
        self.floor.get(tid).copied().unwrap_or(0)
    }

    fn set_floor(&mut self, tid: usize, idx: usize) {
        if self.floor.len() <= tid {
            self.floor.resize(tid + 1, 0);
        }
        if idx > self.floor[tid] {
            self.floor[tid] = idx;
        }
    }
}

fn is_acquire(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_seqcst(o: Ordering) -> bool {
    matches!(o, Ordering::SeqCst)
}

/// Untyped core shared by the three public atomic types.
struct Atomic {
    inner: Mutex<Inner>,
}

impl Atomic {
    fn new(val: u64) -> Self {
        Atomic {
            inner: Mutex::new(Inner::new(val)),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn load(&self, order: Ordering) -> u64 {
        rt::schedule_point();
        rt::with_rt(|rt, tid| {
            rt.with_state(|view| {
                let mut inner = self.lock();
                if is_seqcst(order) {
                    let sc = view.sc_clock().clone();
                    view.clock(tid).join(&sc);
                }
                let my = view.clock(tid).clone();
                let mut floor = inner.floor_for(tid);
                for (i, s) in inner.stores.iter().enumerate() {
                    if i > floor && s.hb.le(&my) {
                        floor = i;
                    }
                }
                let n = inner.stores.len() - floor;
                let idx = floor + view.choose(n);
                inner.set_floor(tid, idx);
                if is_acquire(order) {
                    let sync = inner.stores[idx].sync.clone();
                    view.clock(tid).join(&sync);
                }
                inner.stores[idx].val
            })
        })
    }

    fn store(&self, val: u64, order: Ordering) {
        rt::schedule_point();
        rt::with_rt(|rt, tid| {
            rt.with_state(|view| {
                let mut inner = self.lock();
                view.clock(tid).bump(tid);
                let hb = view.clock(tid).clone();
                let sync = if is_release(order) {
                    hb.clone()
                } else {
                    VClock::default()
                };
                if is_seqcst(order) {
                    view.sc_clock().join(&hb);
                }
                inner.stores.push(Store { val, hb, sync });
                let idx = inner.stores.len() - 1;
                inner.set_floor(tid, idx);
            })
        })
    }

    /// Atomic read-modify-write: reads the newest store, writes `f(old)`.
    fn rmw(&self, order: Ordering, f: impl FnOnce(u64) -> u64) -> u64 {
        rt::schedule_point();
        rt::with_rt(|rt, tid| {
            rt.with_state(|view| {
                let mut inner = self.lock();
                if is_seqcst(order) {
                    let sc = view.sc_clock().clone();
                    view.clock(tid).join(&sc);
                }
                let last = inner.stores.len() - 1;
                let old = inner.stores[last].val;
                if is_acquire(order) {
                    let sync = inner.stores[last].sync.clone();
                    view.clock(tid).join(&sync);
                }
                view.clock(tid).bump(tid);
                let hb = view.clock(tid).clone();
                // RMWs continue the release sequence of the store they
                // replace: carry its release clock forward.
                let mut sync = inner.stores[last].sync.clone();
                if is_release(order) {
                    sync.join(&hb);
                }
                if is_seqcst(order) {
                    view.sc_clock().join(&hb);
                }
                inner.stores.push(Store {
                    val: f(old),
                    hb,
                    sync,
                });
                let idx = inner.stores.len() - 1;
                inner.set_floor(tid, idx);
                old
            })
        })
    }

    fn fetch_update(
        &self,
        set_order: Ordering,
        fetch_order: Ordering,
        mut f: impl FnMut(u64) -> Option<u64>,
    ) -> Result<u64, u64> {
        rt::schedule_point();
        rt::with_rt(|rt, tid| {
            rt.with_state(|view| {
                let mut inner = self.lock();
                let last = inner.stores.len() - 1;
                let old = inner.stores[last].val;
                match f(old) {
                    Some(new) => {
                        if is_seqcst(set_order) {
                            let sc = view.sc_clock().clone();
                            view.clock(tid).join(&sc);
                        }
                        if is_acquire(set_order) || is_acquire(fetch_order) {
                            let sync = inner.stores[last].sync.clone();
                            view.clock(tid).join(&sync);
                        }
                        view.clock(tid).bump(tid);
                        let hb = view.clock(tid).clone();
                        let mut sync = inner.stores[last].sync.clone();
                        if is_release(set_order) {
                            sync.join(&hb);
                        }
                        if is_seqcst(set_order) {
                            view.sc_clock().join(&hb);
                        }
                        inner.stores.push(Store { val: new, hb, sync });
                        let idx = inner.stores.len() - 1;
                        inner.set_floor(tid, idx);
                        Ok(old)
                    }
                    None => {
                        if is_seqcst(fetch_order) {
                            let sc = view.sc_clock().clone();
                            view.clock(tid).join(&sc);
                        }
                        if is_acquire(fetch_order) {
                            let sync = inner.stores[last].sync.clone();
                            view.clock(tid).join(&sync);
                        }
                        inner.set_floor(tid, last);
                        Err(old)
                    }
                }
            })
        })
    }
}

macro_rules! int_atomic {
    ($name:ident, $ty:ty) => {
        pub struct $name {
            core: Atomic,
        }

        impl $name {
            pub fn new(val: $ty) -> Self {
                $name {
                    core: Atomic::new(val as u64),
                }
            }

            pub fn load(&self, order: Ordering) -> $ty {
                self.core.load(order) as $ty
            }

            pub fn store(&self, val: $ty, order: Ordering) {
                self.core.store(val as u64, order)
            }

            pub fn swap(&self, val: $ty, order: Ordering) -> $ty {
                self.core.rmw(order, |_| val as u64) as $ty
            }

            pub fn fetch_add(&self, val: $ty, order: Ordering) -> $ty {
                self.core
                    .rmw(order, |old| (old as $ty).wrapping_add(val) as u64) as $ty
            }

            pub fn fetch_sub(&self, val: $ty, order: Ordering) -> $ty {
                self.core
                    .rmw(order, |old| (old as $ty).wrapping_sub(val) as u64) as $ty
            }

            pub fn fetch_or(&self, val: $ty, order: Ordering) -> $ty {
                self.core.rmw(order, |old| (old as $ty | val) as u64) as $ty
            }

            pub fn fetch_and(&self, val: $ty, order: Ordering) -> $ty {
                self.core.rmw(order, |old| (old as $ty & val) as u64) as $ty
            }

            pub fn fetch_max(&self, val: $ty, order: Ordering) -> $ty {
                self.core.rmw(order, |old| (old as $ty).max(val) as u64) as $ty
            }

            pub fn fetch_update(
                &self,
                set_order: Ordering,
                fetch_order: Ordering,
                mut f: impl FnMut($ty) -> Option<$ty>,
            ) -> Result<$ty, $ty> {
                self.core
                    .fetch_update(set_order, fetch_order, |old| {
                        f(old as $ty).map(|v| v as u64)
                    })
                    .map(|v| v as $ty)
                    .map_err(|v| v as $ty)
            }

            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.core
                    .fetch_update(success, failure, |old| {
                        (old as $ty == current).then_some(new as u64)
                    })
                    .map(|v| v as $ty)
                    .map_err(|v| v as $ty)
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(0)
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "(model)"))
            }
        }
    };
}

int_atomic!(AtomicU64, u64);
int_atomic!(AtomicUsize, usize);
int_atomic!(AtomicU32, u32);

pub struct AtomicBool {
    core: Atomic,
}

impl AtomicBool {
    pub fn new(val: bool) -> Self {
        AtomicBool {
            core: Atomic::new(val as u64),
        }
    }

    pub fn load(&self, order: Ordering) -> bool {
        self.core.load(order) != 0
    }

    pub fn store(&self, val: bool, order: Ordering) {
        self.core.store(val as u64, order)
    }

    pub fn swap(&self, val: bool, order: Ordering) -> bool {
        self.core.rmw(order, |_| val as u64) != 0
    }

    pub fn fetch_or(&self, val: bool, order: Ordering) -> bool {
        self.core.rmw(order, |old| old | val as u64) != 0
    }

    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        self.core
            .fetch_update(success, failure, |old| {
                ((old != 0) == current).then_some(new as u64)
            })
            .map(|v| v != 0)
            .map_err(|v| v != 0)
    }
}

impl Default for AtomicBool {
    fn default() -> Self {
        Self::new(false)
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AtomicBool(model)")
    }
}
