//! Model threads: each `loom::thread::spawn` creates a real OS thread, but
//! it only runs while holding the scheduler token, so spawning is a
//! scheduling choice like any other.

use crate::rt;
use std::marker::PhantomData;
use std::time::Duration;

pub struct JoinHandle<T> {
    tid: usize,
    _p: PhantomData<T>,
}

impl<T: 'static> JoinHandle<T> {
    pub fn join(self) -> std::thread::Result<T> {
        rt::schedule_point();
        rt::with_rt(|rt, tid| match rt.join_thread(tid, self.tid) {
            Ok(boxed) => Ok(*boxed.downcast::<T>().expect("join result type mismatch")),
            Err(p) => Err(p),
        })
    }
}

#[derive(Default)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    pub fn new() -> Self {
        Builder::default()
    }

    pub fn name(mut self, name: String) -> Self {
        self.name = Some(name);
        self
    }

    pub fn stack_size(self, _bytes: usize) -> Self {
        self
    }

    pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        Ok(spawn_named(f, self.name))
    }
}

pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    spawn_named(f, None)
}

fn spawn_named<F, T>(f: F, name: Option<String>) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    rt::schedule_point();
    rt::with_rt(|rt, tid| {
        let child = rt.register_thread(Some(tid), name.clone());
        let rt2 = rt.clone();
        let body: Box<dyn FnOnce() -> Box<dyn std::any::Any + Send> + Send> =
            Box::new(move || Box::new(f()) as Box<dyn std::any::Any + Send>);
        let h = std::thread::Builder::new()
            .name(name.unwrap_or_else(|| format!("loom-{child}")))
            .spawn(move || rt2.thread_main(child, body))
            .expect("spawn loom thread");
        rt.add_handle(h);
        JoinHandle {
            tid: child,
            _p: PhantomData,
        }
    })
}

/// Scheduling point only; the model has no time.
pub fn sleep(_dur: Duration) {
    rt::schedule_point();
}

pub fn yield_now() {
    rt::schedule_point();
}

pub fn panicking() -> bool {
    std::thread::panicking()
}
