//! Execution runtime: real OS threads serialized by a token-passing
//! scheduler, with every source of nondeterminism (which thread runs next,
//! which visible store a relaxed load returns, whether a timed wait times
//! out) reified as a recorded *choice*. A full execution is therefore a
//! finite choice sequence, which the driver in `lib.rs` enumerates by DFS
//! backtracking (bounded preemptions), samples with a seeded RNG, or
//! replays verbatim.
//!
//! Only one logical thread runs at a time, so shim-internal state can live
//! behind uncontended `std::sync::Mutex`es; the scheduler lock is the sole
//! synchronization that matters.

use std::cell::RefCell;
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Panic payload used to tear down logical threads once an execution has
/// failed (or deadlocked). Shim operations re-raise it at every yield point,
/// so user-level `catch_unwind` blocks cannot keep a doomed thread alive
/// past its next synchronization op.
pub(crate) struct Abort;

/// Vector clock: index = logical thread id.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u64>);

impl VClock {
    pub fn join(&mut self, other: &VClock) {
        if other.0.len() > self.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, v) in other.0.iter().enumerate() {
            if *v > self.0[i] {
                self.0[i] = *v;
            }
        }
    }

    /// `self` happens-before-or-equal `other` (pointwise <=).
    pub fn le(&self, other: &VClock) -> bool {
        self.0
            .iter()
            .enumerate()
            .all(|(i, v)| *v <= other.0.get(i).copied().unwrap_or(0))
    }

    pub fn bump(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }
}

pub(crate) struct SplitMix64(pub u64);

impl SplitMix64 {
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    Blocked,
    /// Blocked in a timed wait: eligible for a forced-timeout wake when the
    /// system would otherwise deadlock.
    TimedBlocked,
    Finished,
}

#[derive(Clone, Copy, Debug)]
pub(crate) struct Choice {
    pub taken: usize,
    pub total: usize,
}

type AnyResult = Result<Box<dyn std::any::Any + Send>, Box<dyn std::any::Any + Send>>;

#[derive(Default)]
struct State {
    status: Vec<Status>,
    /// Set when a `TimedBlocked` thread is woken by the deadlock-avoidance
    /// timeout rather than a real notify.
    timed_out: Vec<bool>,
    clocks: Vec<VClock>,
    /// Threads waiting on `JoinHandle::join` of the indexed thread.
    joiners: Vec<Vec<usize>>,
    results: Vec<Option<AnyResult>>,
    names: Vec<Option<String>>,
    /// Token holder. `usize::MAX` once all threads have finished.
    active: usize,
    live: usize,
    /// Choices taken so far in this execution, with branch fan-out.
    schedule: Vec<Choice>,
    /// Prefix of choice indices to force (DFS next-branch / replay).
    forced: Vec<usize>,
    rng: Option<SplitMix64>,
    preemption_bound: Option<usize>,
    preemptions: usize,
    abort: bool,
    failure: Option<String>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Global SeqCst order clock: joined by every SeqCst access.
    sc: VClock,
}

pub(crate) struct Rt {
    state: Mutex<State>,
    cv: Condvar,
}

pub(crate) struct Outcome {
    pub schedule: Vec<Choice>,
    pub failure: Option<String>,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Rt>, usize)>> = const { RefCell::new(None) };
}

/// Run `f` with the current execution context; panics if called outside
/// `loom::model`.
pub(crate) fn with_rt<R>(f: impl FnOnce(&Arc<Rt>, usize) -> R) -> R {
    CURRENT.with(|c| {
        let b = c.borrow();
        let (rt, tid) = b.as_ref().expect("loom primitive used outside loom::model");
        f(rt, *tid)
    })
}

/// Like `with_rt` but a no-op outside a model run (used by Drop impls so
/// shim types can be dropped after an execution is torn down).
pub(crate) fn try_with_rt(f: impl FnOnce(&Arc<Rt>, usize)) {
    CURRENT.with(|c| {
        if let Ok(b) = c.try_borrow() {
            if let Some((rt, tid)) = b.as_ref() {
                f(rt, *tid);
            }
        }
    });
}

/// Scheduling point: explore "which thread runs next" before the caller's
/// operation executes. Every shim op calls this first, so a context switch
/// "after op N" is identical to one "before op N+1" and no post-op yield is
/// needed. No-op while unwinding, so guard Drops during a panic do not
/// create fresh choice points.
pub(crate) fn schedule_point() {
    if std::thread::panicking() {
        return;
    }
    with_rt(|rt, tid| {
        let st = rt.lock();
        rt.yield_token(st, tid, Status::Runnable);
    });
}

/// Record an n-way data choice (e.g. whether a timed wait fires early).
pub(crate) fn choose(total: usize) -> usize {
    if total <= 1 {
        return 0;
    }
    with_rt(|rt, _tid| rt.with_state(|view| view.choose(total)))
}

impl Rt {
    pub(crate) fn new(
        preemption_bound: Option<usize>,
        forced: Vec<usize>,
        rng: Option<SplitMix64>,
    ) -> Self {
        Rt {
            state: Mutex::new(State {
                forced,
                rng,
                preemption_bound,
                ..State::default()
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        // The state mutex itself must never wedge on poison: a panicking
        // logical thread may have been interrupted at any point.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Pick a branch among `total` alternatives: forced prefix first, then
    /// seeded RNG, then branch 0 (DFS default). Singleton choices are not
    /// recorded (callers skip them), keeping schedules short.
    fn pick(&self, st: &mut State, total: usize) -> usize {
        let pos = st.schedule.len();
        let taken = if pos < st.forced.len() {
            st.forced[pos].min(total - 1)
        } else if let Some(rng) = st.rng.as_mut() {
            (rng.next() % total as u64) as usize
        } else {
            0
        };
        st.schedule.push(Choice { taken, total });
        taken
    }

    /// Give up the token. `after` is the caller's status once it yields:
    /// `Runnable` (plain scheduling point), `Blocked`/`TimedBlocked`
    /// (blocking op), or `Finished` (thread exit). Returns once the caller
    /// holds the token again (immediately if it was rescheduled), except for
    /// `Finished`, which never waits.
    fn yield_token(self: &Arc<Self>, mut st: MutexGuard<'_, State>, tid: usize, after: Status) {
        if st.abort {
            drop(st);
            std::panic::panic_any(Abort);
        }
        st.status[tid] = after;

        // Candidate order is deterministic: current thread first (so DFS
        // branch 0 is "keep running", minimizing preemptions down the
        // leftmost path), then the rest by id.
        let mut cands: Vec<usize> = Vec::new();
        if after == Status::Runnable {
            cands.push(tid);
        }
        let budget_left = st.preemption_bound.is_none_or(|b| st.preemptions < b);
        if after != Status::Runnable || budget_left {
            for t in 0..st.status.len() {
                if t != tid && st.status[t] == Status::Runnable {
                    cands.push(t);
                }
            }
        }

        if cands.is_empty() {
            // Nobody runnable. Try to rescue a timed wait before declaring
            // deadlock: a real system would eventually hit the timeout.
            if let Some(t) = (0..st.status.len()).find(|&t| st.status[t] == Status::TimedBlocked) {
                st.status[t] = Status::Runnable;
                st.timed_out[t] = true;
                cands.push(t);
            } else if st.status.iter().all(|&s| s == Status::Finished) {
                st.active = usize::MAX;
                self.cv.notify_all();
                return;
            } else {
                let blocked: Vec<String> = (0..st.status.len())
                    .filter(|&t| {
                        st.status[t] == Status::Blocked || st.status[t] == Status::TimedBlocked
                    })
                    .map(|t| match &st.names[t] {
                        Some(n) => format!("{t} ({n})"),
                        None => format!("{t}"),
                    })
                    .collect();
                let msg = format!(
                    "deadlock: all live threads blocked [{}]",
                    blocked.join(", ")
                );
                self.fail_locked(&mut st, msg);
                if after == Status::Finished {
                    // Exiting thread cannot unwind usefully; just leave.
                    return;
                }
                drop(st);
                std::panic::panic_any(Abort);
            }
        }

        let chosen = if cands.len() == 1 {
            cands[0]
        } else {
            let idx = self.pick(&mut st, cands.len());
            cands[idx]
        };
        if chosen == tid {
            return;
        }
        if after == Status::Runnable {
            st.preemptions += 1;
        }
        st.active = chosen;
        self.cv.notify_all();
        if after == Status::Finished {
            return;
        }
        self.wait_for_token(st, tid);
    }

    fn wait_for_token(self: &Arc<Self>, mut st: MutexGuard<'_, State>, tid: usize) {
        loop {
            if st.abort {
                drop(st);
                std::panic::panic_any(Abort);
            }
            if st.active == tid {
                debug_assert_eq!(st.status[tid], Status::Runnable);
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Block the current thread (it must hold the token). Returns when a
    /// waker has made it runnable *and* a scheduling decision handed the
    /// token back. If `timed` and the system would otherwise deadlock, the
    /// thread is woken with its timed-out flag set; the caller must check
    /// [`take_timed_out`].
    pub(crate) fn block(self: &Arc<Self>, tid: usize, timed: bool) {
        let st = self.lock();
        let after = if timed {
            Status::TimedBlocked
        } else {
            Status::Blocked
        };
        self.yield_token(st, tid, after);
    }

    pub(crate) fn take_timed_out(&self, tid: usize) -> bool {
        let mut st = self.lock();
        std::mem::take(&mut st.timed_out[tid])
    }

    /// Make `target` runnable again (does not transfer the token).
    pub(crate) fn unblock(&self, target: usize) {
        let mut st = self.lock();
        if st.status[target] == Status::Blocked || st.status[target] == Status::TimedBlocked {
            st.status[target] = Status::Runnable;
        }
    }

    fn fail_locked(&self, st: &mut State, msg: String) {
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        st.abort = true;
        self.cv.notify_all();
    }

    // ---- clock plumbing (used by the sync shims) ----

    pub(crate) fn bump_clock(&self, tid: usize) -> VClock {
        let mut st = self.lock();
        st.clocks[tid].bump(tid);
        st.clocks[tid].clone()
    }

    pub(crate) fn join_clock(&self, tid: usize, other: &VClock) {
        let mut st = self.lock();
        st.clocks[tid].join(other);
    }

    /// Run `f` with (state, tid) — used by the atomics, which need the
    /// scheduler lock held across clock reads, choice recording, and store
    /// selection so the whole load/store/RMW is one logical step.
    pub(crate) fn with_state<R>(&self, f: impl FnOnce(&mut StateView<'_>) -> R) -> R {
        let mut st = self.lock();
        let mut view = StateView { st: &mut st };
        f(&mut view)
    }

    // ---- thread lifecycle ----

    /// Register a new logical thread; returns its id. Caller must hold the
    /// token (i.e. be the spawning thread) or be the driver registering
    /// thread 0.
    pub(crate) fn register_thread(&self, parent: Option<usize>, name: Option<String>) -> usize {
        let mut st = self.lock();
        let tid = st.status.len();
        st.status.push(Status::Runnable);
        st.timed_out.push(false);
        let clock = match parent {
            Some(p) => {
                // spawn edge: child starts with everything the parent did.
                st.clocks[p].bump(p);
                let mut c = st.clocks[p].clone();
                c.bump(tid);
                c
            }
            None => {
                let mut c = VClock::default();
                c.bump(tid);
                c
            }
        };
        st.clocks.push(clock);
        st.joiners.push(Vec::new());
        st.results.push(None);
        st.names.push(name);
        st.live += 1;
        tid
    }

    pub(crate) fn add_handle(&self, h: std::thread::JoinHandle<()>) {
        self.lock().handles.push(h);
    }

    /// Body run on each real OS thread backing a logical thread.
    pub(crate) fn thread_main(
        self: Arc<Self>,
        tid: usize,
        f: Box<dyn FnOnce() -> Box<dyn std::any::Any + Send> + Send>,
    ) {
        CURRENT.with(|c| *c.borrow_mut() = Some((self.clone(), tid)));
        // Wait to be scheduled for the first time.
        {
            let mut st = self.lock();
            loop {
                if st.abort {
                    // Execution died before this thread ever ran.
                    self.thread_exit_locked(st, tid, None);
                    CURRENT.with(|c| *c.borrow_mut() = None);
                    return;
                }
                if st.active == tid {
                    break;
                }
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }

        let result = std::panic::catch_unwind(AssertUnwindSafe(f));
        let stored: Option<AnyResult> = match result {
            Ok(v) => Some(Ok(v)),
            Err(p) if p.is::<Abort>() => None,
            Err(p) => {
                let msg = panic_message(&*p);
                let mut st = self.lock();
                self.fail_locked(&mut st, format!("thread {tid} panicked: {msg}"));
                drop(st);
                Some(Err(p))
            }
        };

        let st = self.lock();
        self.thread_exit_locked(st, tid, stored);
        CURRENT.with(|c| *c.borrow_mut() = None);
    }

    fn thread_exit_locked(
        self: &Arc<Self>,
        mut st: MutexGuard<'_, State>,
        tid: usize,
        result: Option<AnyResult>,
    ) {
        st.results[tid] = result;
        st.status[tid] = Status::Finished;
        let joiners = std::mem::take(&mut st.joiners[tid]);
        for j in joiners {
            if st.status[j] == Status::Blocked || st.status[j] == Status::TimedBlocked {
                st.status[j] = Status::Runnable;
            }
        }
        st.live -= 1;
        if st.live == 0 {
            st.active = usize::MAX;
            self.cv.notify_all();
            return;
        }
        if st.abort {
            // Teardown: just pass the token to anyone still parked so they
            // can observe the abort and unwind.
            st.active = usize::MAX;
            self.cv.notify_all();
            return;
        }
        self.yield_token(st, tid, Status::Finished);
    }

    /// Block until logical thread `target` finishes, then take its result.
    pub(crate) fn join_thread(self: &Arc<Self>, tid: usize, target: usize) -> AnyResult {
        loop {
            let mut st = self.lock();
            if st.abort {
                drop(st);
                std::panic::panic_any(Abort);
            }
            if st.status[target] == Status::Finished {
                let clock = st.clocks[target].clone();
                st.clocks[tid].join(&clock);
                return st.results[target]
                    .take()
                    .unwrap_or_else(|| Err(Box::new(Abort)));
            }
            st.joiners[target].push(tid);
            drop(st);
            self.block(tid, false);
        }
    }

    /// Drive one full execution of `f` as logical thread 0. Returns the
    /// recorded schedule and failure, after every backing OS thread exited.
    pub(crate) fn run(self: &Arc<Self>, f: Arc<dyn Fn() + Send + Sync>) -> Outcome {
        let t0 = self.register_thread(None, Some("main".into()));
        debug_assert_eq!(t0, 0);
        {
            let mut st = self.lock();
            st.active = 0;
        }
        let rt = self.clone();
        let h = std::thread::Builder::new()
            .name("loom-main".into())
            .spawn(move || {
                rt.clone().thread_main(
                    0,
                    Box::new(move || {
                        f();
                        Box::new(()) as Box<dyn std::any::Any + Send>
                    }),
                );
            })
            .expect("spawn loom main thread");
        self.add_handle(h);

        let mut st = self.lock();
        while st.live > 0 {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        let handles = std::mem::take(&mut st.handles);
        let schedule = st.schedule.clone();
        let failure = st.failure.clone();
        drop(st);
        for h in handles {
            let _ = h.join();
        }
        Outcome { schedule, failure }
    }
}

/// Narrow view over scheduler state handed to the atomics so they can do
/// clock math + choice recording under one lock acquisition.
pub(crate) struct StateView<'a> {
    st: &'a mut State,
}

impl StateView<'_> {
    pub fn clock(&mut self, tid: usize) -> &mut VClock {
        &mut self.st.clocks[tid]
    }

    pub fn sc_clock(&mut self) -> &mut VClock {
        // Global SeqCst order clock lives in slot "beyond all threads":
        // model it as a dedicated field.
        &mut self.st.sc
    }

    pub fn choose(&mut self, total: usize) -> usize {
        if total <= 1 {
            return 0;
        }
        let pos = self.st.schedule.len();
        let taken = if pos < self.st.forced.len() {
            self.st.forced[pos].min(total - 1)
        } else if let Some(rng) = self.st.rng.as_mut() {
            (rng.next() % total as u64) as usize
        } else {
            0
        };
        self.st.schedule.push(Choice { taken, total });
        taken
    }
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}
