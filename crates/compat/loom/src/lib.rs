//! Offline stand-in for the `loom` crate: a deterministic concurrency model
//! checker for std-style sync primitives, built std-only because this
//! workspace vendors all dependencies.
//!
//! A test body runs many times. Each run ("execution") serializes all
//! logical threads through a scheduler token; every nondeterministic event —
//! which runnable thread gets the token, which visible store a relaxed load
//! observes, whether a timed wait times out — is a recorded *choice*. The
//! driver explores the choice tree three ways:
//!
//! - **DFS (default)**: exhaustive backtracking over all schedules with at
//!   most `preemption_bound` preemptive context switches (CHESS-style).
//!   Terminates with `Stats::exhausted == true` when the bounded tree is
//!   fully covered.
//! - **Seeded random** (`Builder::seed`): samples schedules from a
//!   deterministic RNG — useful for quick smoke runs and for *finding*
//!   counterexamples beyond the bound.
//! - **Replay** (`Builder::replay`): re-runs one exact choice sequence, e.g.
//!   the `schedule` carried by a returned [`Failure`] — this is how a failing
//!   interleaving found in CI is pinned as a regression test.
//!
//! ```
//! use loom::sync::atomic::{AtomicUsize, Ordering};
//! use loom::sync::Arc;
//!
//! loom::model(|| {
//!     let n = Arc::new(AtomicUsize::new(0));
//!     let n2 = n.clone();
//!     let h = loom::thread::spawn(move || n2.fetch_add(1, Ordering::AcqRel));
//!     n.fetch_add(1, Ordering::AcqRel);
//!     h.join().unwrap();
//!     assert_eq!(n.load(Ordering::Acquire), 2);
//! });
//! ```

mod atomic;
mod rt;
pub mod sync;
pub mod thread;

use rt::{Rt, SplitMix64};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub mod hint {
    pub fn spin_loop() {
        crate::rt::schedule_point();
    }
}

/// A failing execution: the exact choice sequence to hand to
/// [`Builder::replay`], plus the first failure message (assertion text,
/// panic payload, or deadlock report).
#[derive(Debug, Clone)]
pub struct Failure {
    pub schedule: Vec<usize>,
    pub message: String,
    pub iteration: usize,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model failure at iteration {}: {}\n  replay schedule: {:?}",
            self.iteration, self.message, self.schedule
        )
    }
}

#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Executions actually run.
    pub iterations: usize,
    /// True iff the bounded DFS tree was fully explored (never true for
    /// seeded or replay runs).
    pub exhausted: bool,
}

#[derive(Debug, Clone)]
pub struct Builder {
    /// Max preemptive context switches per execution (`None` = unbounded).
    /// Voluntary switches (blocking, thread exit) are always free.
    pub preemption_bound: Option<usize>,
    /// Hard cap on executions for one `check` call.
    pub max_iterations: usize,
    /// Wall-clock budget for one `check` call.
    pub max_duration: Option<Duration>,
    /// Switch from DFS to seeded random exploration.
    pub seed: Option<u64>,
    /// Replay exactly one schedule (from [`Failure::schedule`]).
    pub replay: Option<Vec<usize>>,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            preemption_bound: Some(2),
            max_iterations: 500_000,
            max_duration: Some(Duration::from_secs(60)),
            seed: None,
            replay: None,
        }
    }
}

impl Builder {
    pub fn new() -> Self {
        Builder::default()
    }

    /// Run `f` under the explorer; panic with a replayable report on the
    /// first failing execution.
    pub fn check<F>(&self, f: F)
    where
        F: Fn() + Send + Sync + 'static,
    {
        if let Err(failure) = self.check_quiet(f) {
            panic!("{failure}");
        }
    }

    /// Like [`check`](Self::check) but returns the failure instead of
    /// panicking, so tests can assert on expected counterexamples and then
    /// replay them.
    pub fn check_quiet<F>(&self, f: F) -> Result<Stats, Failure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let start = Instant::now();
        let mut forced: Vec<usize> = self.replay.clone().unwrap_or_default();
        let replay_only = self.replay.is_some();
        let mut iterations = 0usize;

        loop {
            iterations += 1;
            let rng = self
                .seed
                .map(|s| SplitMix64(s ^ (iterations as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
            let rt = Arc::new(Rt::new(self.preemption_bound, forced.clone(), rng));
            let outcome = rt.run(f.clone());

            if let Some(message) = outcome.failure {
                return Err(Failure {
                    schedule: outcome.schedule.iter().map(|c| c.taken).collect(),
                    message,
                    iteration: iterations,
                });
            }
            if replay_only {
                return Ok(Stats {
                    iterations,
                    exhausted: false,
                });
            }

            let out_of_budget = iterations >= self.max_iterations
                || self.max_duration.is_some_and(|d| start.elapsed() >= d);

            if self.seed.is_some() {
                if out_of_budget {
                    return Ok(Stats {
                        iterations,
                        exhausted: false,
                    });
                }
                continue;
            }

            // DFS: advance to the next unexplored branch.
            match next_prefix(&outcome.schedule) {
                Some(p) => forced = p,
                None => {
                    return Ok(Stats {
                        iterations,
                        exhausted: true,
                    })
                }
            }
            if out_of_budget {
                return Ok(Stats {
                    iterations,
                    exhausted: false,
                });
            }
        }
    }
}

/// Backtrack: find the deepest choice with an untaken sibling; the next
/// execution forces the prefix up to it plus that sibling.
fn next_prefix(schedule: &[rt::Choice]) -> Option<Vec<usize>> {
    for i in (0..schedule.len()).rev() {
        if schedule[i].taken + 1 < schedule[i].total {
            let mut p: Vec<usize> = schedule[..i].iter().map(|c| c.taken).collect();
            p.push(schedule[i].taken + 1);
            return Some(p);
        }
    }
    None
}

/// Exhaustively explore `f` with the default bounds and panic on the first
/// failing execution, printing its replay schedule.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f);
}
