//! Model `Mutex`, `Condvar`, and `mpsc` channels. All establish full
//! happens-before edges the way their std counterparts do: the mutex carries
//! a clock from unlocker to next locker, a received message carries the
//! sender's clock, and `Condvar` inherits its edge from the mutex
//! re-acquisition.

use crate::rt::{self, VClock};
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::sync::Mutex as StdMutex;
use std::time::Duration;

pub use std::sync::Arc;
pub use std::sync::{LockResult, PoisonError, TryLockError, TryLockResult};

pub mod atomic {
    pub use crate::atomic::*;
}

// ---------------------------------------------------------------- Mutex

struct MState {
    locked: bool,
    poisoned: bool,
    /// Clock of the last unlocker, joined by the next locker.
    clock: VClock,
    waiters: Vec<usize>,
}

/// Model mutex. Interior data lives in an `UnsafeCell`; exclusivity is
/// guaranteed by the `locked` flag plus the fact that only the token-holding
/// logical thread executes at any time.
pub struct Mutex<T: ?Sized> {
    s: StdMutex<MState>,
    cell: UnsafeCell<T>,
}

unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(t: T) -> Self {
        Mutex {
            s: StdMutex::new(MState {
                locked: false,
                poisoned: false,
                clock: VClock::default(),
                waiters: Vec::new(),
            }),
            cell: UnsafeCell::new(t),
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        let poisoned = self.mstate(|m| m.poisoned);
        let v = self.cell.into_inner();
        if poisoned {
            Err(PoisonError::new(v))
        } else {
            Ok(v)
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    fn mstate<R>(&self, f: impl FnOnce(&mut MState) -> R) -> R {
        let mut g = self.s.lock().unwrap_or_else(|e| e.into_inner());
        f(&mut g)
    }

    /// Acquire without a scheduling point (used internally by Condvar
    /// re-acquisition, which already yielded).
    fn acquire(&self) -> bool {
        rt::with_rt(|rt, tid| loop {
            let grabbed = self.mstate(|m| {
                if m.locked {
                    m.waiters.push(tid);
                    false
                } else {
                    m.locked = true;
                    true
                }
            });
            if grabbed {
                let clock = self.mstate(|m| m.clock.clone());
                rt.join_clock(tid, &clock);
                return self.mstate(|m| m.poisoned);
            }
            rt.block(tid, false);
        })
    }

    fn release(&self) {
        rt::try_with_rt(|rt, tid| {
            let clock = rt.bump_clock(tid);
            let waiters = self.mstate(|m| {
                m.locked = false;
                m.clock = clock.clone();
                if std::thread::panicking() {
                    m.poisoned = true;
                }
                std::mem::take(&mut m.waiters)
            });
            for w in waiters {
                rt.unblock(w);
            }
        });
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        rt::schedule_point();
        let poisoned = self.acquire();
        let guard = MutexGuard { lock: self };
        if poisoned {
            Err(PoisonError::new(guard))
        } else {
            Ok(guard)
        }
    }

    pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
        rt::schedule_point();
        let grabbed = self.mstate(|m| {
            if m.locked {
                false
            } else {
                m.locked = true;
                true
            }
        });
        if !grabbed {
            return Err(TryLockError::WouldBlock);
        }
        rt::with_rt(|rt, tid| {
            let clock = self.mstate(|m| m.clock.clone());
            rt.join_clock(tid, &clock);
        });
        let guard = MutexGuard { lock: self };
        if self.mstate(|m| m.poisoned) {
            Err(TryLockError::Poisoned(PoisonError::new(guard)))
        } else {
            Ok(guard)
        }
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        let poisoned = self.mstate(|m| m.poisoned);
        let v = self.cell.get_mut();
        if poisoned {
            Err(PoisonError::new(v))
        } else {
            Ok(v)
        }
    }

    pub fn is_poisoned(&self) -> bool {
        self.mstate(|m| m.poisoned)
    }

    pub fn clear_poison(&self) {
        self.mstate(|m| m.poisoned = false);
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Mutex(model)")
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.cell.get() }
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.lock.cell.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.release();
    }
}

// -------------------------------------------------------------- Condvar

/// Result of a timed wait. std's `WaitTimeoutResult` has no public
/// constructor, so the model defines its own API-compatible type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[derive(Default)]
struct CvState {
    waiters: Vec<usize>,
}

#[derive(Default)]
pub struct Condvar {
    s: StdMutex<CvState>,
}

impl Condvar {
    pub fn new() -> Self {
        Condvar::default()
    }

    fn cvstate<R>(&self, f: impl FnOnce(&mut CvState) -> R) -> R {
        let mut g = self.s.lock().unwrap_or_else(|e| e.into_inner());
        f(&mut g)
    }

    fn wait_inner<'a, T: ?Sized>(
        &self,
        guard: MutexGuard<'a, T>,
        timed: bool,
    ) -> (LockResult<MutexGuard<'a, T>>, bool) {
        rt::schedule_point();
        let mutex = guard.lock;
        // Unlock without running the guard's Drop twice.
        std::mem::forget(guard);
        mutex.release();
        // A timed wait may fire before any notify arrives: that is its own
        // explored branch, so "timeout first" schedules are covered even
        // when a notify would eventually come.
        let fire_early = timed && rt::choose(2) == 1;
        let timed_out = if fire_early {
            rt::schedule_point();
            true
        } else {
            rt::with_rt(|rt, tid| {
                self.cvstate(|c| c.waiters.push(tid));
                rt.block(tid, timed);
                let timed_out = timed && rt.take_timed_out(tid);
                if timed_out {
                    // Timed out rather than notified: withdraw from the wait
                    // list so a later notify does not target a gone waiter.
                    self.cvstate(|c| c.waiters.retain(|&w| w != tid));
                }
                timed_out
            })
        };
        let poisoned = mutex.acquire();
        let guard = MutexGuard { lock: mutex };
        let res = if poisoned {
            Err(PoisonError::new(guard))
        } else {
            Ok(guard)
        };
        (res, timed_out)
    }

    pub fn wait<'a, T: ?Sized>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        self.wait_inner(guard, false).0
    }

    /// Timed wait. The timeout itself is modeled as schedule-dependent: the
    /// explorer may wake the waiter spuriously-by-timeout whenever the
    /// system would otherwise be stuck, so "notify arrives" and "timeout
    /// fires first" are both explored without real clocks.
    pub fn wait_timeout<'a, T: ?Sized>(
        &self,
        guard: MutexGuard<'a, T>,
        _dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        let (res, timed_out) = self.wait_inner(guard, true);
        match res {
            Ok(g) => Ok((g, WaitTimeoutResult(timed_out))),
            Err(p) => Err(PoisonError::new((
                p.into_inner(),
                WaitTimeoutResult(timed_out),
            ))),
        }
    }

    pub fn notify_one(&self) {
        rt::schedule_point();
        rt::try_with_rt(|rt, _| {
            let w = self.cvstate(|c| {
                if c.waiters.is_empty() {
                    None
                } else {
                    Some(c.waiters.remove(0))
                }
            });
            if let Some(w) = w {
                rt.unblock(w);
            }
        });
    }

    pub fn notify_all(&self) {
        rt::schedule_point();
        rt::try_with_rt(|rt, _| {
            let ws = self.cvstate(|c| std::mem::take(&mut c.waiters));
            for w in ws {
                rt.unblock(w);
            }
        });
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Condvar(model)")
    }
}

// ----------------------------------------------------------------- mpsc

pub mod mpsc {
    use super::*;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError, TrySendError};

    struct Chan<T> {
        q: VecDeque<(T, VClock)>,
        cap: Option<usize>,
        senders: usize,
        rx_alive: bool,
        blocked_send: Vec<usize>,
        blocked_recv: Vec<usize>,
    }

    struct Shared<T> {
        s: StdMutex<Chan<T>>,
    }

    impl<T> Shared<T> {
        fn chan<R>(&self, f: impl FnOnce(&mut Chan<T>) -> R) -> R {
            let mut g = self.s.lock().unwrap_or_else(|e| e.into_inner());
            f(&mut g)
        }

        fn wake_recv(&self) {
            rt::try_with_rt(|rt, _| {
                let ws = self.chan(|c| std::mem::take(&mut c.blocked_recv));
                for w in ws {
                    rt.unblock(w);
                }
            });
        }

        fn wake_send(&self) {
            rt::try_with_rt(|rt, _| {
                let ws = self.chan(|c| std::mem::take(&mut c.blocked_send));
                for w in ws {
                    rt.unblock(w);
                }
            });
        }
    }

    pub struct Sender<T> {
        sh: Arc<Shared<T>>,
    }

    pub struct SyncSender<T> {
        sh: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        sh: Arc<Shared<T>>,
    }

    unsafe impl<T: Send> Send for Sender<T> {}
    unsafe impl<T: Send> Send for SyncSender<T> {}
    unsafe impl<T: Send> Send for Receiver<T> {}

    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let sh = Arc::new(Shared {
            s: StdMutex::new(Chan {
                q: VecDeque::new(),
                cap: None,
                senders: 1,
                rx_alive: true,
                blocked_send: Vec::new(),
                blocked_recv: Vec::new(),
            }),
        });
        (Sender { sh: sh.clone() }, Receiver { sh })
    }

    /// Bounded channel. A zero capacity (rendezvous) is modeled as capacity
    /// one — a deliberate simplification; none of the serve protocols use
    /// rendezvous hand-off.
    pub fn sync_channel<T>(cap: usize) -> (SyncSender<T>, Receiver<T>) {
        let sh = Arc::new(Shared {
            s: StdMutex::new(Chan {
                q: VecDeque::new(),
                cap: Some(cap.max(1)),
                senders: 1,
                rx_alive: true,
                blocked_send: Vec::new(),
                blocked_recv: Vec::new(),
            }),
        });
        (SyncSender { sh: sh.clone() }, Receiver { sh })
    }

    fn stamp<T>(t: T) -> (T, VClock) {
        let clock = rt::with_rt(|rt, tid| rt.bump_clock(tid));
        (t, clock)
    }

    impl<T> Sender<T> {
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            rt::schedule_point();
            if !self.sh.chan(|c| c.rx_alive) {
                return Err(SendError(t));
            }
            let item = stamp(t);
            self.sh.chan(|c| c.q.push_back(item));
            self.sh.wake_recv();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.sh.chan(|c| c.senders += 1);
            Sender {
                sh: self.sh.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let last = self.sh.chan(|c| {
                c.senders -= 1;
                c.senders == 0
            });
            if last {
                self.sh.wake_recv();
            }
        }
    }

    impl<T> SyncSender<T> {
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            rt::schedule_point();
            let mut t = t;
            loop {
                enum S {
                    Sent,
                    Dead,
                    Full,
                }
                let (state, back) = {
                    let cap = self.sh.chan(|c| c.cap.unwrap_or(usize::MAX));
                    self.sh.chan(|c| {
                        if !c.rx_alive {
                            (S::Dead, Some(t))
                        } else if c.q.len() < cap {
                            c.q.push_back(stamp_in_place(t));
                            (S::Sent, None)
                        } else {
                            (S::Full, Some(t))
                        }
                    })
                };
                match state {
                    S::Sent => {
                        self.sh.wake_recv();
                        return Ok(());
                    }
                    S::Dead => return Err(SendError(back.unwrap())),
                    S::Full => {
                        t = back.unwrap();
                        rt::with_rt(|rt, tid| {
                            self.sh.chan(|c| c.blocked_send.push(tid));
                            rt.block(tid, false);
                        });
                    }
                }
            }
        }

        pub fn try_send(&self, t: T) -> Result<(), TrySendError<T>> {
            rt::schedule_point();
            let cap = self.sh.chan(|c| c.cap.unwrap_or(usize::MAX));
            let res = self.sh.chan(|c| {
                if !c.rx_alive {
                    Err(TrySendError::Disconnected(()))
                } else if c.q.len() < cap {
                    Ok(())
                } else {
                    Err(TrySendError::Full(()))
                }
            });
            match res {
                Ok(()) => {
                    let item = stamp(t);
                    self.sh.chan(|c| c.q.push_back(item));
                    self.sh.wake_recv();
                    Ok(())
                }
                Err(TrySendError::Disconnected(())) => Err(TrySendError::Disconnected(t)),
                Err(TrySendError::Full(())) => Err(TrySendError::Full(t)),
            }
        }
    }

    impl<T> Clone for SyncSender<T> {
        fn clone(&self) -> Self {
            self.sh.chan(|c| c.senders += 1);
            SyncSender {
                sh: self.sh.clone(),
            }
        }
    }

    impl<T> Drop for SyncSender<T> {
        fn drop(&mut self) {
            let last = self.sh.chan(|c| {
                c.senders -= 1;
                c.senders == 0
            });
            if last {
                self.sh.wake_recv();
            }
        }
    }

    fn stamp_in_place<T>(t: T) -> (T, VClock) {
        stamp(t)
    }

    impl<T> Receiver<T> {
        fn pop(&self) -> Option<T> {
            let item = self.sh.chan(|c| c.q.pop_front());
            item.map(|(t, clock)| {
                rt::with_rt(|rt, tid| rt.join_clock(tid, &clock));
                self.sh.wake_send();
                t
            })
        }

        pub fn recv(&self) -> Result<T, RecvError> {
            rt::schedule_point();
            loop {
                if let Some(t) = self.pop() {
                    return Ok(t);
                }
                if self.sh.chan(|c| c.senders == 0) {
                    return Err(RecvError);
                }
                rt::with_rt(|rt, tid| {
                    self.sh.chan(|c| c.blocked_recv.push(tid));
                    rt.block(tid, false);
                });
            }
        }

        /// Timed receive: an empty queue times out immediately (deliberate
        /// simplification — the model has no clock, and the serve worker
        /// loop treats `Timeout` as "poll again").
        pub fn recv_timeout(&self, _dur: Duration) -> Result<T, RecvTimeoutError> {
            rt::schedule_point();
            if let Some(t) = self.pop() {
                return Ok(t);
            }
            if self.sh.chan(|c| c.senders == 0) {
                return Err(RecvTimeoutError::Disconnected);
            }
            Err(RecvTimeoutError::Timeout)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            rt::schedule_point();
            if let Some(t) = self.pop() {
                return Ok(t);
            }
            if self.sh.chan(|c| c.senders == 0) {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.sh.chan(|c| c.rx_alive = false);
            self.sh.wake_send();
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }
}
