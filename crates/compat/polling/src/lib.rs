//! # polling — a std-only readiness poller
//!
//! Offline stand-in for the `polling` crate, scoped to exactly what
//! the `nai-serve` reactor needs: register unix file descriptors with
//! a *level-triggered* interest set, then block until one becomes
//! readable or writable (or a timeout passes).
//!
//! Two backends, chosen at compile time:
//!
//! * **epoll(7)** on Linux — the kernel holds the interest set, so
//!   `add`/`modify`/`delete` are O(1) syscalls and `wait` scales with
//!   the number of *ready* descriptors, not registered ones;
//! * **poll(2)** everywhere else — a registry of interests is kept in
//!   a mutex and re-materialized into a `pollfd` array per `wait`.
//!
//! Both backends speak through raw `extern "C"` bindings to the libc
//! symbols std already links; nothing new is vendored or downloaded.
//!
//! The API is deliberately tiny and synchronous: no wakers, no edge
//! triggering, no timerfd. Level-triggered readiness means a caller
//! that does not fully drain a socket simply sees it again on the
//! next `wait` — the simplest contract to reason about for a
//! single-threaded reactor.

#![cfg(unix)]

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// What to watch a descriptor for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor is readable (or peer-closed).
    pub readable: bool,
    /// Wake when the descriptor is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Readable and writable.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// Registered but dormant (kept in the set, delivers nothing
    /// except errors/hangups, which readiness APIs always report).
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// One readiness notification from [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The caller-chosen key passed to [`Poller::add`].
    pub key: usize,
    /// The descriptor is readable; also set on hangup/error so the
    /// caller's read path observes the failure.
    pub readable: bool,
    /// The descriptor is writable; also set on error.
    pub writable: bool,
}

/// A level-triggered readiness poller over raw file descriptors.
pub struct Poller {
    backend: sys::Backend,
}

impl Poller {
    /// Creates a poller with an empty interest set.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            backend: sys::Backend::new()?,
        })
    }

    /// Registers `fd` under `key`. The caller must keep `fd` open
    /// until [`Poller::delete`] and must not register it twice.
    pub fn add(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
        self.backend.add(fd, key, interest)
    }

    /// Replaces the interest set of a registered descriptor.
    pub fn modify(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
        self.backend.modify(fd, key, interest)
    }

    /// Removes a descriptor from the interest set. Must be called
    /// *before* the descriptor is closed.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.backend.delete(fd)
    }

    /// Blocks until at least one registered descriptor is ready or
    /// `timeout` passes (`None` blocks indefinitely). Ready events
    /// are appended to `events` (which is cleared first); returns the
    /// number delivered. A signal interruption reports `Ok(0)` —
    /// callers treat it as a spurious wakeup and re-check deadlines.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        self.backend.wait(events, timeout)
    }
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller").finish_non_exhaustive()
    }
}

/// Clamps an optional timeout to the millisecond `int` the syscalls
/// take: `None` → -1 (infinite), sub-millisecond waits round *up* so
/// a 100µs deadline never busy-spins at 0ms.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis();
            let ms = if ms == 0 && d.as_nanos() > 0 { 1 } else { ms };
            ms.min(i32::MAX as u128) as i32
        }
    }
}

#[cfg(target_os = "linux")]
mod sys {
    //! epoll(7) backend: the kernel owns the interest set.

    use super::{timeout_ms, Event, Interest};
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    // Kernel ABI: on x86-64 `struct epoll_event` is packed (no
    // padding between the u32 mask and the u64 payload).
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    fn mask_of(interest: Interest) -> u32 {
        let mut m = EPOLLRDHUP; // peer half-close always wakes the read path
        if interest.readable {
            m |= EPOLLIN;
        }
        if interest.writable {
            m |= EPOLLOUT;
        }
        m
    }

    pub struct Backend {
        epfd: RawFd,
    }

    impl Backend {
        pub fn new() -> io::Result<Backend> {
            // SAFETY: plain syscall, no pointers.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Backend { epfd })
        }

        fn ctl(&self, op: i32, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask_of(interest),
                data: key as u64,
            };
            // SAFETY: `ev` outlives the call; the kernel copies it.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn add(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, key, interest)
        }

        pub fn modify(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, key, interest)
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::NONE)
        }

        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            const CAP: usize = 256;
            let mut raw = [EpollEvent { events: 0, data: 0 }; CAP];
            // SAFETY: `raw` is a valid, writable array of CAP entries.
            let n =
                unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), CAP as i32, timeout_ms(timeout)) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(0); // spurious wakeup; caller re-checks deadlines
                }
                return Err(err);
            }
            for ev in raw.iter().take(n as usize) {
                // Copy out of the (possibly packed) struct before use.
                let mask = ev.events;
                let data = ev.data;
                let failed = mask & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0;
                events.push(Event {
                    key: data as usize,
                    // Errors/hangups surface as readability so the
                    // caller's read path observes them.
                    readable: mask & EPOLLIN != 0 || failed,
                    writable: mask & EPOLLOUT != 0,
                });
            }
            Ok(n as usize)
        }
    }

    impl Drop for Backend {
        fn drop(&mut self) {
            // SAFETY: epfd came from epoll_create1 and is closed once.
            unsafe { close(self.epfd) };
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    //! poll(2) fallback: interests live in a mutexed registry and are
    //! re-materialized into a `pollfd` array on every wait.

    use super::{timeout_ms, Event, Interest};
    use std::collections::HashMap;
    use std::io;
    use std::os::unix::io::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u32, timeout: i32) -> i32;
    }

    pub struct Backend {
        registry: Mutex<HashMap<RawFd, (usize, Interest)>>,
    }

    impl Backend {
        pub fn new() -> io::Result<Backend> {
            Ok(Backend {
                registry: Mutex::new(HashMap::new()),
            })
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<RawFd, (usize, Interest)>> {
            self.registry
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        }

        pub fn add(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
            if self.lock().insert(fd, (key, interest)).is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            Ok(())
        }

        pub fn modify(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
            match self.lock().get_mut(&fd) {
                Some(slot) => {
                    *slot = (key, interest);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            match self.lock().remove(&fd) {
                Some(_) => Ok(()),
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let (mut fds, keys): (Vec<PollFd>, Vec<usize>) = {
                let reg = self.lock();
                let mut fds = Vec::with_capacity(reg.len());
                let mut keys = Vec::with_capacity(reg.len());
                for (&fd, &(key, interest)) in reg.iter() {
                    let mut mask = 0i16;
                    if interest.readable {
                        mask |= POLLIN;
                    }
                    if interest.writable {
                        mask |= POLLOUT;
                    }
                    fds.push(PollFd {
                        fd,
                        events: mask,
                        revents: 0,
                    });
                    keys.push(key);
                }
                (fds, keys)
            };
            // SAFETY: `fds` is a valid, writable array of len entries.
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u32, timeout_ms(timeout)) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(err);
            }
            for (pfd, &key) in fds.iter().zip(&keys) {
                if pfd.revents == 0 {
                    continue;
                }
                let failed = pfd.revents & (POLLERR | POLLHUP) != 0;
                events.push(Event {
                    key,
                    readable: pfd.revents & POLLIN != 0 || failed,
                    writable: pfd.revents & POLLOUT != 0,
                });
            }
            Ok(events.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::time::Instant;

    #[test]
    fn readable_after_write_and_timeout_when_idle() {
        let poller = Poller::new().unwrap();
        let (a, mut b) = UnixStream::pair().unwrap();
        poller.add(a.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        // Nothing written yet: a short wait times out empty.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);

        b.write_all(&[1]).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].key, 7);
        assert!(events[0].readable);
        poller.delete(a.as_raw_fd()).unwrap();
    }

    #[test]
    fn level_triggered_until_drained_and_modify_switches_interest() {
        let poller = Poller::new().unwrap();
        let (mut a, mut b) = UnixStream::pair().unwrap();
        poller.add(a.as_raw_fd(), 1, Interest::READ).unwrap();
        b.write_all(&[9, 9]).unwrap();

        let mut events = Vec::new();
        // Undrained data re-reports on every wait (level-triggered).
        for _ in 0..2 {
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(events.iter().any(|e| e.key == 1 && e.readable));
        }
        let mut buf = [0u8; 8];
        let _ = a.read(&mut buf).unwrap();

        // Dormant interest delivers nothing even with data pending.
        b.write_all(&[3]).unwrap();
        poller.modify(a.as_raw_fd(), 1, Interest::NONE).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0);

        // A socket with buffer space reports writable immediately.
        poller.modify(a.as_raw_fd(), 1, Interest::WRITE).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.key == 1 && e.writable));
        poller.delete(a.as_raw_fd()).unwrap();
    }

    #[test]
    fn peer_close_reports_readable() {
        let poller = Poller::new().unwrap();
        let (a, b) = UnixStream::pair().unwrap();
        poller.add(a.as_raw_fd(), 3, Interest::READ).unwrap();
        drop(b);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(
            events.iter().any(|e| e.key == 3 && e.readable),
            "hangup must surface as readability: {events:?}"
        );
    }

    #[test]
    fn sub_millisecond_timeouts_round_up_not_spin() {
        assert_eq!(timeout_ms(None), -1);
        assert_eq!(timeout_ms(Some(Duration::ZERO)), 0);
        assert_eq!(timeout_ms(Some(Duration::from_micros(100))), 1);
        assert_eq!(timeout_ms(Some(Duration::from_millis(250))), 250);
        let poller = Poller::new().unwrap();
        let mut events = Vec::new();
        let start = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_micros(200)))
            .unwrap();
        // Rounded up to 1ms, not -1 (forever) and not 0 (busy).
        assert!(start.elapsed() < Duration::from_secs(1));
    }
}
