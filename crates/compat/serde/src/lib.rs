//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op derive macros from the vendored `serde_derive`
//! and declares marker traits with the canonical names, so
//! `use serde::{Deserialize, Serialize}` plus `#[derive(Serialize,
//! Deserialize)]` compile unchanged. Nothing in this workspace calls
//! serde serialization at runtime — the on-disk formats are the
//! hand-rolled binary codecs in `nai-graph::io` and
//! `nai-core::checkpoint`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (never implemented by the
/// no-op derive; present so trait-position uses keep compiling).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (never implemented by the
/// no-op derive).
pub trait Deserialize<'de>: Sized {}
