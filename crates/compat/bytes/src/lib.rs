//! Offline stand-in for the `bytes` crate.
//!
//! Implements the little-endian cursor API used by the binary graph and
//! checkpoint codecs ([`Buf`], [`BufMut`], [`Bytes`], [`BytesMut`]) on
//! top of plain `Vec<u8>` storage. Semantics match the real crate for
//! the subset provided: `get_*` / `copy_to_slice` panic when the buffer
//! has too few bytes remaining (callers guard with [`Buf::remaining`]),
//! and [`BytesMut::freeze`] produces an immutable [`Bytes`].

use std::ops::Deref;

/// An immutable, cheaply cloneable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: std::sync::Arc<Vec<u8>>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.as_ref().clone()
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: std::sync::Arc::new(v),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.data.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.data.as_slice()
    }
}

/// A growable byte buffer for encoding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with `cap` bytes of pre-allocated space.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.data.as_slice()
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.data.as_slice()
    }
}

/// Read cursor over a byte source. All `get_*` methods consume from the
/// front and panic if fewer than the required bytes remain.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Borrows the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies exactly `dst.len()` bytes out of the buffer.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "buffer underflow: need {} bytes, have {}",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of slice");
        *self = &self[cnt..];
    }
}

/// Write cursor: appends little-endian values to the end of a buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_slice(b"MAGC");
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_f32_le(1.5);
        buf.put_f64_le(-2.25);
        let bytes = buf.freeze();
        let mut cur: &[u8] = &bytes;
        let mut magic = [0u8; 4];
        cur.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"MAGC");
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(cur.get_f32_le(), 1.5);
        assert_eq!(cur.get_f64_le(), -2.25);
        assert!(!cur.has_remaining());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut cur: &[u8] = &[1, 2];
        let _ = cur.get_u32_le();
    }

    #[test]
    fn bytes_slices_and_derefs() {
        let b = Bytes::from(vec![1u8, 2, 3, 4]);
        assert_eq!(b.len(), 4);
        assert_eq!(&b[..2], &[1, 2]);
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4]);
        let c = b.clone();
        assert_eq!(b, c);
    }
}
