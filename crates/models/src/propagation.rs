//! Offline feature propagation (the preprocessing of Fig. 1 (b)).

use nai_graph::CsrMatrix;
use nai_linalg::DenseMatrix;

/// Computes `[X^(0), X^(1), …, X^(k)]` with `X^(l) = Â X^(l−1)` (Eq. 2).
///
/// This is the transductive precomputation Scalable GNNs run once before
/// training; the returned vector has `k + 1` matrices of identical shape.
///
/// # Panics
/// Panics if `x.rows() != norm_adj.n()`.
pub fn propagate_features(norm_adj: &CsrMatrix, x: &DenseMatrix, k: usize) -> Vec<DenseMatrix> {
    assert_eq!(x.rows(), norm_adj.n(), "feature rows must match graph");
    let mut out = Vec::with_capacity(k + 1);
    out.push(x.clone());
    for _ in 0..k {
        let next = norm_adj.spmm(out.last().expect("non-empty"));
        out.push(next);
    }
    out
}

/// Multiply-accumulate cost of the full precomputation: `k · nnz(Â) · f`.
pub fn propagation_macs(norm_adj: &CsrMatrix, f: usize, k: usize) -> u64 {
    k as u64 * norm_adj.nnz() as u64 * f as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use nai_graph::generators::path_graph;
    use nai_graph::{normalized_adjacency, Convolution};

    #[test]
    fn returns_k_plus_one_levels() {
        let g = path_graph(5, 3);
        let norm = normalized_adjacency(&g.adj, Convolution::Symmetric);
        let feats = propagate_features(&norm, &g.features, 4);
        assert_eq!(feats.len(), 5);
        assert_eq!(feats[0].as_slice(), g.features.as_slice());
        for f in &feats {
            assert_eq!(f.shape(), g.features.shape());
        }
    }

    #[test]
    fn depth_one_equals_single_spmm() {
        let g = path_graph(6, 2);
        let norm = normalized_adjacency(&g.adj, Convolution::Symmetric);
        let feats = propagate_features(&norm, &g.features, 1);
        let direct = norm.spmm(&g.features);
        assert_eq!(feats[1].as_slice(), direct.as_slice());
    }

    #[test]
    fn row_stochastic_propagation_preserves_constants() {
        let g = path_graph(7, 1);
        let norm = normalized_adjacency(&g.adj, Convolution::ReverseTransition);
        let ones = DenseMatrix::from_fn(7, 1, |_, _| 1.0);
        let feats = propagate_features(&norm, &ones, 5);
        for f in &feats {
            assert!(f.as_slice().iter().all(|&v| (v - 1.0).abs() < 1e-5));
        }
    }

    #[test]
    fn propagation_smooths_features() {
        // Variance across nodes must not increase under row-stochastic
        // propagation on a connected graph.
        let g = path_graph(20, 1);
        let norm = normalized_adjacency(&g.adj, Convolution::ReverseTransition);
        let x = DenseMatrix::from_fn(20, 1, |r, _| if r % 2 == 0 { 1.0 } else { -1.0 });
        let feats = propagate_features(&norm, &x, 6);
        let variance = |m: &DenseMatrix| {
            let mean = m.as_slice().iter().sum::<f32>() / m.rows() as f32;
            m.as_slice()
                .iter()
                .map(|v| (v - mean) * (v - mean))
                .sum::<f32>()
                / m.rows() as f32
        };
        let v0 = variance(&feats[0]);
        let v6 = variance(&feats[6]);
        assert!(v6 < v0 * 0.5, "variance {v0} -> {v6}");
    }

    #[test]
    fn macs_formula() {
        let g = path_graph(5, 3);
        let norm = normalized_adjacency(&g.adj, Convolution::Symmetric);
        // nnz = 2·4 edges + 5 self loops = 13.
        assert_eq!(propagation_macs(&norm, 3, 2), 2 * 13 * 3);
    }

    #[test]
    fn k_zero_is_identity() {
        let g = path_graph(4, 2);
        let norm = normalized_adjacency(&g.adj, Convolution::Symmetric);
        let feats = propagate_features(&norm, &g.features, 0);
        assert_eq!(feats.len(), 1);
        assert_eq!(feats[0].as_slice(), g.features.as_slice());
    }
}
