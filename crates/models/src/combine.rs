//! Stateless multi-depth feature combination for SGC, SIGN and S²GC.
//!
//! GAMLP's attention combination is trainable and lives in
//! [`crate::gamlp`].

use nai_linalg::DenseMatrix;

/// How a classifier at depth `l` consumes the propagated features
/// `X^(0) … X^(l)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombineRule {
    /// Use only `X^(l)` (SGC, Eq. 2).
    Last,
    /// Concatenate `X^(0) ‖ … ‖ X^(l)` (SIGN, Eq. 3; depth transforms are
    /// folded into the classifier's first layer).
    Concat,
    /// Average `(1/(l+1)) Σ X^(t)` (S²GC, Eq. 4).
    Average,
}

impl CombineRule {
    /// Classifier input dimensionality at depth `l` given feature dim `f`.
    pub fn input_dim(self, f: usize, l: usize) -> usize {
        match self {
            CombineRule::Last => f,
            CombineRule::Concat => f * (l + 1),
            CombineRule::Average => f,
        }
    }

    /// Builds the classifier input from per-depth feature matrices
    /// (`depth_feats[t]` holds `X^(t)` for the same rows).
    ///
    /// # Panics
    /// Panics if `depth_feats.len() < l + 1` or shapes disagree.
    pub fn combine(self, depth_feats: &[DenseMatrix], l: usize) -> DenseMatrix {
        assert!(
            depth_feats.len() > l,
            "need features up to depth {l}, have {}",
            depth_feats.len()
        );
        match self {
            CombineRule::Last => depth_feats[l].clone(),
            CombineRule::Concat => {
                let parts: Vec<&DenseMatrix> = depth_feats[..=l].iter().collect();
                DenseMatrix::hconcat_all(&parts).expect("uniform shapes")
            }
            CombineRule::Average => {
                let mut acc = depth_feats[0].clone();
                for m in &depth_feats[1..=l] {
                    acc.add_assign(m).expect("uniform shapes");
                }
                acc.scale(1.0 / (l + 1) as f32);
                acc
            }
        }
    }

    /// Extra multiply-accumulates per node for the combination itself
    /// (additions counted as MACs, matching the paper's `knf` term for
    /// S²GC in Table I).
    pub fn combine_macs_per_node(self, f: usize, l: usize) -> u64 {
        match self {
            CombineRule::Last => 0,
            CombineRule::Concat => 0, // pure copy
            CombineRule::Average => ((l + 1) * f) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feats() -> Vec<DenseMatrix> {
        (0..3)
            .map(|t| DenseMatrix::from_fn(2, 2, |r, c| (t * 100 + r * 10 + c) as f32))
            .collect()
    }

    #[test]
    fn last_picks_depth_l() {
        let f = feats();
        let out = CombineRule::Last.combine(&f, 2);
        assert_eq!(out.as_slice(), f[2].as_slice());
        assert_eq!(CombineRule::Last.input_dim(2, 2), 2);
    }

    #[test]
    fn concat_stacks_depths_in_order() {
        let f = feats();
        let out = CombineRule::Concat.combine(&f, 1);
        assert_eq!(out.shape(), (2, 4));
        assert_eq!(out.row(0), &[0.0, 1.0, 100.0, 101.0]);
        assert_eq!(CombineRule::Concat.input_dim(2, 1), 4);
    }

    #[test]
    fn average_is_elementwise_mean() {
        let f = feats();
        let out = CombineRule::Average.combine(&f, 2);
        assert_eq!(out.get(0, 0), (0.0 + 100.0 + 200.0) / 3.0);
        assert_eq!(CombineRule::Average.input_dim(2, 2), 2);
    }

    #[test]
    fn combine_at_depth_zero_is_raw_features() {
        let f = feats();
        for rule in [CombineRule::Last, CombineRule::Concat, CombineRule::Average] {
            let out = rule.combine(&f, 0);
            assert_eq!(out.as_slice(), f[0].as_slice(), "{rule:?}");
        }
    }

    #[test]
    fn macs_accounting() {
        assert_eq!(CombineRule::Last.combine_macs_per_node(8, 3), 0);
        assert_eq!(CombineRule::Concat.combine_macs_per_node(8, 3), 0);
        assert_eq!(CombineRule::Average.combine_macs_per_node(8, 3), 32);
    }

    #[test]
    #[should_panic(expected = "need features up to depth")]
    fn missing_depths_panic() {
        let f = feats();
        let _ = CombineRule::Last.combine(&f, 5);
    }
}
