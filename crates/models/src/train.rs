//! Training loop for per-depth classifiers over precomputed features.
//!
//! Mirrors `nai-nn::trainer` but feeds [`DepthClassifier`]s, which consume
//! *several* aligned feature matrices (one per depth) instead of a single
//! design matrix.

use crate::classifier::DepthClassifier;
use nai_linalg::ops::{accuracy, argmax_rows};
use nai_linalg::DenseMatrix;
use nai_nn::loss::{distillation_loss, softmax_cross_entropy};
use nai_nn::trainer::{TrainConfig, TrainReport};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Distillation signal for a depth classifier: teacher logits aligned with
/// `train_idx` (row `i` of the logits corresponds to `train_idx[i]`).
#[derive(Debug, Clone, Copy)]
pub struct DepthDistillation<'a> {
    /// Teacher logits for the training nodes.
    pub teacher_logits: &'a DenseMatrix,
    /// Softening temperature `T`.
    pub temperature: f32,
    /// Mixing weight λ of Eq. (17).
    pub lambda: f32,
}

/// Gathers rows `idx` from each of the first `levels` feature matrices.
pub fn gather_depth_feats(
    depth_feats: &[DenseMatrix],
    levels: usize,
    idx: &[usize],
) -> Vec<DenseMatrix> {
    depth_feats[..levels]
        .iter()
        .map(|m| m.gather_rows(idx).expect("indices in range"))
        .collect()
}

/// Trains `clf` on the given node indices of `depth_feats`, early-stopping
/// on validation accuracy; restores the best snapshot.
///
/// `labels` is the full per-node label array of the (training) graph.
///
/// # Panics
/// Panics if a teacher is supplied whose rows don't align with
/// `train_idx`.
pub fn train_depth_classifier(
    clf: &mut DepthClassifier,
    depth_feats: &[DenseMatrix],
    train_idx: &[u32],
    labels: &[u32],
    distill: Option<DepthDistillation<'_>>,
    val_idx: &[u32],
    cfg: &TrainConfig,
) -> TrainReport {
    if let Some(d) = &distill {
        assert_eq!(
            d.teacher_logits.rows(),
            train_idx.len(),
            "teacher logits must align with train_idx"
        );
    }
    let levels = clf.depth() + 1;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = train_idx.len();
    let batch = if cfg.batch_size == 0 || cfg.batch_size >= n {
        n
    } else {
        cfg.batch_size
    };
    // Pre-gather validation features once.
    let val_usize: Vec<usize> = val_idx.iter().map(|&v| v as usize).collect();
    let val_feats = gather_depth_feats(depth_feats, levels, &val_usize);
    let val_labels: Vec<u32> = val_idx.iter().map(|&v| labels[v as usize]).collect();
    let val_all: Vec<usize> = (0..val_labels.len()).collect();

    // Positions into train_idx, shuffled per epoch.
    let mut order: Vec<usize> = (0..n).collect();
    let mut best_val = -1.0f64;
    let mut best_snap = clf.snapshot();
    let mut since_best = 0usize;
    let mut epochs_run = 0usize;
    let mut last_loss = 0.0f32;

    // Full-batch fast path: the gradient is order-independent, so gather
    // the training features once instead of re-gathering every epoch.
    let full_batch = batch == n;
    let full_rows: Vec<usize> = train_idx.iter().map(|&v| v as usize).collect();
    let full_feats = if full_batch {
        Some(gather_depth_feats(depth_feats, levels, &full_rows))
    } else {
        None
    };
    let full_labels: Vec<u32> = full_rows.iter().map(|&r| labels[r]).collect();

    // Scratch buffers reused by the minibatch path.
    let mut mb_rows: Vec<usize> = Vec::with_capacity(batch);
    let mut mb_labels: Vec<u32> = Vec::with_capacity(batch);

    for _ in 0..cfg.epochs {
        epochs_run += 1;
        if !full_batch {
            order.shuffle(&mut rng);
        }
        let mut epoch_loss = 0.0f32;
        let mut batches = 0usize;
        for chunk in order.chunks(batch) {
            let mb_feats;
            let (feats, yb): (&[DenseMatrix], &[u32]) = if let Some(ff) = &full_feats {
                (ff.as_slice(), full_labels.as_slice())
            } else {
                mb_rows.clear();
                mb_rows.extend(chunk.iter().map(|&p| train_idx[p] as usize));
                mb_labels.clear();
                mb_labels.extend(mb_rows.iter().map(|&r| labels[r]));
                mb_feats = gather_depth_feats(depth_feats, levels, &mb_rows);
                (mb_feats.as_slice(), mb_labels.as_slice())
            };
            clf.zero_grads();
            let logits = clf.forward_train(feats, &mut rng);
            let (loss, dlogits) = match &distill {
                None => softmax_cross_entropy(&logits, yb),
                Some(d) => {
                    let tb = d
                        .teacher_logits
                        .gather_rows(chunk)
                        .expect("teacher aligned with train_idx");
                    let (ce, mut dce) = softmax_cross_entropy(&logits, yb);
                    let (kd, dkd) = distillation_loss(&logits, &tb, d.temperature);
                    let t2 = d.temperature * d.temperature;
                    dce.scale(1.0 - d.lambda);
                    dce.axpy(d.lambda * t2, &dkd).expect("grad shapes");
                    ((1.0 - d.lambda) * ce + d.lambda * t2 * kd, dce)
                }
            };
            epoch_loss += loss;
            batches += 1;
            clf.backward(&dlogits);
            clf.apply_grads(&cfg.adam);
        }
        last_loss = epoch_loss / batches.max(1) as f32;

        let val_acc = if val_labels.is_empty() {
            -last_loss as f64
        } else {
            let pred = argmax_rows(&clf.forward(&val_feats));
            accuracy(&pred, &val_labels, &val_all)
        };
        if val_acc > best_val {
            best_val = val_acc;
            best_snap = clf.snapshot();
            since_best = 0;
        } else {
            since_best += 1;
            if since_best > cfg.patience {
                break;
            }
        }
    }
    clf.restore(&best_snap);
    TrainReport {
        best_val_acc: best_val.max(0.0),
        epochs_run,
        final_train_loss: last_loss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagation::propagate_features;
    use crate::ModelKind;
    use nai_graph::generators::{generate, GeneratorConfig};
    use nai_graph::{normalized_adjacency, Convolution};
    use nai_nn::adam::Adam;

    /// Shared fixture: small homophilous graph + propagated features.
    fn fixture(seed: u64) -> (Vec<DenseMatrix>, Vec<u32>, Vec<u32>, Vec<u32>, usize) {
        let g = generate(
            &GeneratorConfig {
                num_nodes: 300,
                num_classes: 3,
                avg_degree: 10.0,
                feature_dim: 8,
                feature_noise: 2.0,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(seed),
        );
        let norm = normalized_adjacency(&g.adj, Convolution::Symmetric);
        let feats = propagate_features(&norm, &g.features, 3);
        let train: Vec<u32> = (0..200u32).collect();
        let val: Vec<u32> = (200..300u32).collect();
        (feats, g.labels.clone(), train, val, g.num_classes)
    }

    #[test]
    fn all_kinds_beat_majority_class() {
        let (feats, labels, train, val, c) = fixture(31);
        for kind in ModelKind::all() {
            let mut rng = StdRng::seed_from_u64(32);
            let mut clf = DepthClassifier::new(kind, 3, 8, c, &[16], 0.1, &mut rng);
            let report = train_depth_classifier(
                &mut clf,
                &feats,
                &train,
                &labels,
                None,
                &val,
                &TrainConfig {
                    epochs: 80,
                    patience: 15,
                    adam: Adam::new(0.02, 0.0),
                    ..TrainConfig::default()
                },
            );
            assert!(
                report.best_val_acc > 0.55,
                "{kind:?} val acc {}",
                report.best_val_acc
            );
        }
    }

    #[test]
    fn propagated_features_beat_raw_features() {
        // The generator's feature noise makes depth-0 classification hard;
        // depth-3 should be clearly better. This is the phenomenon NAI
        // exploits.
        let (feats, labels, train, val, c) = fixture(33);
        let acc_at = |depth: usize| {
            let mut rng = StdRng::seed_from_u64(34);
            let mut clf = DepthClassifier::new(ModelKind::Sgc, depth, 8, c, &[], 0.0, &mut rng);
            train_depth_classifier(
                &mut clf,
                &feats,
                &train,
                &labels,
                None,
                &val,
                &TrainConfig {
                    epochs: 60,
                    patience: 15,
                    adam: Adam::new(0.05, 0.0),
                    ..TrainConfig::default()
                },
            )
            .best_val_acc
        };
        let raw = acc_at(0);
        let deep = acc_at(3);
        assert!(
            deep > raw + 0.05,
            "propagation should help: raw {raw} vs deep {deep}"
        );
    }

    #[test]
    fn distillation_improves_or_matches_shallow_student() {
        let (feats, labels, train, val, c) = fixture(35);
        // Teacher at depth 3.
        let mut rng = StdRng::seed_from_u64(36);
        let mut teacher = DepthClassifier::new(ModelKind::Sgc, 3, 8, c, &[16], 0.0, &mut rng);
        let cfg = TrainConfig {
            epochs: 80,
            patience: 15,
            adam: Adam::new(0.02, 0.0),
            ..TrainConfig::default()
        };
        train_depth_classifier(&mut teacher, &feats, &train, &labels, None, &val, &cfg);
        let train_usize: Vec<usize> = train.iter().map(|&v| v as usize).collect();
        let tfeats = gather_depth_feats(&feats, 4, &train_usize);
        let teacher_logits = teacher.forward(&tfeats);

        let mut student = DepthClassifier::new(ModelKind::Sgc, 1, 8, c, &[16], 0.0, &mut rng);
        let plain = train_depth_classifier(&mut student, &feats, &train, &labels, None, &val, &cfg)
            .best_val_acc;
        let mut student_kd = DepthClassifier::new(
            ModelKind::Sgc,
            1,
            8,
            c,
            &[16],
            0.0,
            &mut StdRng::seed_from_u64(37),
        );
        let kd = train_depth_classifier(
            &mut student_kd,
            &feats,
            &train,
            &labels,
            Some(DepthDistillation {
                teacher_logits: &teacher_logits,
                temperature: 1.5,
                lambda: 0.5,
            }),
            &val,
            &cfg,
        )
        .best_val_acc;
        // KD should not be catastrophically worse; usually it helps.
        assert!(kd > plain - 0.08, "plain {plain} vs kd {kd}");
    }

    #[test]
    fn gather_depth_feats_aligns_rows() {
        let (feats, _, _, _, _) = fixture(38);
        let g = gather_depth_feats(&feats, 2, &[5, 1]);
        assert_eq!(g.len(), 2);
        assert_eq!(g[0].row(0), feats[0].row(5));
        assert_eq!(g[1].row(1), feats[1].row(1));
    }
}
