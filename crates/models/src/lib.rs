//! Scalable GNNs on precomputed propagated features.
//!
//! All four base models of the paper share the same skeleton (Fig. 1 (b–c)):
//! non-parametric feature propagation `X^(l) = Â X^(l−1)` done once
//! ([`propagation`]), followed by a trainable classifier over the
//! propagated features. They differ only in how features from multiple
//! depths are combined before classification:
//!
//! | model | combination (Eq.) | here |
//! |-------|-------------------|------|
//! | SGC   | `X^(k)` (Eq. 2)   | [`combine::CombineRule::Last`] |
//! | SIGN  | `X^(0)W₀ ‖ … ‖ X^(k)W_k` (Eq. 3) | [`combine::CombineRule::Concat`] — the per-depth transforms are folded into the first classifier layer over the concatenation, an equivalent parameterisation |
//! | S²GC  | `(1/k) Σ X^(l)` (Eq. 4) | [`combine::CombineRule::Average`] |
//! | GAMLP | `Σ T^(l) X^(l)` (Eq. 5) | [`gamlp::GamlpHead`] — trainable node-wise attention over depths ("basic" GAMLP) |
//!
//! [`classifier::DepthClassifier`] wraps combination + MLP into the
//! per-depth classifiers `f^(l)` that the NAI framework trains and deploys
//! (one per candidate exit depth).

pub mod classifier;
pub mod combine;
pub mod gamlp;
pub mod propagation;
pub mod train;

pub use classifier::DepthClassifier;
pub use combine::CombineRule;
pub use propagation::propagate_features;

/// Which Scalable GNN the pipeline reproduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Simplified Graph Convolution (Wu et al.).
    Sgc,
    /// Scalable Inception Graph Networks (Frasca et al.).
    Sign,
    /// Simple Spectral Graph Convolution (Zhu & Koniusz).
    S2gc,
    /// Graph Attention MLP, basic variant (Zhang et al.).
    Gamlp,
}

impl ModelKind {
    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Sgc => "SGC",
            ModelKind::Sign => "SIGN",
            ModelKind::S2gc => "S2GC",
            ModelKind::Gamlp => "GAMLP",
        }
    }

    /// All four, in paper order.
    pub fn all() -> [ModelKind; 4] {
        [
            ModelKind::Sgc,
            ModelKind::Sign,
            ModelKind::S2gc,
            ModelKind::Gamlp,
        ]
    }
}
