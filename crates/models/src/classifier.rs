//! Per-depth classifiers `f^(l)`.
//!
//! The NAI framework trains one classifier per candidate exit depth
//! (Fig. 2). A [`DepthClassifier`] bundles the model-specific multi-depth
//! combination (stateless rule or GAMLP attention head) with an MLP, and
//! exposes a uniform train/infer interface used by the inference engine and
//! by Inception Distillation.

use crate::combine::CombineRule;
use crate::gamlp::GamlpHead;
use crate::ModelKind;
use nai_linalg::DenseMatrix;
use nai_nn::adam::Adam;
use nai_nn::mlp::{Mlp, MlpConfig};
use rand::Rng;

/// A classifier operating on propagated features up to a fixed depth.
#[derive(Debug, Clone)]
pub struct DepthClassifier {
    kind: ModelKind,
    depth: usize,
    feature_dim: usize,
    rule: Option<CombineRule>,
    gamlp: Option<GamlpHead>,
    /// The MLP head (public for distillation code that needs raw layers).
    pub mlp: Mlp,
}

/// Snapshot of all trainable state of a [`DepthClassifier`].
#[derive(Debug, Clone)]
pub struct ClassifierSnapshot {
    mlp: Vec<(Vec<f32>, Vec<f32>)>,
    gamlp: Option<(Vec<f32>, Vec<f32>)>,
}

impl ClassifierSnapshot {
    /// Per-layer `(weights, bias)` of the MLP head.
    pub fn mlp_layers(&self) -> &[(Vec<f32>, Vec<f32>)] {
        &self.mlp
    }

    /// GAMLP attention parameters, when the base model is GAMLP.
    pub fn gamlp_params(&self) -> Option<&(Vec<f32>, Vec<f32>)> {
        self.gamlp.as_ref()
    }

    /// Reassembles a snapshot from raw parts (checkpoint deserialization).
    pub fn from_parts(mlp: Vec<(Vec<f32>, Vec<f32>)>, gamlp: Option<(Vec<f32>, Vec<f32>)>) -> Self {
        Self { mlp, gamlp }
    }
}

impl DepthClassifier {
    /// Builds `f^(depth)` for the given base model.
    pub fn new<R: Rng>(
        kind: ModelKind,
        depth: usize,
        feature_dim: usize,
        num_classes: usize,
        hidden: &[usize],
        dropout: f32,
        rng: &mut R,
    ) -> Self {
        let (rule, gamlp) = match kind {
            ModelKind::Sgc => (Some(CombineRule::Last), None),
            ModelKind::Sign => (Some(CombineRule::Concat), None),
            ModelKind::S2gc => (Some(CombineRule::Average), None),
            ModelKind::Gamlp => (None, Some(GamlpHead::new(feature_dim, depth, rng))),
        };
        let in_dim = match rule {
            Some(r) => r.input_dim(feature_dim, depth),
            None => feature_dim,
        };
        let mlp = Mlp::new(
            &MlpConfig {
                in_dim,
                hidden: hidden.to_vec(),
                out_dim: num_classes,
                dropout,
            },
            rng,
        );
        Self {
            kind,
            depth,
            feature_dim,
            rule,
            gamlp,
            mlp,
        }
    }

    /// Base-model kind.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// Exit depth `l` this classifier serves.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Inference logits from per-depth feature matrices (aligned rows;
    /// `depth_feats[t]` holds `X^(t)`).
    pub fn forward(&self, depth_feats: &[DenseMatrix]) -> DenseMatrix {
        let input = self.combine_input(depth_feats);
        self.mlp.forward(&input)
    }

    /// The classifier's MLP input built from per-depth features — the
    /// model-specific combination stage alone (used by the quantization
    /// baseline, which swaps the MLP for an INT8 head but keeps the
    /// combination in f32).
    pub fn combine_input(&self, depth_feats: &[DenseMatrix]) -> DenseMatrix {
        match (&self.rule, &self.gamlp) {
            (Some(rule), _) => rule.combine(depth_feats, self.depth),
            (None, Some(head)) => head.combine(depth_feats),
            _ => unreachable!("classifier has either a rule or a gamlp head"),
        }
    }

    /// Training forward (dropout active, caches kept for backward).
    pub fn forward_train<R: Rng>(
        &mut self,
        depth_feats: &[DenseMatrix],
        rng: &mut R,
    ) -> DenseMatrix {
        let input = match (&self.rule, &mut self.gamlp) {
            (Some(rule), _) => rule.combine(depth_feats, self.depth),
            (None, Some(head)) => head.forward_train(depth_feats),
            _ => unreachable!("classifier has either a rule or a gamlp head"),
        };
        self.mlp.forward_train(&input, rng)
    }

    /// Backward from logits gradient; accumulates into the MLP and (for
    /// GAMLP) the attention head.
    pub fn backward(&mut self, dlogits: &DenseMatrix) {
        let dinput = self.mlp.backward(dlogits);
        if let Some(head) = &mut self.gamlp {
            head.backward(&dinput);
        }
    }

    /// Zeroes all gradients.
    pub fn zero_grads(&mut self) {
        self.mlp.zero_grads();
        if let Some(h) = &mut self.gamlp {
            h.zero_grads();
        }
    }

    /// Applies all gradients.
    pub fn apply_grads(&mut self, opt: &Adam) {
        self.mlp.apply_grads(opt);
        if let Some(h) = &mut self.gamlp {
            h.apply_grads(opt);
        }
    }

    /// Snapshot of every trainable tensor.
    pub fn snapshot(&self) -> ClassifierSnapshot {
        ClassifierSnapshot {
            mlp: self.mlp.snapshot(),
            gamlp: self.gamlp.as_ref().map(|h| h.snapshot()),
        }
    }

    /// Restores a snapshot.
    ///
    /// # Panics
    /// Panics on architecture mismatch.
    pub fn restore(&mut self, snap: &ClassifierSnapshot) {
        self.mlp.restore(&snap.mlp);
        match (&mut self.gamlp, &snap.gamlp) {
            (Some(h), Some(s)) => h.restore(s),
            (None, None) => {}
            _ => panic!("snapshot/classifier GAMLP mismatch"),
        }
    }

    /// MACs per node to build the classifier input at inference.
    pub fn combine_macs_per_node(&self) -> u64 {
        match (&self.rule, &self.gamlp) {
            (Some(rule), _) => rule.combine_macs_per_node(self.feature_dim, self.depth),
            (None, Some(head)) => head.combine_macs_per_node(self.feature_dim),
            _ => unreachable!(),
        }
    }

    /// MACs per node for the MLP head.
    pub fn head_macs_per_node(&self) -> u64 {
        self.mlp.macs_per_row()
    }

    /// Total classification MACs per node (combination + head), the
    /// `nf²`-type terms of Table I.
    pub fn macs_per_node(&self) -> u64 {
        self.combine_macs_per_node() + self.head_macs_per_node()
    }

    /// Trainable parameter count.
    pub fn num_params(&self) -> usize {
        self.mlp.num_params() + self.gamlp.as_ref().map_or(0, |h| h.num_params())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn feats(levels: usize, rows: usize, f: usize, seed: u64) -> Vec<DenseMatrix> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..levels)
            .map(|_| nai_linalg::init::gaussian(rows, f, 1.0, &mut rng))
            .collect()
    }

    #[test]
    fn input_dims_per_kind() {
        let mut rng = StdRng::seed_from_u64(1);
        let f = 6;
        let c = 3;
        for (kind, want_in) in [
            (ModelKind::Sgc, f),
            (ModelKind::Sign, 3 * f),
            (ModelKind::S2gc, f),
            (ModelKind::Gamlp, f),
        ] {
            let clf = DepthClassifier::new(kind, 2, f, c, &[8], 0.0, &mut rng);
            assert_eq!(clf.mlp.in_dim(), want_in, "{kind:?}");
            assert_eq!(clf.mlp.out_dim(), c);
        }
    }

    #[test]
    fn forward_shapes_per_kind() {
        let mut rng = StdRng::seed_from_u64(2);
        let fs = feats(3, 5, 6, 3);
        for kind in ModelKind::all() {
            let clf = DepthClassifier::new(kind, 2, 6, 4, &[], 0.0, &mut rng);
            let logits = clf.forward(&fs);
            assert_eq!(logits.shape(), (5, 4), "{kind:?}");
        }
    }

    #[test]
    fn train_step_decreases_loss_for_all_kinds() {
        let fs = feats(3, 40, 6, 4);
        let labels: Vec<u32> = (0..40).map(|i| (i % 3) as u32).collect();
        for kind in ModelKind::all() {
            let mut rng = StdRng::seed_from_u64(5);
            let mut clf = DepthClassifier::new(kind, 2, 6, 3, &[16], 0.0, &mut rng);
            let opt = Adam::new(0.01, 0.0);
            let mut first = None;
            let mut last = 0.0;
            for _ in 0..60 {
                clf.zero_grads();
                let logits = clf.forward_train(&fs, &mut rng);
                let (loss, d) = nai_nn::loss::softmax_cross_entropy(&logits, &labels);
                clf.backward(&d);
                clf.apply_grads(&opt);
                if first.is_none() {
                    first = Some(loss);
                }
                last = loss;
            }
            assert!(last < first.unwrap(), "{kind:?}: loss {first:?} -> {last}");
        }
    }

    #[test]
    fn snapshot_restore_all_kinds() {
        let fs = feats(2, 4, 5, 6);
        for kind in ModelKind::all() {
            let mut rng = StdRng::seed_from_u64(7);
            let mut clf = DepthClassifier::new(kind, 1, 5, 2, &[], 0.0, &mut rng);
            let snap = clf.snapshot();
            let before = clf.forward(&fs);
            let opt = Adam::new(0.1, 0.0);
            clf.zero_grads();
            let logits = clf.forward_train(&fs, &mut rng);
            let (_, d) = nai_nn::loss::softmax_cross_entropy(&logits, &[0, 1, 0, 1]);
            clf.backward(&d);
            clf.apply_grads(&opt);
            clf.restore(&snap);
            let after = clf.forward(&fs);
            assert_eq!(before.as_slice(), after.as_slice(), "{kind:?}");
        }
    }

    #[test]
    fn mac_accounting_is_kind_specific() {
        let mut rng = StdRng::seed_from_u64(8);
        let f = 10;
        let sgc = DepthClassifier::new(ModelKind::Sgc, 3, f, 4, &[], 0.0, &mut rng);
        assert_eq!(sgc.macs_per_node(), (f * 4) as u64);
        let sign = DepthClassifier::new(ModelKind::Sign, 3, f, 4, &[], 0.0, &mut rng);
        assert_eq!(sign.macs_per_node(), (4 * f * 4) as u64);
        let s2gc = DepthClassifier::new(ModelKind::S2gc, 3, f, 4, &[], 0.0, &mut rng);
        assert_eq!(s2gc.macs_per_node(), (4 * f) as u64 + (f * 4) as u64);
        let gamlp = DepthClassifier::new(ModelKind::Gamlp, 3, f, 4, &[], 0.0, &mut rng);
        assert_eq!(gamlp.macs_per_node(), (2 * 4 * f) as u64 + (f * 4) as u64);
    }
}
