//! GAMLP's node-wise attention over propagation depths (Eq. 5, "basic"
//! variant).
//!
//! Each node receives per-depth scores `e_t = σ(X^(t) a)` from a shared
//! trainable vector `a`, normalised across depths with a softmax; the
//! classifier input is the attention-weighted sum `Σ_t w_t ⊙ X^(t)`. This
//! is the `T^(l)` diagonal node-wise attention of the paper with the
//! attention logits produced by a single scoring head — the "basic version
//! of GAMLP which utilizes the attention mechanism in feature propagation"
//! (§III-B).

use nai_linalg::ops::{sigmoid, softmax_slice};
use nai_linalg::DenseMatrix;
use nai_nn::adam::Adam;
use nai_nn::linear::Linear;
use rand::Rng;

#[derive(Debug, Clone)]
struct GamlpCache {
    /// Per-depth inputs for the cached batch.
    inputs: Vec<DenseMatrix>,
    /// σ-activated scores, `batch × (depth+1)`.
    scores: DenseMatrix,
    /// Softmax weights, `batch × (depth+1)`.
    weights: DenseMatrix,
}

/// Trainable attention combiner over depths `0..=depth`.
#[derive(Debug, Clone)]
pub struct GamlpHead {
    /// Shared scoring head `a : f × 1`.
    score: Linear,
    depth: usize,
    cache: Option<GamlpCache>,
}

impl GamlpHead {
    /// New head for features of dim `f`, combining `depth + 1` levels.
    pub fn new<R: Rng>(feature_dim: usize, depth: usize, rng: &mut R) -> Self {
        Self {
            score: Linear::new(feature_dim, 1, rng),
            depth,
            cache: None,
        }
    }

    /// Highest depth this head combines.
    pub fn depth(&self) -> usize {
        self.depth
    }

    fn attention(&self, depth_feats: &[DenseMatrix]) -> (DenseMatrix, DenseMatrix) {
        let l = self.depth;
        let rows = depth_feats[0].rows();
        let mut scores = DenseMatrix::zeros(rows, l + 1);
        for (t, xt) in depth_feats[..=l].iter().enumerate() {
            let raw = self.score.forward_infer(xt); // rows × 1
            for r in 0..rows {
                scores.set(r, t, sigmoid(raw.get(r, 0)));
            }
        }
        let mut weights = scores.clone();
        let cols = weights.cols();
        for row in weights.as_mut_slice().chunks_mut(cols) {
            softmax_slice(row);
        }
        (scores, weights)
    }

    fn mix(weights: &DenseMatrix, depth_feats: &[DenseMatrix], l: usize) -> DenseMatrix {
        let rows = depth_feats[0].rows();
        let f = depth_feats[0].cols();
        let mut out = DenseMatrix::zeros(rows, f);
        for (t, xt) in depth_feats[..=l].iter().enumerate() {
            for r in 0..rows {
                let w = weights.get(r, t);
                let orow = out.row_mut(r);
                for (o, &x) in orow.iter_mut().zip(xt.row(r)) {
                    *o += w * x;
                }
            }
        }
        out
    }

    /// Inference combination: `Σ_t softmax_t(σ(X^(t) a)) ⊙ X^(t)`.
    ///
    /// # Panics
    /// Panics if fewer than `depth + 1` feature levels are supplied.
    pub fn combine(&self, depth_feats: &[DenseMatrix]) -> DenseMatrix {
        assert!(
            depth_feats.len() > self.depth,
            "need depth+1 feature levels"
        );
        let (_, weights) = self.attention(depth_feats);
        Self::mix(&weights, depth_feats, self.depth)
    }

    /// Training combination with cache for [`Self::backward`].
    pub fn forward_train(&mut self, depth_feats: &[DenseMatrix]) -> DenseMatrix {
        assert!(
            depth_feats.len() > self.depth,
            "need depth+1 feature levels"
        );
        let (scores, weights) = self.attention(depth_feats);
        let out = Self::mix(&weights, depth_feats, self.depth);
        self.cache = Some(GamlpCache {
            inputs: depth_feats[..=self.depth].to_vec(),
            scores,
            weights,
        });
        out
    }

    /// Backward from the gradient of the combined features; accumulates the
    /// scoring-head gradient. Input gradients are not produced (propagated
    /// features are leaves).
    ///
    /// # Panics
    /// Panics if called without a cached training forward.
    pub fn backward(&mut self, d_combined: &DenseMatrix) {
        let cache = self
            .cache
            .take()
            .expect("backward called without training forward");
        let l = self.depth;
        let rows = d_combined.rows();
        // dw[r][t] = dcombined[r] · X^(t)[r]
        let mut dw = DenseMatrix::zeros(rows, l + 1);
        for (t, xt) in cache.inputs.iter().enumerate() {
            for r in 0..rows {
                dw.set(r, t, nai_linalg::ops::dot(d_combined.row(r), xt.row(r)));
            }
        }
        // Softmax backward per row, then sigmoid backward.
        let mut dscore_raw = DenseMatrix::zeros(rows, l + 1); // grad wrt pre-sigmoid logit
        for r in 0..rows {
            let w = cache.weights.row(r);
            let dwr = dw.row(r);
            let dot: f32 = w.iter().zip(dwr.iter()).map(|(a, b)| a * b).sum();
            for t in 0..=l {
                let de = w[t] * (dwr[t] - dot); // d loss / d score_t (post-sigmoid)
                let s = cache.scores.get(r, t);
                dscore_raw.set(r, t, de * s * (1.0 - s));
            }
        }
        // Route per-depth logit gradients through the shared scoring layer.
        for (t, xt) in cache.inputs.iter().enumerate() {
            // Re-run the layer forward in train mode to set its input cache,
            // then backprop the column gradient.
            let _ = self.score.forward(xt, true);
            let mut col = DenseMatrix::zeros(rows, 1);
            for r in 0..rows {
                col.set(r, 0, dscore_raw.get(r, t));
            }
            let _ = self.score.backward(&col);
        }
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grads(&mut self) {
        self.score.zero_grads();
    }

    /// Applies accumulated gradients.
    pub fn apply_grads(&mut self, opt: &Adam) {
        self.score.apply_grads(opt);
    }

    /// Parameter snapshot.
    pub fn snapshot(&self) -> (Vec<f32>, Vec<f32>) {
        self.score.snapshot()
    }

    /// Restores a snapshot.
    pub fn restore(&mut self, snap: &(Vec<f32>, Vec<f32>)) {
        self.score.restore(snap);
    }

    /// MACs per node: scoring each depth (`(l+1)·f`) plus the weighted sum
    /// (`(l+1)·f`).
    pub fn combine_macs_per_node(&self, f: usize) -> u64 {
        (2 * (self.depth + 1) * f) as u64
    }

    /// Trainable parameter count.
    pub fn num_params(&self) -> usize {
        self.score.num_params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn feats(rows: usize, f: usize, levels: usize, seed: u64) -> Vec<DenseMatrix> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..levels)
            .map(|_| nai_linalg::init::gaussian(rows, f, 1.0, &mut rng))
            .collect()
    }

    #[test]
    fn combine_is_convex_mixture() {
        let mut rng = StdRng::seed_from_u64(1);
        let head = GamlpHead::new(3, 2, &mut rng);
        let fs = feats(4, 3, 3, 2);
        let out = head.combine(&fs);
        assert_eq!(out.shape(), (4, 3));
        // Each output element lies within per-depth min/max.
        for r in 0..4 {
            for c in 0..3 {
                let vals: Vec<f32> = (0..3).map(|t| fs[t].get(r, c)).collect();
                let lo = vals.iter().cloned().fold(f32::INFINITY, f32::min);
                let hi = vals.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                let v = out.get(r, c);
                assert!(v >= lo - 1e-5 && v <= hi + 1e-5);
            }
        }
    }

    #[test]
    fn train_and_infer_agree() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut head = GamlpHead::new(3, 1, &mut rng);
        let fs = feats(5, 3, 2, 4);
        let a = head.combine(&fs);
        let b = head.forward_train(&fs);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn score_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut head = GamlpHead::new(3, 2, &mut rng);
        let fs = feats(4, 3, 3, 6);
        // Loss = sum(out²)/2.
        head.zero_grads();
        let out = head.forward_train(&fs);
        head.backward(&out);
        let analytic = head.score.grad_w().get(1, 0);
        let eps = 1e-3f32;
        let orig = head.score.w.get(1, 0);
        let loss_with = |head: &GamlpHead| -> f32 {
            let o = head.combine(&fs);
            o.as_slice().iter().map(|v| v * v / 2.0).sum()
        };
        head.score.w.set(1, 0, orig + eps);
        let lp = loss_with(&head);
        head.score.w.set(1, 0, orig - eps);
        let lm = loss_with(&head);
        head.score.w.set(1, 0, orig);
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
            "numeric {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    fn learns_to_prefer_informative_depth() {
        // Depth 1 carries the target signal, depth 0 is noise. Training the
        // head to regress the depth-1 features should push weights toward
        // depth 1.
        let mut rng = StdRng::seed_from_u64(7);
        let mut head = GamlpHead::new(4, 1, &mut rng);
        let noise = feats(64, 4, 1, 8).remove(0);
        let mut signal = nai_linalg::init::gaussian(64, 4, 1.0, &mut rng);
        for v in signal.as_mut_slice() {
            *v += 2.0; // biased so the score head can separate the depths
        }
        let fs = vec![noise, signal.clone()];
        let opt = Adam::new(0.05, 0.0);
        for _ in 0..300 {
            head.zero_grads();
            let out = head.forward_train(&fs);
            let mut d = out.clone();
            d.axpy(-1.0, &signal).unwrap();
            head.backward(&d);
            head.apply_grads(&opt);
        }
        let (_, w) = head.attention(&fs);
        // Sigmoid scores live in (0, 1), so the softmax weight over two
        // depths is structurally capped at σ→1 vs σ→0: e/(e+1) ≈ 0.731.
        let mean_w1: f32 = (0..64).map(|r| w.get(r, 1)).sum::<f32>() / 64.0;
        assert!(mean_w1 > 0.65, "weight on informative depth {mean_w1}");
    }

    #[test]
    fn snapshot_restore() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut head = GamlpHead::new(3, 1, &mut rng);
        let snap = head.snapshot();
        head.score.w.set(0, 0, 123.0);
        head.restore(&snap);
        assert_ne!(head.score.w.get(0, 0), 123.0);
    }

    #[test]
    fn macs_counts_scale_with_depth() {
        let mut rng = StdRng::seed_from_u64(10);
        let head = GamlpHead::new(8, 3, &mut rng);
        assert_eq!(head.combine_macs_per_node(8), 2 * 4 * 8);
    }
}
