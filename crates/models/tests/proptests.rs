//! Property-based tests for propagation and multi-depth combination.

use nai_graph::csr::CsrMatrix;
use nai_graph::normalize::{normalized_adjacency, Convolution};
use nai_linalg::DenseMatrix;
use nai_models::{propagate_features, CombineRule};
use proptest::prelude::*;

fn graph_and_features() -> impl Strategy<Value = (CsrMatrix, DenseMatrix)> {
    (4usize..25).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 1..n * 2);
        let feats = proptest::collection::vec(-4.0f32..4.0, n * 3);
        (Just(n), edges, feats).prop_map(|(n, e, f)| {
            (
                CsrMatrix::undirected_adjacency(n, &e).unwrap(),
                DenseMatrix::from_vec(n, 3, f),
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Propagation is linear: P(aX + bY) = aP(X) + bP(Y) at every depth.
    #[test]
    fn propagation_is_linear((adj, x) in graph_and_features(), a in -2.0f32..2.0) {
        let norm = normalized_adjacency(&adj, Convolution::Symmetric);
        let mut ax = x.clone();
        ax.scale(a);
        let p_x = propagate_features(&norm, &x, 3);
        let p_ax = propagate_features(&norm, &ax, 3);
        for (px, pax) in p_x.iter().zip(p_ax.iter()) {
            let mut scaled = px.clone();
            scaled.scale(a);
            for (s, g) in scaled.as_slice().iter().zip(pax.as_slice()) {
                prop_assert!((s - g).abs() < 1e-3 * (1.0 + s.abs()));
            }
        }
    }

    /// Depth-l features computed in one shot equal incremental computation.
    #[test]
    fn propagation_composes((adj, x) in graph_and_features()) {
        let norm = normalized_adjacency(&adj, Convolution::Symmetric);
        let all = propagate_features(&norm, &x, 4);
        // Propagate the depth-2 output two more times.
        let tail = propagate_features(&norm, &all[2], 2);
        for (a, b) in all[4].as_slice().iter().zip(tail[2].as_slice()) {
            prop_assert!((a - b).abs() < 1e-3 * (1.0 + a.abs()));
        }
    }

    /// Row-stochastic propagation preserves per-row value bounds
    /// (each output value is a convex combination of inputs).
    #[test]
    fn row_stochastic_propagation_is_bounded((adj, x) in graph_and_features()) {
        let norm = normalized_adjacency(&adj, Convolution::ReverseTransition);
        let (lo, hi) = x.as_slice().iter().fold(
            (f32::INFINITY, f32::NEG_INFINITY),
            |(l, h), &v| (l.min(v), h.max(v)),
        );
        let out = propagate_features(&norm, &x, 5);
        for level in &out {
            for &v in level.as_slice() {
                prop_assert!(v >= lo - 1e-4 && v <= hi + 1e-4, "{v} outside [{lo},{hi}]");
            }
        }
    }

    /// Average combine equals the mean of Last combines.
    #[test]
    fn average_combine_is_mean_of_levels((adj, x) in graph_and_features()) {
        let norm = normalized_adjacency(&adj, Convolution::Symmetric);
        let levels = propagate_features(&norm, &x, 3);
        let avg = CombineRule::Average.combine(&levels, 3);
        let mut manual = DenseMatrix::zeros(x.rows(), x.cols());
        for l in 0..=3 {
            manual.add_assign(&CombineRule::Last.combine(&levels, l)).unwrap();
        }
        manual.scale(0.25);
        for (a, b) in avg.as_slice().iter().zip(manual.as_slice()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    /// Concat combine contains every level verbatim, in order.
    #[test]
    fn concat_combine_preserves_levels((adj, x) in graph_and_features()) {
        let norm = normalized_adjacency(&adj, Convolution::Symmetric);
        let levels = propagate_features(&norm, &x, 2);
        let cat = CombineRule::Concat.combine(&levels, 2);
        let f = x.cols();
        for r in 0..x.rows() {
            for (l, level) in levels.iter().enumerate() {
                prop_assert_eq!(&cat.row(r)[l * f..(l + 1) * f], level.row(r));
            }
        }
    }
}
