//! The rule engine: project-invariant checks over a file's token
//! stream, plus the reasoned-suppression (`nai-lint: allow`) layer.
//!
//! Every rule reports `file:line:col [rule-id] message` diagnostics.
//! A finding can be silenced only by a suppression comment **with a
//! reason** on the same line or the line immediately above:
//!
//! ```text
//! // nai-lint: allow(rule-id, other-rule) -- why this is sound here
//! ```
//!
//! An `allow` without a reason is itself a finding (`malformed-allow`)
//! and suppresses nothing — the lint wall cannot be waved away
//! silently.

use crate::diag::Diagnostic;
use crate::lexer::{lex, Token, TokenKind};
use std::collections::BTreeSet;

/// Crates whose `src/` must route concurrency and clock primitives
/// through their `crate::sync` facade (swapped for the loom model
/// checker under `--cfg nai_model`).
pub const FACADE_CRATES: [&str; 3] = ["nai-serve", "nai-obs", "nai-stream"];

/// Crates whose non-test library code must not contain panic paths or
/// debug printing (the serving hot path plus the inference core).
pub const PANIC_CRATES: [&str; 4] = ["nai-serve", "nai-obs", "nai-stream", "nai-core"];

/// Atomic orderings that demand an invariant comment at the use site.
const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Macros forbidden on the hot path (`panic!`-class plus debug I/O).
const PANIC_MACROS: [&str; 6] = [
    "panic",
    "todo",
    "unimplemented",
    "dbg",
    "println",
    "eprintln",
];

/// Where a file sits in the workspace — determines which rules apply.
#[derive(Debug, Clone, Default)]
pub struct FileSpec {
    /// Path used in diagnostics (workspace-relative when known).
    pub display_path: String,
    /// Name of the owning crate (from its `Cargo.toml`), if any.
    pub crate_name: Option<String>,
    /// Whether the file is under the crate's `src/` tree (library
    /// code, as opposed to `tests/`, `benches/`, `examples/`).
    pub in_src: bool,
    /// Whether the file *is* the crate's `src/sync.rs` facade — the
    /// one module allowed to name `std::sync` / `std::thread` /
    /// `std::time::Instant`.
    pub is_sync_facade: bool,
}

impl FileSpec {
    fn crate_in(&self, set: &[&str]) -> bool {
        self.crate_name.as_deref().is_some_and(|n| set.contains(&n))
    }
}

/// A parsed `nai-lint: allow(…) -- reason` directive.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule ids listed inside `allow(…)`.
    pub rules: Vec<String>,
    /// First line of the carrying comment.
    pub line: u32,
    /// Last line of the carrying comment (block comments may span).
    pub end_line: u32,
}

/// Parses the directive out of a comment body. Returns:
/// - `None` — the comment is not a `nai-lint:` directive at all;
/// - `Some(Err(msg))` — it tries to be one but is malformed
///   (unknown verb, missing rule list, or missing reason);
/// - `Some(Ok(rules))` — a well-formed reasoned allow.
///
/// The directive must *start* the comment (after the comment marker):
/// `// nai-lint: allow(…) -- …`. Prose that merely mentions
/// `nai-lint:` mid-sentence — documentation, for instance — is not a
/// directive.
pub fn parse_allow_directive(comment: &str) -> Option<Result<Vec<String>, String>> {
    let mut text = comment.trim();
    for marker in ["//!", "///", "//", "/*!", "/**", "/*"] {
        if let Some(stripped) = text.strip_prefix(marker) {
            text = stripped.strip_suffix("*/").unwrap_or(stripped);
            break;
        }
    }
    let rest = text.trim().strip_prefix("nai-lint:")?;
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow") else {
        return Some(Err(
            "unknown nai-lint directive (only `allow(rule-id) -- reason` exists)".to_string(),
        ));
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Some(Err(
            "expected `allow(rule-id, …)` — missing the rule list".to_string()
        ));
    };
    let Some(close) = rest.find(')') else {
        return Some(Err("unclosed rule list in `allow(…)`".to_string()));
    };
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Some(Err("empty rule list in `allow(…)`".to_string()));
    }
    let tail = rest[close + 1..].trim_start();
    let reason = tail.strip_prefix("--").map(str::trim).unwrap_or("");
    if reason.is_empty() {
        return Some(Err(format!(
            "suppression of `{}` has no reason — write `allow({}) -- why it is sound`",
            rules.join(", "),
            rules.join(", "),
        )));
    }
    Some(Ok(rules))
}

/// Tokenized file plus the derived views every rule needs.
struct FileCtx<'a> {
    spec: &'a FileSpec,
    tokens: Vec<Token>,
    /// Indices into `tokens` of non-comment tokens, in order.
    code: Vec<usize>,
    /// Per-token flag: inside a `#[cfg(test)]` / `#[test]` item.
    test_mask: Vec<bool>,
    /// Lines covered by at least one comment token.
    comment_lines: BTreeSet<u32>,
    allows: Vec<Allow>,
    malformed: Vec<Diagnostic>,
}

impl<'a> FileCtx<'a> {
    fn new(spec: &'a FileSpec, src: &str) -> Self {
        let tokens = lex(src);
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
            .map(|(i, _)| i)
            .collect();
        let mut comment_lines = BTreeSet::new();
        let mut allows = Vec::new();
        let mut malformed = Vec::new();
        for t in &tokens {
            if !t.is_comment() {
                continue;
            }
            for l in t.line..=t.end_line {
                comment_lines.insert(l);
            }
            match parse_allow_directive(&t.text) {
                None => {}
                Some(Ok(rules)) => allows.push(Allow {
                    rules,
                    line: t.line,
                    end_line: t.end_line,
                }),
                Some(Err(msg)) => malformed.push(Diagnostic {
                    path: spec.display_path.clone(),
                    line: t.line,
                    col: t.col,
                    rule: "malformed-allow",
                    message: msg,
                }),
            }
        }
        // A directive heads the whole contiguous comment block it
        // starts: a reason wrapped onto following comment lines still
        // covers the first code line after the block.
        for a in &mut allows {
            while comment_lines.contains(&(a.end_line + 1)) {
                a.end_line += 1;
            }
        }
        let test_mask = compute_test_mask(&tokens, &code);
        FileCtx {
            spec,
            tokens,
            code,
            test_mask,
            comment_lines,
            allows,
            malformed,
        }
    }

    fn tok(&self, code_idx: usize) -> &Token {
        &self.tokens[self.code[code_idx]]
    }

    fn diag(&self, code_idx: usize, rule: &'static str, message: String) -> Diagnostic {
        let t = self.tok(code_idx);
        Diagnostic {
            path: self.spec.display_path.clone(),
            line: t.line,
            col: t.col,
            rule,
            message,
        }
    }

    /// Whether an allow for `rule` covers a finding on `line`: the
    /// directive sits on that same line (trailing comment) or its
    /// comment block (directive plus any contiguous continuation
    /// comment lines) ends on the line immediately above.
    fn suppressed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.rules.iter().any(|r| r == rule) && (a.line..=a.end_line + 1).contains(&line))
    }
}

/// Marks every token inside an item gated by `#[test]` or a
/// `#[cfg(…)]` whose condition requires `test` (negations understood:
/// `#[cfg(not(test))]` gates *non*-test code and is not masked).
fn compute_test_mask(tokens: &[Token], code: &[usize]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < code.len() {
        let Some(attr_end) = attr_span(tokens, code, i) else {
            i += 1;
            continue;
        };
        if !attr_gates_test(tokens, code, i, attr_end) {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes stacked on the same item.
        let mut k = attr_end + 1;
        while let Some(next_end) = attr_span(tokens, code, k) {
            k = next_end + 1;
        }
        // Find the item body: first `{` at delimiter depth 0 (masked
        // to its matching `}`), or a terminating `;` for bodyless
        // items like gated `use` declarations.
        let mut depth = 0i32;
        let mut b = k;
        let end = loop {
            if b >= code.len() {
                break code.len() - 1;
            }
            let t = &tokens[code[b]];
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => break matching_brace(tokens, code, b),
                ";" if depth == 0 => break b,
                _ => {}
            }
            b += 1;
        };
        // Mask raw token range (comments inside the item included).
        for m in &mut mask[code[i]..=code[end.min(code.len() - 1)]] {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// If `code[i]` starts an attribute (`#[…]` or `#![…]`), returns the
/// code index of its closing `]`.
fn attr_span(tokens: &[Token], code: &[usize], i: usize) -> Option<usize> {
    if !tokens[code.get(i).copied()?].is_punct("#") {
        return None;
    }
    let mut open = i + 1;
    if tokens[code.get(open).copied()?].is_punct("!") {
        open += 1;
    }
    if !tokens[code.get(open).copied()?].is_punct("[") {
        return None;
    }
    let mut depth = 0i32;
    for (j, &t_idx) in code.iter().enumerate().skip(open) {
        match tokens[t_idx].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Whether the attribute spanning `code[start..=end]` gates the item
/// to test builds: `#[test]`, or a `cfg` whose condition mentions
/// `test` outside any `not(…)`.
fn attr_gates_test(tokens: &[Token], code: &[usize], start: usize, end: usize) -> bool {
    // First identifier inside the brackets.
    let mut idents = (start..=end)
        .map(|j| &tokens[code[j]])
        .filter(|t| t.kind == TokenKind::Ident);
    match idents.next().map(|t| t.text.as_str()) {
        Some("test") => true,
        Some("cfg") => {
            let mut neg_stack: Vec<bool> = Vec::new();
            let mut prev_ident_not = false;
            for j in start..=end {
                let t = &tokens[code[j]];
                match t.text.as_str() {
                    "(" => {
                        neg_stack.push(prev_ident_not);
                        prev_ident_not = false;
                    }
                    ")" => {
                        neg_stack.pop();
                    }
                    "test" if t.kind == TokenKind::Ident => {
                        if !neg_stack.iter().any(|&n| n) {
                            return true;
                        }
                    }
                    _ => {
                        prev_ident_not = t.is_ident("not");
                    }
                }
            }
            false
        }
        _ => false,
    }
}

/// Code index of the `}` matching the `{` at `code[open]` (last token
/// on unbalanced input).
fn matching_brace(tokens: &[Token], code: &[usize], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, &t_idx) in code.iter().enumerate().skip(open) {
        match tokens[t_idx].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    code.len() - 1
}

/// Lints one file: runs every applicable rule, applies reasoned
/// suppressions, and reports malformed suppressions.
pub fn lint_file(spec: &FileSpec, src: &str) -> Vec<Diagnostic> {
    let ctx = FileCtx::new(spec, src);
    let mut raw = Vec::new();
    rule_sync_facade(&ctx, &mut raw);
    rule_ordering_invariant(&ctx, &mut raw);
    rule_lock_hygiene(&ctx, &mut raw);
    rule_hot_path_panic(&ctx, &mut raw);
    let mut out: Vec<Diagnostic> = raw
        .into_iter()
        .filter(|d| !ctx.suppressed(d.rule, d.line))
        .collect();
    // Malformed allows are findings in their own right and cannot be
    // suppressed — otherwise a reasonless allow could excuse itself.
    out.extend(ctx.malformed.iter().cloned());
    out
}

// ---------------------------------------------------------------------
// Rule: sync-facade
// ---------------------------------------------------------------------

/// `std::sync` / `std::thread` / `std::time::Instant` / the vendored
/// `polling` crate outside the `sync.rs` facade of a facade crate.
/// Catches grouped imports (`use std::{sync::Mutex, thread}`), aliases
/// (`use std::sync as s`), and fully-qualified call sites — the cases
/// a line grep misses. `polling` rides the same facade because
/// blocking in `Poller::wait` is a scheduling decision exactly like a
/// `Condvar` wait: model builds must see every such point go through
/// `crate::sync`.
fn rule_sync_facade(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !ctx.spec.crate_in(&FACADE_CRATES) || !ctx.spec.in_src || ctx.spec.is_sync_facade {
        return;
    }
    // One report per (line, offending path) regardless of how many
    // detectors saw it.
    let mut seen: BTreeSet<(u32, String)> = BTreeSet::new();
    let mut report = |ctx: &FileCtx<'_>, code_idx: usize, path: String| {
        let line = ctx.tok(code_idx).line;
        if seen.insert((line, path.clone())) {
            out.push(ctx.diag(
                code_idx,
                "sync-facade",
                format!(
                    "`{path}` bypasses the `crate::sync` facade — import concurrency/clock \
                     primitives through `crate::sync` so model builds can swap them"
                ),
            ));
        }
    };

    // Detector 1: `use` trees, with group expansion and aliases.
    let mut i = 0usize;
    while i < ctx.code.len() {
        if ctx.tok(i).is_ident("use") {
            let mut leaves = Vec::new();
            let mut pos = i + 1;
            parse_use_tree(ctx, &mut pos, &[], &mut leaves);
            for (segs, at) in leaves {
                if let Some(path) = forbidden_prefix(&segs) {
                    report(ctx, at, path);
                }
            }
            i = pos;
        } else {
            i += 1;
        }
    }

    // Detector 2: fully-qualified paths at arbitrary expression or
    // type position.
    for i in 0..ctx.code.len() {
        if ctx.tok(i).is_ident("polling") && next_is(ctx, i + 1, "::") {
            report(ctx, i, "polling".to_string());
            continue;
        }
        if !ctx.tok(i).is_ident("std") || !next_is(ctx, i + 1, "::") {
            continue;
        }
        let Some(seg) = ctx.code.get(i + 2).map(|_| ctx.tok(i + 2)) else {
            continue;
        };
        if seg.is_ident("sync") || seg.is_ident("thread") {
            report(ctx, i, format!("std::{}", seg.text));
        } else if seg.is_ident("time")
            && next_is(ctx, i + 3, "::")
            && ctx
                .code
                .get(i + 4)
                .is_some_and(|_| ctx.tok(i + 4).is_ident("Instant"))
        {
            report(ctx, i, "std::time::Instant".to_string());
        }
    }
}

fn next_is(ctx: &FileCtx<'_>, i: usize, punct: &str) -> bool {
    ctx.code.get(i).is_some_and(|_| ctx.tok(i).is_punct(punct))
}

/// The forbidden path this leaf resolves to, if any.
fn forbidden_prefix(segs: &[String]) -> Option<String> {
    if segs.first().map(String::as_str) == Some("polling") {
        return Some("polling".to_string());
    }
    if segs.len() >= 2 && segs[0] == "std" {
        if segs[1] == "sync" || segs[1] == "thread" {
            return Some(format!("std::{}", segs[1]));
        }
        if segs[1] == "time" && segs.get(2).map(String::as_str) == Some("Instant") {
            return Some("std::time::Instant".to_string());
        }
    }
    None
}

/// Recursive-descent over one `use` tree starting at `ctx.code[*pos]`.
/// Appends every leaf path (as segment vectors) with the code index of
/// its first local segment. Leaves `*pos` just past the tree.
fn parse_use_tree(
    ctx: &FileCtx<'_>,
    pos: &mut usize,
    prefix: &[String],
    leaves: &mut Vec<(Vec<String>, usize)>,
) {
    let mut local: Vec<String> = Vec::new();
    let mut first: Option<usize> = None;
    let flush = |local: &[String],
                 first: Option<usize>,
                 pos: usize,
                 prefix: &[String],
                 leaves: &mut Vec<(Vec<String>, usize)>| {
        if !local.is_empty() {
            let mut full = prefix.to_vec();
            full.extend(local.iter().cloned());
            leaves.push((full, first.unwrap_or(pos.saturating_sub(1))));
        }
    };
    loop {
        let Some(&t_idx) = ctx.code.get(*pos) else {
            flush(&local, first, *pos, prefix, leaves);
            return;
        };
        let t = &ctx.tokens[t_idx];
        if t.kind == TokenKind::Ident && t.text != "as" {
            first.get_or_insert(*pos);
            local.push(t.text.clone());
            *pos += 1;
        } else if t.is_punct("*") {
            first.get_or_insert(*pos);
            local.push("*".to_string());
            *pos += 1;
        } else if t.is_punct("{") {
            *pos += 1;
            let mut inner_prefix: Vec<String> = prefix.to_vec();
            inner_prefix.extend(local.iter().cloned());
            loop {
                let Some(&g_idx) = ctx.code.get(*pos) else {
                    return;
                };
                let g = &ctx.tokens[g_idx];
                if g.is_punct("}") {
                    *pos += 1;
                    break;
                }
                if g.is_punct(",") {
                    *pos += 1;
                    continue;
                }
                let before = *pos;
                parse_use_tree(ctx, pos, &inner_prefix, leaves);
                if *pos == before {
                    // No progress — malformed input; bail out.
                    *pos += 1;
                }
            }
            // A group is the end of this tree: the prefix itself is
            // not a leaf.
            return;
        } else if t.is_punct("}") || t.is_punct(",") || t.is_punct(";") {
            flush(&local, first, *pos, prefix, leaves);
            if t.is_punct(";") {
                *pos += 1;
            }
            return;
        } else if t.is_punct("::") || t.is_ident("as") {
            // Path separator continues the tree; an alias consumes the
            // following identifier without extending the path.
            *pos += 1;
            if t.is_ident("as") && ctx.code.get(*pos).is_some() {
                *pos += 1;
            }
        } else {
            flush(&local, first, *pos, prefix, leaves);
            *pos += 1;
            return;
        }
    }
}

// ---------------------------------------------------------------------
// Rule: ordering-invariant
// ---------------------------------------------------------------------

/// Every `Ordering::{Relaxed,Acquire,Release,AcqRel,SeqCst}` site in a
/// facade crate must carry an invariant comment: on the same line, or
/// heading the contiguous block of ordering-bearing lines it belongs
/// to (one comment may cover a run of consecutive sites, e.g. a
/// counters scrape).
fn rule_ordering_invariant(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !ctx.spec.crate_in(&FACADE_CRATES) || !ctx.spec.in_src {
        return;
    }
    let mut sites: Vec<(usize, u32)> = Vec::new(); // (code idx of `Ordering`, line of variant)
    for i in 0..ctx.code.len() {
        if ctx.tok(i).is_ident("Ordering")
            && next_is(ctx, i + 1, "::")
            && ctx
                .code
                .get(i + 2)
                .is_some_and(|_| ORDERINGS.contains(&ctx.tok(i + 2).text.as_str()))
        {
            sites.push((i, ctx.tok(i + 2).line));
        }
    }
    let site_lines: BTreeSet<u32> = sites.iter().map(|&(_, l)| l).collect();
    for &(i, line) in &sites {
        let mut l = line;
        let covered = loop {
            if ctx.comment_lines.contains(&l) {
                break true;
            }
            if l < line && !site_lines.contains(&l) {
                break false;
            }
            if l == 1 {
                break false;
            }
            l -= 1;
        };
        if !covered {
            let variant = &ctx.tok(i + 2).text;
            out.push(ctx.diag(
                i,
                "ordering-invariant",
                format!(
                    "`Ordering::{variant}` without an invariant comment — state the ordering \
                     contract on this line or the line above"
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Rule: lock-hygiene
// ---------------------------------------------------------------------

/// `.lock().unwrap()` / `.lock().expect(…)` in a crate that provides
/// `crate::sync::lock_recover`: a panicking lock holder would poison
/// the mutex and cascade the panic into every later accessor.
fn rule_lock_hygiene(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !ctx.spec.crate_in(&FACADE_CRATES) || !ctx.spec.in_src || ctx.spec.is_sync_facade {
        return;
    }
    for i in 0..ctx.code.len() {
        if next_is(ctx, i, ".")
            && ctx
                .code
                .get(i + 1)
                .is_some_and(|_| ctx.tok(i + 1).is_ident("lock"))
            && next_is(ctx, i + 2, "(")
            && next_is(ctx, i + 3, ")")
            && next_is(ctx, i + 4, ".")
            && ctx.code.get(i + 5).is_some_and(|_| {
                ctx.tok(i + 5).is_ident("unwrap") || ctx.tok(i + 5).is_ident("expect")
            })
        {
            let what = &ctx.tok(i + 5).text;
            out.push(ctx.diag(
                i + 1,
                "lock-hygiene",
                format!(
                    "`.lock().{what}(…)` cascades poisoning — use `crate::sync::lock_recover` \
                     (or handle the `PoisonError` explicitly)"
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Rule: hot-path-panic
// ---------------------------------------------------------------------

/// Panic paths and debug I/O in non-test library code of the serving /
/// inference crates: `.unwrap()`, `.expect(…)`, `panic!`, `todo!`,
/// `unimplemented!`, `dbg!`, `println!`, `eprintln!`. Test modules
/// (`#[cfg(test)]`, `#[test]`) are exempt; `assert!`/`debug_assert!`
/// and `unreachable!` are allowed (they document impossibility rather
/// than reachable failure).
fn rule_hot_path_panic(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !ctx.spec.crate_in(&PANIC_CRATES) || !ctx.spec.in_src {
        return;
    }
    for i in 0..ctx.code.len() {
        if ctx.test_mask[ctx.code[i]] {
            continue;
        }
        // `.unwrap()` / `.expect(` — exact method names, so
        // `unwrap_or_else` and friends do not fire.
        if next_is(ctx, i, ".")
            && ctx.code.get(i + 1).is_some_and(|_| {
                ctx.tok(i + 1).is_ident("unwrap") || ctx.tok(i + 1).is_ident("expect")
            })
            && next_is(ctx, i + 2, "(")
        {
            let what = &ctx.tok(i + 1).text;
            out.push(ctx.diag(
                i + 1,
                "hot-path-panic",
                format!(
                    "`.{what}(…)` in non-test library code — return an error, or add a \
                     reasoned `nai-lint: allow(hot-path-panic)` stating the invariant"
                ),
            ));
        }
        // Macro invocations.
        if ctx.tok(i).kind == TokenKind::Ident
            && PANIC_MACROS.contains(&ctx.tok(i).text.as_str())
            && next_is(ctx, i + 1, "!")
        {
            let what = &ctx.tok(i).text;
            out.push(ctx.diag(
                i,
                "hot-path-panic",
                format!("`{what}!` in non-test library code — hot paths must not panic or print"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serve_spec() -> FileSpec {
        FileSpec {
            display_path: "crates/serve/src/x.rs".into(),
            crate_name: Some("nai-serve".into()),
            in_src: true,
            is_sync_facade: false,
        }
    }

    fn rules_fired(spec: &FileSpec, src: &str) -> Vec<&'static str> {
        let mut r: Vec<&'static str> = lint_file(spec, src).into_iter().map(|d| d.rule).collect();
        r.sort_unstable();
        r.dedup();
        r
    }

    #[test]
    fn grouped_import_fires_sync_facade() {
        let src = "use std::{sync::Mutex, thread};\n";
        let diags = lint_file(&serve_spec(), src);
        assert_eq!(diags.iter().filter(|d| d.rule == "sync-facade").count(), 2);
    }

    #[test]
    fn aliased_and_qualified_paths_fire() {
        for src in [
            "use std::sync as s;\n",
            "use std::time::{Duration, Instant};\n",
            "fn f() { let m = std::sync::Mutex::new(0); }\n",
            "fn f() { std::thread::spawn(|| {}); }\n",
            "fn f() { let t = std::time::Instant::now(); }\n",
            "use polling::{Event, Poller};\n",
            "use polling::Poller as P;\n",
            "fn f() { let p = polling::Poller::new(); }\n",
        ] {
            assert!(
                rules_fired(&serve_spec(), src).contains(&"sync-facade"),
                "should fire on: {src}"
            );
        }
    }

    #[test]
    fn facade_and_innocent_uses_do_not_fire() {
        // Duration is fine; strings and comments are invisible; the
        // facade file itself is exempt; non-facade crates are exempt.
        for (spec, src) in [
            (serve_spec(), "use std::time::Duration;\n"),
            (serve_spec(), "// std::sync is discussed here only\n"),
            (serve_spec(), "const S: &str = \"std::sync\";\n"),
            (
                FileSpec {
                    is_sync_facade: true,
                    ..serve_spec()
                },
                "pub use std::sync::Mutex;\n",
            ),
            (
                FileSpec {
                    is_sync_facade: true,
                    ..serve_spec()
                },
                "pub use polling::{Event, Interest, Poller};\n",
            ),
            // An identifier merely *named* polling is not the crate.
            (
                serve_spec(),
                "fn f() { let polling = 1; let _ = polling; }\n",
            ),
            (
                FileSpec {
                    crate_name: Some("nai-graph".into()),
                    ..serve_spec()
                },
                "use std::sync::Mutex;\n",
            ),
            (
                FileSpec {
                    in_src: false,
                    ..serve_spec()
                },
                "use std::sync::Mutex;\n",
            ),
        ] {
            assert!(
                !rules_fired(&spec, src).contains(&"sync-facade"),
                "should not fire on: {src}"
            );
        }
    }

    #[test]
    fn ordering_without_comment_fires_with_comment_passes() {
        let bad = "fn f(a: &AtomicUsize) { a.load(Ordering::Acquire); }\n";
        assert!(rules_fired(&serve_spec(), bad).contains(&"ordering-invariant"));
        for good in [
            "fn f(a: &AtomicUsize) { a.load(Ordering::Acquire); // pairs with release store\n }\n",
            "fn f(a: &AtomicUsize) {\n    // Acquire: sees everything the releasing store did.\n    a.load(Ordering::Acquire);\n}\n",
        ] {
            assert!(
                !rules_fired(&serve_spec(), good).contains(&"ordering-invariant"),
                "should pass: {good}"
            );
        }
    }

    #[test]
    fn one_comment_covers_a_contiguous_ordering_block() {
        let src = "fn f(a: &A, b: &A) -> (u64, u64) {\n\
                   \x20   // Relaxed: monotone counters, scrape-only.\n\
                   \x20   (a.load(Ordering::Relaxed),\n\
                   \x20    b.load(Ordering::Relaxed))\n\
                   }\n";
        assert!(!rules_fired(&serve_spec(), src).contains(&"ordering-invariant"));
        // …but an interposed non-site line breaks the chain.
        let broken = "fn f(a: &A) -> u64 {\n\
                      \x20   // Relaxed: monotone counter.\n\
                      \x20   let x = 1;\n\
                      \x20   a.load(Ordering::Relaxed)\n\
                      }\n";
        assert!(rules_fired(&serve_spec(), broken).contains(&"ordering-invariant"));
    }

    #[test]
    fn lock_hygiene_fires_and_lock_recover_passes() {
        assert!(
            rules_fired(&serve_spec(), "fn f() { m.lock().unwrap(); }\n").contains(&"lock-hygiene")
        );
        assert!(
            rules_fired(&serve_spec(), "fn f() { m.lock().expect(\"x\"); }\n")
                .contains(&"lock-hygiene")
        );
        assert!(
            !rules_fired(&serve_spec(), "fn f() { lock_recover(&m); }\n").contains(&"lock-hygiene")
        );
        assert!(!rules_fired(
            &serve_spec(),
            "fn f() { m.lock().unwrap_or_else(|p| p.into_inner()); }\n"
        )
        .contains(&"lock-hygiene"));
    }

    #[test]
    fn hot_path_panic_fires_outside_tests_only() {
        let bad = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(rules_fired(&serve_spec(), bad).contains(&"hot-path-panic"));
        let test_mod = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); panic!(\"boom\"); }\n}\n";
        assert!(!rules_fired(&serve_spec(), test_mod).contains(&"hot-path-panic"));
        let test_fn = "#[test]\nfn t() { Some(1).unwrap(); }\n";
        assert!(!rules_fired(&serve_spec(), test_fn).contains(&"hot-path-panic"));
        // cfg(not(test)) is NOT test code.
        let not_test = "#[cfg(not(test))]\nfn f() { Some(1).unwrap(); }\n";
        assert!(rules_fired(&serve_spec(), not_test).contains(&"hot-path-panic"));
    }

    #[test]
    fn hot_path_panic_catches_macros_but_not_asserts() {
        for bad in [
            "fn f() { panic!(\"x\"); }\n",
            "fn f() { todo!() }\n",
            "fn f() { unimplemented!() }\n",
            "fn f(v: u32) { dbg!(v); }\n",
            "fn f() { println!(\"x\"); }\n",
            "fn f() { eprintln!(\"x\"); }\n",
        ] {
            assert!(
                rules_fired(&serve_spec(), bad).contains(&"hot-path-panic"),
                "should fire: {bad}"
            );
        }
        for ok in [
            "fn f(x: u32) { assert!(x > 0); debug_assert_eq!(x, x); }\n",
            "fn f() -> ! { unreachable!(\"excluded by construction\") }\n",
            "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n",
            "fn f(x: Option<u32>) -> u32 { x.unwrap_or_default() }\n",
            "/// ```\n/// x.unwrap(); println!(\"doc example\");\n/// ```\nfn f() {}\n",
        ] {
            assert!(
                !rules_fired(&serve_spec(), ok).contains(&"hot-path-panic"),
                "should pass: {ok}"
            );
        }
    }

    #[test]
    fn hot_path_panic_applies_to_core_but_not_graph() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let core = FileSpec {
            crate_name: Some("nai-core".into()),
            ..serve_spec()
        };
        assert!(rules_fired(&core, src).contains(&"hot-path-panic"));
        let graph = FileSpec {
            crate_name: Some("nai-graph".into()),
            ..serve_spec()
        };
        assert!(!rules_fired(&graph, src).contains(&"hot-path-panic"));
    }

    #[test]
    fn reasoned_allow_suppresses_same_line_and_next_line() {
        let same = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // nai-lint: allow(hot-path-panic) -- checked by caller\n";
        assert!(lint_file(&serve_spec(), same).is_empty());
        let above = "// nai-lint: allow(hot-path-panic) -- checked by caller\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(lint_file(&serve_spec(), above).is_empty());
        // Multiple rules in one directive.
        let multi = "// nai-lint: allow(lock-hygiene, hot-path-panic) -- deliberate poisoning test\nfn f() { m.lock().unwrap(); }\n";
        assert!(lint_file(&serve_spec(), multi).is_empty());
    }

    #[test]
    fn allow_reason_may_wrap_onto_following_comment_lines() {
        let wrapped = "// nai-lint: allow(hot-path-panic) -- a reason long enough\n\
                       // that it wraps onto a second comment line.\n\
                       fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(lint_file(&serve_spec(), wrapped).is_empty());
        // A blank line between the block and the code breaks coverage.
        let gapped = "// nai-lint: allow(hot-path-panic) -- wrapped\n\
                      // continuation line.\n\
                      \n\
                      fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(lint_file(&serve_spec(), gapped).len(), 1);
    }

    #[test]
    fn allow_does_not_leak_beyond_its_line() {
        let src = "// nai-lint: allow(hot-path-panic) -- first only\n\
                   fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   fn g(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let diags = lint_file(&serve_spec(), src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn allow_without_reason_is_malformed_and_suppresses_nothing() {
        let src =
            "// nai-lint: allow(hot-path-panic)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let diags = lint_file(&serve_spec(), src);
        let rules: Vec<_> = diags.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"malformed-allow"));
        assert!(rules.contains(&"hot-path-panic"));
        // Empty reason after `--` is just as malformed.
        let src2 =
            "// nai-lint: allow(hot-path-panic) -- \nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(lint_file(&serve_spec(), src2)
            .iter()
            .any(|d| d.rule == "malformed-allow"));
    }

    #[test]
    fn wrong_rule_id_in_allow_does_not_suppress() {
        let src = "// nai-lint: allow(sync-facade) -- wrong rule named\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(lint_file(&serve_spec(), src)
            .iter()
            .any(|d| d.rule == "hot-path-panic"));
    }
}
