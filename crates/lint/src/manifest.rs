//! Minimal `Cargo.toml` reading for the `unused-dep` rule.
//!
//! This is not a TOML parser — it understands exactly the shape of
//! this workspace's manifests: `[section]` headers, `key = value`
//! entries, and `#` comments. That is enough to enumerate dependency
//! keys with their positions and to honor reasoned
//! `# nai-lint: allow(unused-dep) -- why` suppressions.

use crate::diag::Diagnostic;
use crate::rules::{parse_allow_directive, Allow};

/// One dependency entry found in a manifest.
#[derive(Debug, Clone)]
pub struct DepEntry {
    /// The dependency key as written (dashes intact).
    pub key: String,
    /// 1-based line of the entry.
    pub line: u32,
    /// 1-based column of the key.
    pub col: u32,
}

/// Everything the `unused-dep` rule needs from one manifest.
#[derive(Debug, Default)]
pub struct Manifest {
    /// `[package] name`, when present.
    pub package_name: Option<String>,
    /// All `[dependencies]` / `[dev-dependencies]` /
    /// `[build-dependencies]` entries (including target-specific
    /// `[target.….dependencies]` tables).
    pub deps: Vec<DepEntry>,
    /// Reasoned `allow` directives found in `#` comments.
    pub allows: Vec<Allow>,
    /// Malformed directives (missing reason etc.).
    pub malformed: Vec<(u32, u32, String)>,
}

/// Splits a TOML line into (content, comment) at the first `#` that is
/// not inside a basic string.
fn split_comment(line: &str) -> (&str, Option<&str>) {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return (&line[..i], Some(&line[i + 1..])),
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    (line, None)
}

fn is_deps_section(section: &str) -> bool {
    section == "dependencies"
        || section == "dev-dependencies"
        || section == "build-dependencies"
        || section.ends_with(".dependencies")
        || section.ends_with(".dev-dependencies")
        || section.ends_with(".build-dependencies")
}

/// Parses one manifest source.
pub fn parse(src: &str) -> Manifest {
    let mut m = Manifest::default();
    let mut section = String::new();
    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let (content, comment) = split_comment(raw);
        if let Some(c) = comment {
            match parse_allow_directive(c) {
                None => {}
                Some(Ok(rules)) => m.allows.push(Allow {
                    rules,
                    line: line_no,
                    end_line: line_no,
                }),
                Some(Err(msg)) => {
                    let col = raw.len() - c.len();
                    m.malformed.push((line_no, col as u32, msg));
                }
            }
        }
        let trimmed = content.trim();
        if let Some(header) = trimmed.strip_prefix('[') {
            section = header
                .trim_start_matches('[')
                .trim_end_matches(']')
                .trim()
                .trim_matches('"')
                .to_string();
            continue;
        }
        let Some(eq) = trimmed.find('=') else {
            continue;
        };
        let key = trimmed[..eq].trim().trim_matches('"').to_string();
        if key.is_empty() {
            continue;
        }
        if section == "package" && key == "name" {
            let val = trimmed[eq + 1..].trim().trim_matches('"');
            m.package_name = Some(val.to_string());
        }
        if is_deps_section(&section) {
            let col = content.find(key.as_str()).unwrap_or(0) as u32 + 1;
            m.deps.push(DepEntry {
                key,
                line: line_no,
                col,
            });
        }
    }
    m
}

/// Runs the `unused-dep` rule for one crate: every dependency key must
/// appear (dashes mapped to underscores) as an identifier somewhere in
/// the crate's Rust sources.
pub fn unused_deps(
    manifest_path: &str,
    manifest: &Manifest,
    idents: &std::collections::BTreeSet<String>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for dep in &manifest.deps {
        let ident = dep.key.replace('-', "_");
        if idents.contains(&ident) {
            continue;
        }
        let suppressed = manifest.allows.iter().any(|a| {
            a.rules.iter().any(|r| r == "unused-dep")
                && (a.line == dep.line || a.line + 1 == dep.line)
        });
        if suppressed {
            continue;
        }
        out.push(Diagnostic {
            path: manifest_path.to_string(),
            line: dep.line,
            col: dep.col,
            rule: "unused-dep",
            message: format!(
                "dependency `{}` is never referenced (no `{ident}` path or `use` in this \
                 crate) — drop it or add `# nai-lint: allow(unused-dep) -- why`",
                dep.key
            ),
        });
    }
    for (line, col, msg) in &manifest.malformed {
        out.push(Diagnostic {
            path: manifest_path.to_string(),
            line: *line,
            col: *col,
            rule: "malformed-allow",
            message: msg.clone(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    const TOML: &str = "\
[package]
name = \"demo\"

[dependencies]
nai-core = { path = \"../core\" }
rand = { path = \"../compat/rand\" }
# nai-lint: allow(unused-dep) -- linked for the model-check cfg only
loom = { path = \"../compat/loom\" }

[dev-dependencies]
proptest = { path = \"../compat/proptest\" }
";

    #[test]
    fn finds_entries_and_package_name() {
        let m = parse(TOML);
        assert_eq!(m.package_name.as_deref(), Some("demo"));
        let keys: Vec<&str> = m.deps.iter().map(|d| d.key.as_str()).collect();
        assert_eq!(keys, ["nai-core", "rand", "loom", "proptest"]);
    }

    #[test]
    fn unused_dep_fires_with_dash_mapping_and_respects_allow() {
        let m = parse(TOML);
        let idents: BTreeSet<String> = ["nai_core", "proptest"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let diags = unused_deps("Cargo.toml", &m, &idents);
        // `rand` unused → fires; `loom` unused but allowed with a
        // reason; `nai-core` used via underscore ident.
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "unused-dep");
        assert!(diags[0].message.contains("`rand`"));
    }

    #[test]
    fn reasonless_toml_allow_is_malformed_and_inert() {
        let src = "\
[dependencies]
# nai-lint: allow(unused-dep)
ghost = { path = \"x\" }
";
        let m = parse(src);
        let diags = unused_deps("Cargo.toml", &m, &BTreeSet::new());
        let rules: Vec<&str> = diags.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"unused-dep"));
        assert!(rules.contains(&"malformed-allow"));
    }

    #[test]
    fn comments_inside_strings_are_not_comments() {
        let (content, comment) = split_comment("key = \"a # b\" # real");
        assert_eq!(content.trim_end(), "key = \"a # b\"");
        assert_eq!(comment, Some(" real"));
    }
}
