//! `nai-lint` — token-aware static analysis for the NAI workspace's
//! project invariants.
//!
//! The serve stack carries invariants no general-purpose tool checks:
//! concurrency primitives must flow through each crate's `sync` facade
//! (so the loom model checker can be swapped in), every atomic
//! `Ordering` choice must state its contract, poisoning must be
//! recovered rather than cascaded, and the serving/inference hot path
//! must not panic or print. These used to be enforced by a shell grep
//! (`ci.sh lint_sync`), which line-matching makes both blind (grouped
//! imports like `use std::{sync::Mutex, thread}`, aliased or
//! fully-qualified paths) and jumpy (matches inside strings, doc
//! comments, and commented-out code). This crate replaces the grep
//! with a real lexer ([`lexer`]) and a rule engine ([`rules`]) that
//! understands tokens.
//!
//! # Rule catalog
//!
//! | rule id              | scope                                   | what it enforces |
//! |----------------------|-----------------------------------------|------------------|
//! | `sync-facade`        | `src/` of nai-serve, nai-obs, nai-stream | no `std::sync` / `std::thread` / `std::time::Instant` outside `src/sync.rs` |
//! | `ordering-invariant` | same                                    | every `Ordering::{Relaxed,…,SeqCst}` site carries an invariant comment |
//! | `lock-hygiene`       | same                                    | no `.lock().unwrap()` / `.lock().expect(…)` — use `sync::lock_recover` |
//! | `hot-path-panic`     | + nai-core, non-test code only          | no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!`/`dbg!`/`println!`/`eprintln!` |
//! | `unused-dep`         | every workspace crate                   | each manifest dependency is referenced by some path in the crate |
//! | `malformed-allow`    | everywhere                              | suppressions must be well-formed and reasoned |
//!
//! # Suppression
//!
//! A finding is silenced only by a **reasoned** directive on the same
//! line or the line immediately above:
//!
//! ```text
//! // nai-lint: allow(hot-path-panic) -- index bounded by the check above
//! # nai-lint: allow(unused-dep) -- linked only under --cfg nai_model   (TOML)
//! ```
//!
//! A directive without a reason is itself a finding
//! (`malformed-allow`) and suppresses nothing.
//!
//! # Adding a rule
//!
//! Write a `fn rule_…(&FileCtx, &mut Vec<Diagnostic>)` over the token
//! stream in [`rules`], give it a stable kebab-case id, wire it into
//! `rules::lint_file`, add fire + suppress fixture tests, and document
//! it in the table above and in ARCHITECTURE.md.

pub mod diag;
pub mod driver;
pub mod lexer;
pub mod manifest;
pub mod rules;

pub use diag::Diagnostic;
pub use driver::{find_workspace_root, lint_paths, lint_workspace, LintReport};
pub use rules::{lint_file, FileSpec};
