//! File discovery and crate resolution: turns a workspace or a set of
//! paths into [`FileSpec`]s, runs the file rules, and runs the
//! per-crate `unused-dep` rule.

use crate::diag::{self, Diagnostic};
use crate::lexer::{lex, TokenKind};
use crate::manifest;
use crate::rules::{lint_file, FileSpec, FACADE_CRATES};
use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};

/// Result of a lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// All findings, in stable order.
    pub diags: Vec<Diagnostic>,
    /// Number of files scanned (`.rs` sources plus manifests).
    pub files: usize,
}

/// Walks up from `start` to the nearest directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(src) = std::fs::read_to_string(&manifest) {
            if src.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Member crate directories of the workspace rooted at `root`: the
/// `members = […]` list from the root manifest, plus the root package
/// itself when the root manifest has a `[package]` section.
fn member_dirs(root: &Path) -> io::Result<Vec<PathBuf>> {
    let src = std::fs::read_to_string(root.join("Cargo.toml"))?;
    let mut dirs = Vec::new();
    if src.lines().any(|l| l.trim() == "[package]") {
        dirs.push(root.to_path_buf());
    }
    let mut in_members = false;
    for line in src.lines() {
        let t = line.trim();
        if t.starts_with("members") && t.contains('[') {
            in_members = true;
        }
        if in_members {
            let mut rest = t;
            while let Some(open) = rest.find('"') {
                let Some(close) = rest[open + 1..].find('"') else {
                    break;
                };
                let member = &rest[open + 1..open + 1 + close];
                if member != "." {
                    dirs.push(root.join(member));
                }
                rest = &rest[open + 2 + close..];
            }
            if t.contains(']') {
                break;
            }
        }
    }
    Ok(dirs)
}

/// Recursively collects `.rs` files under `dir`, sorted for
/// deterministic reports. Directories named `target` are always
/// skipped; directories named `fixtures` are skipped unless
/// `into_fixtures` (set when the caller explicitly pointed inside
/// one — lint fixtures are deliberately violation-laden and must not
/// fail a workspace-wide run).
fn walk_rs(dir: &Path, into_fixtures: bool, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name == ".git" || (name == "fixtures" && !into_fixtures) {
                continue;
            }
            walk_rs(&path, into_fixtures, out);
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

/// The `.rs` files belonging to one crate: `src/`, `tests/`,
/// `benches/`, `examples/`, plus root-level files like `build.rs`.
/// Constrained to those subtrees so the workspace-root package does
/// not swallow `crates/`.
fn crate_files(crate_dir: &Path, into_fixtures: bool) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for sub in ["src", "tests", "benches", "examples"] {
        walk_rs(&crate_dir.join(sub), into_fixtures, &mut files);
    }
    let Ok(entries) = std::fs::read_dir(crate_dir) else {
        return files;
    };
    let mut top: Vec<_> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_file() && p.extension().and_then(|e| e.to_str()) == Some("rs"))
        .collect();
    top.sort();
    files.extend(top);
    files
}

fn display_path(path: &Path, base: Option<&Path>) -> String {
    let shown = base.and_then(|b| path.strip_prefix(b).ok()).unwrap_or(path);
    shown.to_string_lossy().replace('\\', "/")
}

/// Builds the [`FileSpec`] for `file` inside the crate at `crate_dir`
/// named `crate_name`.
fn spec_for(
    file: &Path,
    crate_dir: &Path,
    crate_name: Option<&str>,
    base: Option<&Path>,
) -> FileSpec {
    let rel = file.strip_prefix(crate_dir).unwrap_or(file);
    let rel_str = rel.to_string_lossy().replace('\\', "/");
    let in_src = rel_str.starts_with("src/");
    FileSpec {
        display_path: display_path(file, base),
        crate_name: crate_name.map(str::to_string),
        in_src,
        is_sync_facade: rel_str == "src/sync.rs"
            && crate_name.is_some_and(|n| FACADE_CRATES.contains(&n)),
    }
}

fn collect_idents(src: &str, idents: &mut BTreeSet<String>) {
    for t in lex(src) {
        if t.kind == TokenKind::Ident {
            idents.insert(t.text);
        }
    }
}

/// Lints one whole crate (file rules on every source, `unused-dep` on
/// the manifest).
fn lint_crate(
    crate_dir: &Path,
    base: Option<&Path>,
    into_fixtures: bool,
    report: &mut LintReport,
) -> io::Result<()> {
    let manifest_path = crate_dir.join("Cargo.toml");
    let manifest_src = std::fs::read_to_string(&manifest_path)?;
    let m = manifest::parse(&manifest_src);
    let crate_name = m.package_name.clone();
    let mut idents = BTreeSet::new();
    for file in crate_files(crate_dir, into_fixtures) {
        let src = std::fs::read_to_string(&file)?;
        let spec = spec_for(&file, crate_dir, crate_name.as_deref(), base);
        report.diags.extend(lint_file(&spec, &src));
        collect_idents(&src, &mut idents);
        report.files += 1;
    }
    report.diags.extend(manifest::unused_deps(
        &display_path(&manifest_path, base),
        &m,
        &idents,
    ));
    report.files += 1;
    Ok(())
}

/// Lints every member crate of the workspace at `root`. This is what
/// `nai lint --workspace` and the self-lint test run; it must exit
/// clean on the committed tree.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let mut report = LintReport::default();
    for dir in member_dirs(root)? {
        lint_crate(&dir, Some(root), false, &mut report)?;
    }
    diag::sort(&mut report.diags);
    Ok(report)
}

/// Nearest ancestor directory of `file` holding a `Cargo.toml`, with
/// the package name parsed out of it.
fn owning_crate(file: &Path) -> Option<(PathBuf, Option<String>)> {
    for dir in file.ancestors().skip(1) {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let name = std::fs::read_to_string(&manifest)
                .ok()
                .and_then(|s| manifest::parse(&s).package_name);
            return Some((dir.to_path_buf(), name));
        }
    }
    None
}

fn path_has_fixtures(p: &Path) -> bool {
    p.components()
        .any(|c| c.as_os_str().to_string_lossy() == "fixtures")
}

/// Lints an explicit set of paths. A directory with a `Cargo.toml` is
/// linted as a crate (including `unused-dep`); other directories are
/// walked for `.rs` files; single files are linted with their owning
/// crate inferred from the nearest ancestor manifest.
pub fn lint_paths(paths: &[PathBuf]) -> io::Result<LintReport> {
    let mut report = LintReport::default();
    for path in paths {
        let into_fixtures = path_has_fixtures(path);
        if path.is_dir() && path.join("Cargo.toml").is_file() {
            lint_crate(path, None, into_fixtures, &mut report)?;
        } else if path.is_dir() {
            let mut files = Vec::new();
            walk_rs(path, into_fixtures, &mut files);
            for file in files {
                lint_one(&file, &mut report)?;
            }
        } else if path.is_file() {
            lint_one(path, &mut report)?;
        } else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such file or directory: {}", path.display()),
            ));
        }
    }
    diag::sort(&mut report.diags);
    Ok(report)
}

fn lint_one(file: &Path, report: &mut LintReport) -> io::Result<()> {
    let src = std::fs::read_to_string(file)?;
    let spec = match owning_crate(file) {
        Some((crate_dir, name)) => spec_for(file, &crate_dir, name.as_deref(), None),
        None => FileSpec {
            display_path: display_path(file, None),
            ..FileSpec::default()
        },
    };
    report.diags.extend(lint_file(&spec, &src));
    report.files += 1;
    Ok(())
}
