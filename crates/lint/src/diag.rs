//! Diagnostics: what a rule reports and how it is rendered.

use std::fmt;

/// One finding: a rule fired at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path as reported (workspace-relative when linting a workspace).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Stable rule identifier, e.g. `sync-facade`.
    pub rule: &'static str,
    /// Human-readable explanation, one line.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{} [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// Sorts diagnostics into stable reporting order: by path, then
/// position, then rule id.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
}
