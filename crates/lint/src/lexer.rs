//! A small hand-written Rust lexer.
//!
//! The rules in this crate need to know whether `std::sync` appears in
//! *code* — not in a string literal, a doc example, or a comment — and
//! where comments sit relative to code lines. That takes a real token
//! stream, not line regexes. The lexer handles the parts of Rust's
//! lexical grammar that make regexes wrong: raw strings with arbitrary
//! hash fences, byte and raw-byte strings, nested block comments,
//! lifetimes vs. char literals, raw identifiers, and doc comments.
//!
//! It is deliberately lossless about position (1-based line/column,
//! plus the end line of multi-line tokens) and deliberately lossy about
//! everything the rules do not need: numeric literal values, operator
//! composition (only `::` is fused), and attribute structure are left
//! to the rule layer.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (raw identifiers `r#type` yield `type`).
    Ident,
    /// A lifetime such as `'a` or `'static` (no trailing quote).
    Lifetime,
    /// A char or byte-char literal: `'a'`, `'\n'`, `b'x'`.
    CharLit,
    /// Any string literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    StrLit,
    /// A numeric literal (integer or float, any base, with suffix).
    NumLit,
    /// `// …` comment. `doc` is true for `///` and `//!` forms.
    LineComment {
        /// Whether this is a doc comment (`///` or `//!`).
        doc: bool,
    },
    /// `/* … */` comment (nesting-aware). `doc` covers `/**` and `/*!`.
    BlockComment {
        /// Whether this is a doc comment (`/**` or `/*!`).
        doc: bool,
    },
    /// A punctuation token. Single characters, except `::` which is
    /// fused because every path-aware rule keys on it.
    Punct,
}

/// One lexed token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Raw source text of the token. For raw identifiers the `r#`
    /// prefix is stripped so rules compare plain names.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
    /// 1-based line of the token's last character. Differs from `line`
    /// only for multi-line tokens (block comments, multi-line strings).
    pub end_line: u32,
}

impl Token {
    /// Whether this token is any kind of comment.
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment { .. } | TokenKind::BlockComment { .. }
        )
    }

    /// Whether this token is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is punctuation with exactly this text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

/// Lexes `src` into a token stream. Never fails: malformed input
/// (unterminated strings or comments) is consumed to end of file as the
/// token it started — the rules run on best effort, the compiler owns
/// rejection.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        let start = cur.i;
        let kind = if c == '/' && cur.peek(1) == Some('/') {
            lex_line_comment(&mut cur)
        } else if c == '/' && cur.peek(1) == Some('*') {
            lex_block_comment(&mut cur)
        } else if is_ident_start(c) {
            lex_ident_or_prefixed(&mut cur)
        } else if c == '\'' {
            lex_lifetime_or_char(&mut cur)
        } else if c == '"' {
            lex_string(&mut cur);
            TokenKind::StrLit
        } else if c.is_ascii_digit() {
            lex_number(&mut cur)
        } else {
            if c == ':' && cur.peek(1) == Some(':') {
                cur.bump();
            }
            cur.bump();
            TokenKind::Punct
        };
        let mut text: String = cur.chars[start..cur.i].iter().collect();
        if kind == TokenKind::Ident && text.starts_with("r#") {
            text = text[2..].to_string();
        }
        out.push(Token {
            kind,
            text,
            line,
            col,
            end_line: cur.line - u32::from(cur.col == 1),
        });
    }
    out
}

fn lex_line_comment(cur: &mut Cursor) -> TokenKind {
    // Consume `//`, classify on the third char, stop before the newline.
    cur.bump();
    cur.bump();
    let doc = matches!(cur.peek(0), Some('/' | '!'));
    while let Some(c) = cur.peek(0) {
        if c == '\n' {
            break;
        }
        cur.bump();
    }
    TokenKind::LineComment { doc }
}

fn lex_block_comment(cur: &mut Cursor) -> TokenKind {
    cur.bump();
    cur.bump();
    let doc = matches!(cur.peek(0), Some('*' | '!'))
        // `/**/` is an empty plain comment, not a doc comment.
        && !(cur.peek(0) == Some('*') && cur.peek(1) == Some('/'));
    let mut depth = 1usize;
    while depth > 0 {
        match (cur.peek(0), cur.peek(1)) {
            (Some('/'), Some('*')) => {
                depth += 1;
                cur.bump();
                cur.bump();
            }
            (Some('*'), Some('/')) => {
                depth -= 1;
                cur.bump();
                cur.bump();
            }
            (Some(_), _) => {
                cur.bump();
            }
            (None, _) => break,
        }
    }
    TokenKind::BlockComment { doc }
}

/// Identifier, or one of the literal forms that *start* like an
/// identifier: `r"…"`, `r#"…"#`, `r#ident`, `b"…"`, `b'…'`, `br#"…"#`.
fn lex_ident_or_prefixed(cur: &mut Cursor) -> TokenKind {
    let c = cur.peek(0).unwrap_or(' ');
    let n1 = cur.peek(1);
    if c == 'r' {
        match n1 {
            Some('"') => {
                cur.bump();
                lex_raw_string(cur);
                return TokenKind::StrLit;
            }
            Some('#') => {
                // Count the fence: hashes then `"` is a raw string;
                // hashes then an identifier char is a raw identifier.
                let mut k = 1;
                while cur.peek(k) == Some('#') {
                    k += 1;
                }
                if cur.peek(k) == Some('"') {
                    cur.bump();
                    lex_raw_string(cur);
                    return TokenKind::StrLit;
                }
                if k == 1 && cur.peek(1) == Some('#') && cur.peek(2).is_some_and(is_ident_start) {
                    cur.bump();
                    cur.bump();
                    while cur.peek(0).is_some_and(is_ident_continue) {
                        cur.bump();
                    }
                    return TokenKind::Ident;
                }
            }
            _ => {}
        }
    }
    if c == 'b' {
        match n1 {
            Some('"') => {
                cur.bump();
                lex_string(cur);
                return TokenKind::StrLit;
            }
            Some('\'') => {
                cur.bump();
                lex_char_body(cur);
                return TokenKind::CharLit;
            }
            Some('r') if matches!(cur.peek(2), Some('"' | '#')) => {
                cur.bump();
                cur.bump();
                lex_raw_string(cur);
                return TokenKind::StrLit;
            }
            _ => {}
        }
    }
    while cur.peek(0).is_some_and(is_ident_continue) {
        cur.bump();
    }
    TokenKind::Ident
}

/// At a `"`-or-`#` position: `#* " … " #*` with a matching fence.
fn lex_raw_string(cur: &mut Cursor) {
    let mut fence = 0usize;
    while cur.peek(0) == Some('#') {
        fence += 1;
        cur.bump();
    }
    cur.bump(); // opening quote
    loop {
        match cur.bump() {
            None => return,
            Some('"') => {
                let mut seen = 0usize;
                while seen < fence && cur.peek(0) == Some('#') {
                    seen += 1;
                    cur.bump();
                }
                if seen == fence {
                    return;
                }
            }
            Some(_) => {}
        }
    }
}

/// At the opening `"` of a cooked string: consume through the closing
/// quote, honoring `\"` and `\\` escapes. Newlines are legal inside.
fn lex_string(cur: &mut Cursor) {
    cur.bump();
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => return,
            _ => {}
        }
    }
}

/// At the opening `'`: decide lifetime vs. char literal.
///
/// `'a` (no closing quote after one identifier) is a lifetime; `'a'` is
/// a char; `'\n'` is a char; `'static` is a lifetime. The decision
/// needs two characters of lookahead past the identifier, which is why
/// regexes get this wrong.
fn lex_lifetime_or_char(cur: &mut Cursor) -> TokenKind {
    match cur.peek(1) {
        Some('\\') => {
            lex_char_body(cur);
            TokenKind::CharLit
        }
        Some(c) if is_ident_start(c) => {
            // Scan the identifier run; a closing quote right after it
            // means char literal, anything else means lifetime.
            let mut k = 2;
            while cur.peek(k).is_some_and(is_ident_continue) {
                k += 1;
            }
            if cur.peek(k) == Some('\'') {
                lex_char_body(cur);
                TokenKind::CharLit
            } else {
                cur.bump();
                while cur.peek(0).is_some_and(is_ident_continue) {
                    cur.bump();
                }
                TokenKind::Lifetime
            }
        }
        _ => {
            // `'('`, `' '`, `'0'` — single non-identifier char.
            lex_char_body(cur);
            TokenKind::CharLit
        }
    }
}

/// After the opening `'` of a char literal: consume the body and the
/// closing quote, honoring escapes.
fn lex_char_body(cur: &mut Cursor) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '\'' => return,
            _ => {}
        }
    }
}

fn lex_number(cur: &mut Cursor) -> TokenKind {
    // Prefix radix consumes alphanumerics wholesale (hex digits, the
    // radix letter itself, and any suffix all fall in this class).
    if cur.peek(0) == Some('0') && matches!(cur.peek(1), Some('x' | 'o' | 'b' | 'X' | 'O' | 'B')) {
        cur.bump();
        cur.bump();
        while cur.peek(0).is_some_and(is_ident_continue) {
            cur.bump();
        }
        return TokenKind::NumLit;
    }
    while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
        cur.bump();
    }
    // A fractional part only if the dot is followed by a digit — this
    // keeps `0..10` (range) and `1.max(2)` (method call) out of it.
    if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        cur.bump();
        while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
            cur.bump();
        }
    }
    // Exponent.
    if matches!(cur.peek(0), Some('e' | 'E'))
        && (cur.peek(1).is_some_and(|c| c.is_ascii_digit())
            || (matches!(cur.peek(1), Some('+' | '-'))
                && cur.peek(2).is_some_and(|c| c.is_ascii_digit())))
    {
        cur.bump();
        if matches!(cur.peek(0), Some('+' | '-')) {
            cur.bump();
        }
        while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
            cur.bump();
        }
    }
    // Type suffix (`u32`, `f64`, …).
    while cur.peek(0).is_some_and(is_ident_continue) {
        cur.bump();
    }
    TokenKind::NumLit
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_paths_and_punct() {
        let ts = kinds("use std::sync::Mutex;");
        let texts: Vec<&str> = ts.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(texts, ["use", "std", "::", "sync", "::", "Mutex", ";"]);
        assert_eq!(ts[2].0, TokenKind::Punct);
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        // A raw string containing what looks like code, comments, and
        // an unmatched quote — all one StrLit token.
        let src = r###"let s = r#"std::sync " /* not a comment */"#; x"###;
        let ts = kinds(src);
        let lits: Vec<_> = ts.iter().filter(|(k, _)| *k == TokenKind::StrLit).collect();
        assert_eq!(lits.len(), 1);
        assert!(lits[0].1.contains("std::sync"));
        // The trailing `x` is still seen as code.
        assert!(ts.iter().any(|(k, s)| *k == TokenKind::Ident && s == "x"));
        // And no comment token was fabricated from the contents.
        assert!(!ts
            .iter()
            .any(|(k, _)| matches!(k, TokenKind::BlockComment { .. })));
    }

    #[test]
    fn raw_string_fence_must_match() {
        // Two hashes: a single `"#` inside does not terminate it.
        let src = r####"r##"one "# still inside"## done"####;
        let ts = kinds(src);
        assert_eq!(ts[0].0, TokenKind::StrLit);
        assert!(ts[0].1.contains("still inside"));
        assert!(ts
            .iter()
            .any(|(k, s)| *k == TokenKind::Ident && s == "done"));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let ts = kinds(r##"b"bytes" br#"raw bytes"# b'x' after"##);
        assert_eq!(ts[0].0, TokenKind::StrLit);
        assert_eq!(ts[1].0, TokenKind::StrLit);
        assert_eq!(ts[2].0, TokenKind::CharLit);
        assert!(ts[3].1 == "after");
    }

    #[test]
    fn nested_block_comments() {
        let ts = kinds("a /* outer /* inner */ still outer */ b");
        assert_eq!(ts.len(), 3);
        assert_eq!(ts[0].1, "a");
        assert!(matches!(ts[1].0, TokenKind::BlockComment { doc: false }));
        assert!(ts[1].1.contains("still outer"));
        assert_eq!(ts[2].1, "b");
    }

    #[test]
    fn doc_comments_are_flagged() {
        let ts = kinds("/// outer doc\n//! inner doc\n// plain\n/** block doc */\n/**/ x");
        assert_eq!(ts[0].0, TokenKind::LineComment { doc: true });
        assert_eq!(ts[1].0, TokenKind::LineComment { doc: true });
        assert_eq!(ts[2].0, TokenKind::LineComment { doc: false });
        assert_eq!(ts[3].0, TokenKind::BlockComment { doc: true });
        // `/**/` is empty, not doc.
        assert_eq!(ts[4].0, TokenKind::BlockComment { doc: false });
    }

    #[test]
    fn lifetime_vs_char() {
        let ts = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; let s: &'static str; }");
        let lifes: Vec<_> = ts
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, s)| s.as_str())
            .collect();
        let chars: Vec<_> = ts
            .iter()
            .filter(|(k, _)| *k == TokenKind::CharLit)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(lifes, ["'a", "'a", "'static"]);
        assert_eq!(chars, ["'a'", "'\\n'"]);
    }

    #[test]
    fn char_escapes_and_quote_char() {
        let ts = kinds(r"'\'' ';' '\\'");
        assert!(ts
            .iter()
            .all(|(k, _)| matches!(k, TokenKind::CharLit | TokenKind::Punct)));
        assert_eq!(
            ts.iter().filter(|(k, _)| *k == TokenKind::CharLit).count(),
            3
        );
    }

    #[test]
    fn raw_identifiers_strip_prefix() {
        let ts = kinds("let r#type = r#match;");
        assert!(ts
            .iter()
            .any(|(k, s)| *k == TokenKind::Ident && s == "type"));
        assert!(ts
            .iter()
            .any(|(k, s)| *k == TokenKind::Ident && s == "match"));
    }

    #[test]
    fn numbers_ranges_and_tuple_access() {
        let ts = kinds("0..10 1.5e-3 0xFFu32 x.0 1_000");
        let nums: Vec<_> = ts
            .iter()
            .filter(|(k, _)| *k == TokenKind::NumLit)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(nums, ["0", "10", "1.5e-3", "0xFFu32", "0", "1_000"]);
    }

    #[test]
    fn positions_and_multiline_spans() {
        let ts = lex("a\n  /* two\nlines */ b");
        assert_eq!((ts[0].line, ts[0].col), (1, 1));
        assert_eq!((ts[1].line, ts[1].col), (2, 3));
        assert_eq!(ts[1].end_line, 3);
        assert_eq!((ts[2].line, ts[2].col), (3, 10));
    }

    #[test]
    fn strings_hide_comment_markers_and_quotes() {
        let ts = kinds(r#"let s = "// not a comment \" /* nor this */"; y"#);
        assert!(!ts.iter().any(|(k, _)| matches!(
            k,
            TokenKind::LineComment { .. } | TokenKind::BlockComment { .. }
        )));
        assert!(ts.iter().any(|(k, s)| *k == TokenKind::Ident && s == "y"));
    }

    #[test]
    fn unterminated_input_does_not_hang() {
        for src in ["/* open", "\"open", "r#\"open", "'", "b'"] {
            let _ = lex(src);
        }
    }
}
