//! The workspace must stay lint-clean: every violation is either fixed
//! or carries a reasoned allow. Run `nai lint --workspace` for the
//! file:line list when this fails.

use std::path::PathBuf;

#[test]
fn workspace_is_lint_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = nai_lint::lint_workspace(&root).expect("workspace lints");
    assert!(
        report.diags.is_empty(),
        "workspace has {} lint finding(s):\n{}",
        report.diags.len(),
        report
            .diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files > 100, "walker saw {} files", report.files);
}
