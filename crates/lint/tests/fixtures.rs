//! End-to-end rule coverage against the deliberately-bad fixture crate:
//! every rule must fire at a known site, the reasoned allow must
//! silence exactly its site, and the grouped-import line must prove the
//! linter a strict superset of the retired `lint_sync` grep.

use nai_lint::{lint_paths, Diagnostic};
use std::path::PathBuf;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bad-crate")
}

fn fixture_diags() -> Vec<Diagnostic> {
    lint_paths(&[fixture_dir()]).expect("fixture lints").diags
}

/// `(rule, line)` pairs on the fixture's `lib.rs`.
fn lib_sites(diags: &[Diagnostic]) -> Vec<(&str, u32)> {
    diags
        .iter()
        .filter(|d| d.path.ends_with("lib.rs"))
        .map(|d| (d.rule, d.line))
        .collect()
}

#[test]
fn every_rule_fires_on_the_fixture() {
    let diags = fixture_diags();
    let sites = lib_sites(&diags);
    // sync-facade: the plain `Instant` import, both arms of the grouped
    // import, and the fully-written atomic import.
    assert!(sites.contains(&("sync-facade", 10)), "{sites:?}");
    assert_eq!(
        sites.iter().filter(|s| *s == &("sync-facade", 11)).count(),
        2,
        "grouped import resolves to both std::sync and std::thread: {sites:?}"
    );
    assert!(sites.contains(&("sync-facade", 21)), "{sites:?}");
    assert!(sites.contains(&("ordering-invariant", 24)), "{sites:?}");
    assert!(sites.contains(&("lock-hygiene", 15)), "{sites:?}");
    assert!(sites.contains(&("hot-path-panic", 15)), "{sites:?}");
    assert!(sites.contains(&("hot-path-panic", 17)), "{sites:?}");
    // unused-dep: `leftpad` is never referenced; `quietpad` carries a
    // reasoned TOML allow and must not be reported.
    let manifest: Vec<_> = diags
        .iter()
        .filter(|d| d.path.ends_with("Cargo.toml"))
        .collect();
    assert_eq!(manifest.len(), 1, "{manifest:?}");
    assert_eq!(manifest[0].rule, "unused-dep");
    assert!(manifest[0].message.contains("leftpad"), "{manifest:?}");
}

#[test]
fn reasonless_allow_is_malformed_and_does_not_suppress() {
    let diags = fixture_diags();
    let sites = lib_sites(&diags);
    assert!(sites.contains(&("malformed-allow", 27)), "{sites:?}");
    // The unwrap it tried to cover is still reported…
    assert!(sites.contains(&("hot-path-panic", 29)), "{sites:?}");
    // …while the reasoned allow in `suppressed` silences its site.
    assert!(
        !sites.iter().any(|&(_, line)| line == 34),
        "reasoned allow failed to suppress: {sites:?}"
    );
}

/// The tentpole superset claim, proven on the fixture: the retired
/// `lint_sync` grep pattern (`std::sync\|std::thread` as literal
/// substrings) does not match the grouped-import line, while the
/// token-aware rule reports both trees on it.
#[test]
fn grouped_import_escapes_the_old_grep_but_not_the_linter() {
    let src = std::fs::read_to_string(fixture_dir().join("src/lib.rs")).expect("fixture source");
    let (idx, line) = src
        .lines()
        .enumerate()
        .find(|(_, l)| l.contains("sync::Mutex"))
        .expect("grouped import present");
    assert!(
        !line.contains("std::sync") && !line.contains("std::thread"),
        "fixture line must not literal-match the old grep: {line}"
    );
    let grouped_line = idx as u32 + 1;
    let diags = fixture_diags();
    let sites = lib_sites(&diags);
    assert_eq!(
        sites
            .iter()
            .filter(|s| **s == ("sync-facade", grouped_line))
            .count(),
        2,
        "{sites:?}"
    );
}
