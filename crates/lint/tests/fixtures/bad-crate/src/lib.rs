//! Deliberately-bad lint fixture: every rule must fire somewhere in
//! this file. `tests/fixtures.rs` asserts the exact findings and the
//! ci.sh `lint_selftest` step asserts the nonzero exit, so a rule that
//! silently stops firing breaks CI.

// The grouped form below is the case the retired `lint_sync` grep
// missed: the literal substrings `std::sync` and `std::thread` never
// appear, yet both trees are imported. tests/fixtures.rs proves the
// strict-superset claim against this exact line.
use std::time::Instant;
use std::{sync::Mutex, thread};

pub fn grouped(m: &Mutex<u32>) -> u32 {
    let t = Instant::now();
    let v = *m.lock().unwrap();
    thread::yield_now();
    println!("{v} {:?}", t.elapsed());
    v
}

use std::sync::atomic::{AtomicU32, Ordering};

pub fn uncommented_ordering(a: &AtomicU32) -> u32 {
    a.load(Ordering::Relaxed)
}

// nai-lint: allow(hot-path-panic)
pub fn reasonless(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn suppressed(x: Option<u32>) -> u32 {
    // nai-lint: allow(hot-path-panic) -- fixture: a reasoned allow silences
    x.unwrap()
}
