//! Property-based invariants for the log-bucketed histogram, checked
//! against the exact oracle (sort everything, nearest-rank): the whole
//! point of the histogram is to answer quantiles without retaining
//! samples, so these tests pin *how much* accuracy that trade gives up
//! — exactly the [`RELATIVE_ERROR`] the docs promise, never more.

use nai_obs::{bucket_index, bucket_range, HistogramSnapshot, LogHistogram, RELATIVE_ERROR};
use proptest::prelude::*;

/// Values spanning the interesting regimes: the exact sub-`2^SUB_BITS`
/// range, mid-range nanosecond-ish latencies, and hour-scale outliers.
/// Capped at 2^44 ns (~5 hours) — the histogram's `sum` is a plain
/// `u64` accumulator sized for real latencies, not adversarial
/// near-`u64::MAX` samples that wrap it.
fn value_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..64,
        0u64..100_000,
        0u64..10_000_000_000,
        0u64..(1 << 44),
    ]
}

fn samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(value_strategy(), 1..200)
}

/// Exact nearest-rank quantile over the raw samples — the oracle the
/// histogram is allowed to deviate from by at most [`RELATIVE_ERROR`].
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

fn record_all(values: &[u64]) -> HistogramSnapshot {
    let h = LogHistogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    /// Count and sum are exact: bucketing loses resolution on *which*
    /// value landed, never on how many or their total.
    #[test]
    fn count_and_sum_are_exact(values in samples()) {
        let snap = record_all(&values);
        prop_assert_eq!(snap.count(), values.len() as u64);
        let exact: u64 = values.iter().sum();
        prop_assert_eq!(snap.sum(), exact);
    }

    /// Every reported quantile is within the documented relative error
    /// of the exact nearest-rank answer over the raw samples.
    #[test]
    fn quantiles_match_exact_sort_within_documented_bound(values in samples()) {
        let snap = record_all(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let approx = snap.quantile(q);
            // The approximate answer is the midpoint of the bucket the
            // exact answer fell into, so it deviates by at most half
            // the bucket width — RELATIVE_ERROR of the bucket's upper
            // bound (and is exact for single-value buckets).
            let tolerance = (bucket_range(bucket_index(exact)).1 as f64 * RELATIVE_ERROR).ceil();
            let diff = approx.abs_diff(exact) as f64;
            prop_assert!(
                diff <= tolerance,
                "q={q}: exact {exact}, approx {approx}, diff {diff} > tol {tolerance}"
            );
        }
    }

    /// The reported max lands inside the bucket the true max fell
    /// into — within [`RELATIVE_ERROR`] of it, exact below
    /// `2^SUB_BITS` where buckets hold a single value.
    #[test]
    fn max_lands_in_the_true_maximums_bucket(values in samples()) {
        let snap = record_all(&values);
        let true_max = *values.iter().max().unwrap();
        let (lo, hi) = bucket_range(bucket_index(true_max));
        prop_assert!(
            snap.max() >= lo && snap.max() <= hi,
            "max {} outside bucket [{lo}, {hi}] of true max {true_max}",
            snap.max()
        );
    }

    /// Merging two snapshots is indistinguishable from recording the
    /// concatenation into one histogram — the property that lets
    /// scrapers merge per-source snapshots without double counting or
    /// losing samples.
    #[test]
    fn merge_equals_concat(a in samples(), b in samples()) {
        let mut merged = record_all(&a);
        merged.merge(&record_all(&b));
        let concat: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        let oracle = record_all(&concat);
        prop_assert_eq!(merged.count(), oracle.count());
        prop_assert_eq!(merged.sum(), oracle.sum());
        for q in [0.0, 0.5, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile(q), oracle.quantile(q));
        }
    }

    /// Quantiles are monotone in q, bounded by the bucketed min/max.
    #[test]
    fn quantiles_are_monotone(values in samples()) {
        let snap = record_all(&values);
        let qs = snap.quantiles(&[0.0, 0.1, 0.5, 0.9, 0.99, 1.0]);
        for w in qs.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles regressed: {:?}", qs);
        }
        prop_assert!(qs[qs.len() - 1] <= snap.max());
    }
}
