//! Exhaustive interleaving checks for the observability primitives,
//! compiled only under `--cfg nai_model` (ci.sh `model_check`), where
//! `nai_obs::sync` swaps `std::sync` for the workspace's `loom` model
//! checker (and the histogram shrinks to 8 buckets so its atomics fit
//! the modeled state space).
//!
//! The DFS tests assert `exhausted`, so a pass is a proof over every
//! schedule within the preemption bound, not a lucky run:
//!
//! 1. **Histogram no-tear** — `record` bumps `sum` before the bucket
//!    (both `Release`), `snapshot` reads buckets before `sum` (both
//!    `Acquire`); therefore a concurrent scrape can run mid-record
//!    and still never observe a bucket increment whose `sum`
//!    contribution is missing. Scrape-time means never undercount,
//!    and a joined snapshot is exact.
//! 2. **Flight-recorder capacity** — concurrent recorders never push
//!    a snapshot past `cap`, and once all recorders join the survivor
//!    is the slowest trace, under every interleaving of the interior
//!    lock.
#![cfg(nai_model)]

use loom::{Builder, Stats};
use nai_obs::sync::Arc;
use nai_obs::{FlightRecorder, LogHistogram, StageBreakdown, TraceRecord};

fn dfs(bound: usize) -> Builder {
    Builder {
        preemption_bound: Some(bound),
        ..Builder::new()
    }
}

/// A minimal trace whose only distinguishing feature is its latency.
fn trace(id: u64, total_ns: u64) -> TraceRecord {
    TraceRecord {
        trace_id: id,
        total_ns,
        stages: StageBreakdown::default(),
        nodes: vec![],
        depths: vec![],
        cache_hit: false,
        applied_seq: 0,
        batch_size: 1,
        close_reason: "max_batch",
    }
}

/// Invariant 1: two writers race a scraper. Every record adds value 1,
/// so an exact histogram always has `count == sum`; the lock-free one
/// is allowed to be mid-record — but only in the direction that makes
/// the scrape's mean an overestimate (`count <= sum`), never an
/// undercount. After both writers join, the snapshot is exact.
#[test]
fn histogram_snapshot_never_tears_or_undercounts() {
    let stats: Stats = dfs(2)
        .check_quiet(|| {
            let hist = Arc::new(LogHistogram::new());
            let writers: Vec<_> = (0..2)
                .map(|_| {
                    let hist = Arc::clone(&hist);
                    loom::thread::spawn(move || {
                        hist.record(1);
                        hist.record(1);
                    })
                })
                .collect();
            // Mid-flight scrape: somewhere inside the writers'
            // schedules.
            let snap = hist.snapshot();
            assert!(
                snap.count() <= snap.sum(),
                "bucket visible before its sum contribution: count {} > sum {}",
                snap.count(),
                snap.sum()
            );
            assert!(snap.sum() <= 4, "sum {} exceeds records issued", snap.sum());
            for h in writers {
                h.join().unwrap();
            }
            let settled = hist.snapshot();
            assert_eq!(settled.count(), 4, "settled count must be exact");
            assert_eq!(settled.sum(), 4, "settled sum must be exact");
            assert_eq!(settled.quantile(1.0), 1);
        })
        .expect("no-tear invariant violated");
    assert!(stats.exhausted, "bounded DFS must cover the whole tree");
}

/// Invariant 2: concurrent recorders racing for one retained slot.
/// A scrape concurrent with the inserts never sees more than `cap`
/// traces, and once both recorders join the surviving trace is the
/// slowest one — the replace-the-minimum protocol never keeps the
/// faster trace or duplicates a slot, wherever the lock handoffs land.
#[test]
fn recorder_capacity_holds_and_keeps_the_slowest() {
    let stats: Stats = dfs(2)
        .check_quiet(|| {
            let rec = Arc::new(FlightRecorder::new(1, 100));
            let handles: Vec<_> = [(1u64, 10u64), (2, 20)]
                .into_iter()
                .map(|(id, ns)| {
                    let rec = Arc::clone(&rec);
                    loom::thread::spawn(move || rec.record(trace(id, ns)))
                })
                .collect();
            let mid = rec.snapshot();
            assert!(mid.len() <= 1, "snapshot exceeded cap: {}", mid.len());
            for h in handles {
                h.join().unwrap();
            }
            let settled = rec.snapshot();
            assert_eq!(settled.len(), 1, "exactly the cap survives");
            assert_eq!(settled[0].trace_id, 2, "the slower trace must win");
        })
        .expect("capacity invariant violated");
    assert!(stats.exhausted, "bounded DFS must cover the whole tree");
}
