//! Request-lifecycle stage spans.
//!
//! A served prediction crosses seven stages, stamped by the serve
//! crate and aggregated here:
//!
//! | stage | span |
//! |-------|------|
//! | `parse` | transport ingress: request bytes read off the socket → parsed op submitted for admission (zero for in-process callers, which skip the transport) |
//! | `queue_wait` | admission (`submit`) → scheduler pops the job off the request channel |
//! | `batch_wait` | scheduler pop → the worker's engine call starts (batch forming window, channel transit, mutation validation, batch-mates' prefix work) |
//! | `engine_propagation` | feature propagation inside the engine: BFS support planning, stationary rows, per-hop SpMM steps, frontier shrinking |
//! | `engine_nap` | node-adaptive propagation exit decisions (distance / gate / upper-bound tests) |
//! | `engine_classify` | per-depth classifier forward passes and exit gathers |
//! | `serialize` | engine call returns → reply handed to the transport |
//!
//! The spans tile the request's lifetime: parse + queue_wait +
//! batch_wait + engine stages + serialize equals end-to-end latency
//! (measured from transport ingress when the request came over a
//! socket, from admission otherwise) up to the
//! engine's un-attributed glue (scratch swaps, validation — tens of
//! nanoseconds). The end-to-end accounting test in
//! `tests/observability.rs` holds the sum of mean stage times to
//! within 10% of the mean end-to-end latency. Engine-stage time is
//! whole-batch time attributed to every request in the batch — each
//! member really does wait for the coalesced call, so the identity
//! holds per request, not just in aggregate.

use crate::hist::LogHistogram;
use crate::HistogramSnapshot;

/// The pipeline stages of a served request, in lifecycle order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    Parse,
    QueueWait,
    BatchWait,
    EnginePropagation,
    EngineNap,
    EngineClassify,
    Serialize,
}

/// Number of [`Stage`] variants.
pub const STAGE_COUNT: usize = 7;

impl Stage {
    /// All stages in lifecycle order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Parse,
        Stage::QueueWait,
        Stage::BatchWait,
        Stage::EnginePropagation,
        Stage::EngineNap,
        Stage::EngineClassify,
        Stage::Serialize,
    ];

    /// Dense index, `0..STAGE_COUNT`, following lifecycle order.
    pub fn index(self) -> usize {
        match self {
            Stage::Parse => 0,
            Stage::QueueWait => 1,
            Stage::BatchWait => 2,
            Stage::EnginePropagation => 3,
            Stage::EngineNap => 4,
            Stage::EngineClassify => 5,
            Stage::Serialize => 6,
        }
    }

    /// Snake-case stage name: JSON keys, Prometheus `stage` label
    /// values, and trace fields all use this exact spelling.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::QueueWait => "queue_wait",
            Stage::BatchWait => "batch_wait",
            Stage::EnginePropagation => "engine_propagation",
            Stage::EngineNap => "engine_nap",
            Stage::EngineClassify => "engine_classify",
            Stage::Serialize => "serialize",
        }
    }
}

/// Per-request wall time spent in each stage, in nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageBreakdown {
    ns: [u64; STAGE_COUNT],
}

impl StageBreakdown {
    /// Time recorded for one stage, in nanoseconds.
    pub fn get(&self, s: Stage) -> u64 {
        self.ns[s.index()]
    }

    /// Sets one stage's time in nanoseconds (overwrites).
    pub fn set(&mut self, s: Stage, ns: u64) {
        self.ns[s.index()] = ns;
    }

    /// Sum across stages — the stage-accounted portion of the
    /// request's end-to-end latency.
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().sum()
    }
}

/// Why the batcher closed the batch a request rode in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseReason {
    /// The forming batch hit `max_batch` and dispatched immediately.
    MaxBatch,
    /// The `max_wait` deadline expired with a partial batch while
    /// other admitted requests were still in transit toward it.
    Deadline,
    /// Work-conserving close: every admitted request was already in
    /// the forming batch, so no further arrival was possible and
    /// waiting out `max_wait` could only add latency.
    Idle,
    /// The intake channel drained on shutdown with a partial batch —
    /// a teardown artifact, not a batching-policy outcome.
    Shutdown,
}

impl CloseReason {
    /// Stable string used in JSON, Prometheus labels, and traces.
    pub fn as_str(self) -> &'static str {
        match self {
            CloseReason::MaxBatch => "max_batch",
            CloseReason::Deadline => "deadline",
            CloseReason::Idle => "idle",
            CloseReason::Shutdown => "shutdown",
        }
    }
}

/// Cap on node ids / exit depths retained per trace: keeps flight
/// recorder entries bounded for pathological thousand-node requests.
pub const TRACE_NODE_CAP: usize = 8;

/// The full stage timeline of one served request, as captured by the
/// flight recorder for `GET /debug/slow`.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Monotone id assigned at admission.
    pub trace_id: u64,
    /// End-to-end latency (admission → reply handed to transport), ns.
    pub total_ns: u64,
    /// Per-stage wall times.
    pub stages: StageBreakdown,
    /// Node ids the request touched (first [`TRACE_NODE_CAP`]).
    pub nodes: Vec<u32>,
    /// NAP exit depth per retained node, parallel to `nodes`.
    pub depths: Vec<u32>,
    /// Answered from the versioned prediction cache, skipping the
    /// batcher and engine entirely.
    pub cache_hit: bool,
    /// Replication sequence number the answering replica had applied.
    pub applied_seq: u64,
    /// Size of the dispatched batch the request rode in (0 for cache
    /// hits — no batch).
    pub batch_size: u32,
    /// [`CloseReason`] string, or `"cache_hit"`.
    pub close_reason: &'static str,
}

/// One histogram per stage plus end-to-end: the aggregation target
/// every reply's [`StageBreakdown`] lands in.
#[derive(Debug, Default)]
pub struct StagePipeline {
    e2e: LogHistogram,
    stages: [LogHistogram; STAGE_COUNT],
}

impl StagePipeline {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one end-to-end latency sample (ns). Called once per
    /// prediction, matching the served-count semantics of `/metrics`.
    pub fn record_total(&self, ns: u64) {
        self.e2e.record(ns);
    }

    /// Records one request's stage breakdown (one sample per stage).
    pub fn record_stages(&self, b: &StageBreakdown) {
        for s in Stage::ALL {
            self.stages[s.index()].record(b.get(s));
        }
    }

    /// Snapshot of the end-to-end latency histogram.
    pub fn snapshot_total(&self) -> HistogramSnapshot {
        self.e2e.snapshot()
    }

    /// Snapshot of one stage's histogram.
    pub fn snapshot_stage(&self, s: Stage) -> HistogramSnapshot {
        self.stages[s.index()].snapshot()
    }
}

#[cfg(all(test, not(nai_model)))]
mod tests {
    use super::*;

    #[test]
    fn stage_indices_are_dense_and_ordered() {
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            [
                "parse",
                "queue_wait",
                "batch_wait",
                "engine_propagation",
                "engine_nap",
                "engine_classify",
                "serialize"
            ]
        );
    }

    #[test]
    fn breakdown_total_sums_stages() {
        let mut b = StageBreakdown::default();
        assert_eq!(b.total_ns(), 0);
        b.set(Stage::QueueWait, 5);
        b.set(Stage::EngineNap, 7);
        b.set(Stage::EngineNap, 9); // overwrite, not accumulate
        assert_eq!(b.get(Stage::EngineNap), 9);
        assert_eq!(b.total_ns(), 14);
    }

    #[test]
    fn pipeline_aggregates_per_stage() {
        let p = StagePipeline::new();
        let mut b = StageBreakdown::default();
        b.set(Stage::QueueWait, 10);
        b.set(Stage::Serialize, 2);
        p.record_stages(&b);
        p.record_total(12);
        assert_eq!(p.snapshot_total().count(), 1);
        assert_eq!(p.snapshot_total().sum(), 12);
        for s in Stage::ALL {
            assert_eq!(p.snapshot_stage(s).count(), 1, "{}", s.name());
        }
        assert_eq!(p.snapshot_stage(Stage::QueueWait).sum(), 10);
        assert_eq!(p.snapshot_stage(Stage::BatchWait).sum(), 0);
    }
}
