//! # nai-obs — observability primitives for the NAI serve stack
//!
//! Std-only building blocks behind `/metrics`, `/metrics?format=prom`,
//! and `/debug/slow`:
//!
//! * [`LogHistogram`] — a lock-free log-bucketed concurrent histogram
//!   (HDR-style: atomic u64 buckets, 32 sub-buckets per octave,
//!   ≤ ~1.6% relative error on reconstructed quantiles) with snapshot,
//!   merge, and quantile extraction. Replaces exact-sort
//!   `Vec<Duration>` sampling on the serve path: recording is
//!   wait-free and the footprint is fixed, so nothing restarts and
//!   scrapes never re-sort under a mutex.
//! * [`Stage`] / [`StageBreakdown`] / [`StagePipeline`] — per-request
//!   stage spans (`parse`, `queue_wait`, `batch_wait`,
//!   `engine_propagation`, `engine_nap`, `engine_classify`,
//!   `serialize`) aggregated into one histogram per stage.
//! * [`FlightRecorder`] / [`TraceRecord`] — the slowest-N requests per
//!   window with their full stage timelines, for `GET /debug/slow`.
//! * [`PromWriter`] — Prometheus text exposition (counters, gauges,
//!   and the log-bucketed histograms as native `_bucket`/`_sum`/
//!   `_count` series).
//!
//! All concurrency primitives are imported through [`sync`], the same
//! facade pattern as `nai-serve`: the `sync-facade` rule of `nai lint`
//! checks this crate's tokens for direct use of the standard sync and
//! thread modules outside the facade, and under
//! `--cfg nai_model` the facade swaps in the workspace's loom model
//! checker so `tests/model.rs` can exhaustively verify the histogram's
//! record/snapshot protocol and the recorder's capacity invariant.

pub mod hist;
pub mod prom;
pub mod recorder;
pub mod sync;
pub mod trace;

pub use hist::{bucket_index, bucket_mid, bucket_range, HistogramSnapshot, LogHistogram};
pub use hist::{NUM_BUCKETS, RELATIVE_ERROR, SUB_BITS};
pub use prom::PromWriter;
pub use recorder::FlightRecorder;
pub use trace::{
    CloseReason, Stage, StageBreakdown, StagePipeline, TraceRecord, STAGE_COUNT, TRACE_NODE_CAP,
};
