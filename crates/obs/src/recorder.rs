//! Flight recorder: the slowest-N requests per window, with full stage
//! timelines, for `GET /debug/slow`.
//!
//! Histograms answer *how much* tail there is; the recorder answers
//! *which requests* are the tail and *where their time went*. It keeps
//! two fixed-size generations — the window being filled and the last
//! completed one — so a scrape right after a window turnover still sees
//! the slow requests of the previous window instead of an empty list.
//!
//! Capacity invariant: each generation never holds more than `cap`
//! traces, however record and snapshot interleave (proved under the
//! loom model checker in `tests/model.rs`). Memory is therefore
//! bounded by `2·cap` traces regardless of traffic.
//!
//! The lock is uncontended in practice — `record` does a short
//! linear scan of at most `cap` entries — and is poison-recovering on
//! both paths, so a panicking worker cannot take `/debug/slow` down.

use crate::sync::{lock_recover, Mutex};
use crate::trace::TraceRecord;

#[derive(Debug, Default)]
struct Generations {
    /// Requests seen in the current window (not the number retained).
    seen: usize,
    current: Vec<TraceRecord>,
    previous: Vec<TraceRecord>,
}

/// Fixed-size recorder of the slowest requests per window.
#[derive(Debug)]
pub struct FlightRecorder {
    cap: usize,
    window: usize,
    inner: Mutex<Generations>,
}

impl FlightRecorder {
    /// `cap` slowest traces retained per window of `window` requests.
    /// Both are clamped to at least 1; `window` to at least `cap`.
    pub fn new(cap: usize, window: usize) -> Self {
        let cap = cap.max(1);
        FlightRecorder {
            cap,
            window: window.max(cap),
            inner: Mutex::new(Generations::default()),
        }
    }

    /// Slowest traces retained per window.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Requests per window.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Offers one completed trace. Kept only if the current window
    /// still has room or the trace is slower than the window's current
    /// fastest retained entry.
    pub fn record(&self, t: TraceRecord) {
        let mut g = lock_recover(&self.inner);
        if g.current.len() < self.cap {
            g.current.push(t);
        } else if let Some((i, min)) = g
            .current
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| r.total_ns)
            .map(|(i, r)| (i, r.total_ns))
        {
            if t.total_ns > min {
                g.current[i] = t;
            }
        }
        g.seen += 1;
        if g.seen >= self.window {
            g.previous = std::mem::take(&mut g.current);
            g.seen = 0;
        }
    }

    /// The slowest traces across the current and previous windows,
    /// slowest first, at most `cap` entries.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        let g = lock_recover(&self.inner);
        let mut out: Vec<TraceRecord> =
            g.current.iter().chain(g.previous.iter()).cloned().collect();
        drop(g);
        out.sort_by_key(|t| std::cmp::Reverse(t.total_ns));
        out.truncate(self.cap);
        out
    }
}

#[cfg(all(test, not(nai_model)))]
mod tests {
    use super::*;
    use crate::trace::StageBreakdown;

    fn trace(id: u64, total_ns: u64) -> TraceRecord {
        TraceRecord {
            trace_id: id,
            total_ns,
            stages: StageBreakdown::default(),
            nodes: vec![id as u32],
            depths: vec![1],
            cache_hit: false,
            applied_seq: 0,
            batch_size: 1,
            close_reason: "deadline",
        }
    }

    #[test]
    fn keeps_the_slowest_cap_traces() {
        let r = FlightRecorder::new(2, 100);
        for (id, ns) in [(1, 10), (2, 500), (3, 40), (4, 300)] {
            r.record(trace(id, ns));
        }
        let snap = r.snapshot();
        let ids: Vec<u64> = snap.iter().map(|t| t.trace_id).collect();
        assert_eq!(ids, vec![2, 4], "slowest first, capacity 2");
    }

    #[test]
    fn window_turnover_keeps_previous_generation_visible() {
        let r = FlightRecorder::new(2, 3);
        for (id, ns) in [(1, 100), (2, 200), (3, 300)] {
            r.record(trace(id, ns)); // fills and closes window 1
        }
        // Window 2 has seen nothing yet: the scrape must still surface
        // window 1's slow requests.
        let ids: Vec<u64> = r.snapshot().iter().map(|t| t.trace_id).collect();
        assert_eq!(ids, vec![3, 2]);
        // A fast window-2 request does not evict the visible history.
        r.record(trace(4, 1));
        let ids: Vec<u64> = r.snapshot().iter().map(|t| t.trace_id).collect();
        assert_eq!(ids, vec![3, 2]);
    }

    #[test]
    fn degenerate_parameters_are_clamped() {
        let r = FlightRecorder::new(0, 0);
        assert_eq!(r.cap(), 1);
        assert_eq!(r.window(), 1);
        r.record(trace(1, 10));
        r.record(trace(2, 5));
        assert_eq!(r.snapshot().len(), 1);
    }
}
