//! Prometheus text exposition (version 0.0.4) renderer.
//!
//! Naming conventions used across the serve surface:
//!
//! * every metric is prefixed `nai_`;
//! * monotone counters end in `_total`;
//! * durations are exposed in **seconds** (histograms recorded in
//!   nanoseconds are scaled by `1e-9` at render time);
//! * one metric name per logical quantity, with dimensions as labels
//!   (`stage="queue_wait"`, `reason="max_batch"`), never baked into
//!   the name.
//!
//! Histograms render as native cumulative series: one
//! `name_bucket{le="…"}` sample per *non-empty* log bucket (the
//! ~1900-bucket array would otherwise dwarf the payload), a closing
//! `le="+Inf"` bucket, and the exact `name_sum` / `name_count` pair.
//! Cumulative-ness is preserved because empty buckets add nothing to
//! the running total.

use crate::hist::HistogramSnapshot;

/// Accumulates one scrape's exposition text.
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
    /// Name of the metric family the last `# TYPE` line opened, so
    /// multi-series families emit their header exactly once.
    opened: Option<String>,
}

fn fmt_f64(v: f64) -> String {
    // `{}` on f64 never uses scientific notation and round-trips, both
    // fine for the exposition format; normalize the one exception.
    if v.is_infinite() {
        (if v > 0.0 { "+Inf" } else { "-Inf" }).to_string()
    } else {
        format!("{v}")
    }
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{{{}}}", inner.join(","))
}

impl PromWriter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a metric family: `# HELP` + `# TYPE`. Idempotent per
    /// name, so callers can interleave series of the same family.
    pub fn family(&mut self, name: &str, kind: &str, help: &str) {
        if self.opened.as_deref() == Some(name) {
            return;
        }
        self.out
            .push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
        self.opened = Some(name.to_string());
    }

    /// One counter sample. Call [`Self::family`] with kind `counter`
    /// first.
    pub fn counter(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.out
            .push_str(&format!("{name}{} {value}\n", render_labels(labels)));
    }

    /// One gauge sample. Call [`Self::family`] with kind `gauge`
    /// first.
    pub fn gauge(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(&format!(
            "{name}{} {}\n",
            render_labels(labels),
            fmt_f64(value)
        ));
    }

    /// One histogram series (`_bucket`/`_sum`/`_count`). Recorded
    /// values are multiplied by `scale` on the way out (pass `1e-9`
    /// for nanosecond recordings exposed as seconds, `1.0` for
    /// dimensionless). Call [`Self::family`] with kind `histogram`
    /// first.
    pub fn histogram(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        snap: &HistogramSnapshot,
        scale: f64,
    ) {
        let mut cumulative = 0u64;
        for (upper, count) in snap.nonzero_buckets() {
            cumulative += count;
            let le = fmt_f64(upper as f64 * scale);
            let mut with_le: Vec<(&str, &str)> = labels.to_vec();
            with_le.push(("le", le.as_str()));
            self.out.push_str(&format!(
                "{name}_bucket{} {cumulative}\n",
                render_labels(&with_le)
            ));
        }
        let mut with_inf: Vec<(&str, &str)> = labels.to_vec();
        with_inf.push(("le", "+Inf"));
        self.out.push_str(&format!(
            "{name}_bucket{} {}\n",
            render_labels(&with_inf),
            snap.count()
        ));
        let rendered = render_labels(labels);
        self.out.push_str(&format!(
            "{name}_sum{rendered} {}\n",
            fmt_f64(snap.sum() as f64 * scale)
        ));
        self.out
            .push_str(&format!("{name}_count{rendered} {}\n", snap.count()));
    }

    /// The finished exposition body.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(all(test, not(nai_model)))]
mod tests {
    use super::*;
    use crate::hist::LogHistogram;

    #[test]
    fn counter_and_gauge_render() {
        let mut w = PromWriter::new();
        w.family(
            "nai_requests_served_total",
            "counter",
            "Served predictions.",
        );
        w.counter("nai_requests_served_total", &[], 42);
        w.family("nai_queue_depth", "gauge", "Requests in flight.");
        w.gauge("nai_queue_depth", &[], 3.0);
        let body = w.finish();
        assert!(body.contains("# TYPE nai_requests_served_total counter\n"));
        assert!(body.contains("nai_requests_served_total 42\n"));
        assert!(body.contains("# TYPE nai_queue_depth gauge\n"));
        assert!(body.contains("nai_queue_depth 3\n"));
    }

    #[test]
    fn family_header_is_emitted_once_per_family() {
        let mut w = PromWriter::new();
        w.family("nai_batches_closed_total", "counter", "Batch closes.");
        w.counter("nai_batches_closed_total", &[("reason", "max_batch")], 7);
        w.family("nai_batches_closed_total", "counter", "Batch closes.");
        w.counter("nai_batches_closed_total", &[("reason", "deadline")], 9);
        let body = w.finish();
        assert_eq!(body.matches("# TYPE nai_batches_closed_total").count(), 1);
        assert!(body.contains("nai_batches_closed_total{reason=\"max_batch\"} 7\n"));
        assert!(body.contains("nai_batches_closed_total{reason=\"deadline\"} 9\n"));
    }

    #[test]
    fn histogram_series_is_cumulative_with_inf_and_exact_sum() {
        let h = LogHistogram::new();
        for v in [1u64, 1, 3] {
            h.record(v);
        }
        let mut w = PromWriter::new();
        w.family("nai_x", "histogram", "X.");
        w.histogram("nai_x", &[("stage", "queue_wait")], &h.snapshot(), 1.0);
        let body = w.finish();
        assert!(body.contains("nai_x_bucket{stage=\"queue_wait\",le=\"1\"} 2\n"));
        assert!(body.contains("nai_x_bucket{stage=\"queue_wait\",le=\"3\"} 3\n"));
        assert!(body.contains("nai_x_bucket{stage=\"queue_wait\",le=\"+Inf\"} 3\n"));
        assert!(body.contains("nai_x_sum{stage=\"queue_wait\"} 5\n"));
        assert!(body.contains("nai_x_count{stage=\"queue_wait\"} 3\n"));
    }

    #[test]
    fn nanoseconds_scale_to_seconds_without_scientific_notation() {
        let h = LogHistogram::new();
        h.record(1_500); // 1.5µs
        let mut w = PromWriter::new();
        w.family("nai_d", "histogram", "D.");
        w.histogram("nai_d", &[], &h.snapshot(), 1e-9);
        let body = w.finish();
        // 1500ns lands in the bucket whose inclusive upper bound is
        // 1503ns; scaled to seconds it must render as a plain decimal,
        // never exponent notation (Prometheus parsers accept both, but
        // plain decimals keep the greps in ci.sh trivial).
        assert!(body.contains("le=\"0.000001503\""), "{body}");
        assert!(body.contains("nai_d_sum 0.0000015\n"), "{body}");
        assert!(body.contains("nai_d_count 1\n"));
    }
}
