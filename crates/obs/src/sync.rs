//! Sync facade: the only module in `nai-obs` allowed to name
//! `std::sync` or `std::thread`.
//!
//! Every other file in this crate imports its concurrency primitives
//! from here (`crate::sync::…`), never from `std` directly — the
//! `sync-facade` rule of `nai lint` (crates/lint) enforces this at the
//! token level, exactly as it does for
//! `crates/serve/src`. Normal builds re-export the `std` types
//! unchanged, so the facade costs nothing. Under `--cfg nai_model`
//! (ci.sh `model_check`) the same names resolve to the workspace's
//! `loom` model checker, whose scheduler exhaustively explores thread
//! interleavings and whose atomics expose the weak memory model. That
//! switch is what lets `tests/model.rs` prove the histogram's
//! record/snapshot protocol and the flight recorder's capacity
//! invariant over *every* schedule within the preemption bound.

#[cfg(not(nai_model))]
pub use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

#[cfg(nai_model)]
pub use loom::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Atomic integers plus `Ordering`.
pub mod atomic {
    #[cfg(not(nai_model))]
    pub use std::sync::atomic::{AtomicU64, Ordering};

    #[cfg(nai_model)]
    pub use loom::sync::atomic::{AtomicU64, Ordering};
}

/// Lock, recovering from poison: a mutex poisoned by a panicking
/// thread still yields its data. The flight recorder uses this on both
/// the record and the scrape path so one dead worker cannot take
/// `/debug/slow` down with it; the data is a bounded list of completed
/// traces, safe to expose even if the poisoning panic interrupted an
/// insertion.
pub fn lock_recover<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}
