//! Lock-free log-bucketed concurrent histogram (HDR-style).
//!
//! The serve path records one latency sample per prediction at full
//! throughput, and `/metrics` scrapes quantiles concurrently. The
//! previous design (`LatencyStats` behind a mutex, an unbounded
//! `Vec<Duration>` restarted every 2^18 samples) bought exact quantiles
//! at the cost of a lock on the hot path, a re-sort on every scrape,
//! and a window restart that forgot history. This histogram inverts the
//! trade: recording is a wait-free pair of `fetch_add`s, the footprint
//! is a fixed ~15 KiB regardless of sample count, nothing is ever
//! dropped — and quantiles are approximate, within a documented
//! relative-error bound.
//!
//! # Bucketing scheme
//!
//! Values are `u64` (the serve path records nanoseconds). Each power of
//! two is split into `2^SUB_BITS = 32` equal sub-buckets:
//!
//! * `v < 32`: bucket `v` — one bucket per value, **exact**. This also
//!   makes the histogram an exact counter array for small-domain data
//!   (batch sizes, exit depths).
//! * otherwise: with `msb` the index of `v`'s highest set bit and
//!   `shift = msb - 5`, bucket `(shift + 1)·32 + (v >> shift) - 32`.
//!   The bucket then spans `2^shift` consecutive values starting at or
//!   above `32·2^shift`, so reconstructing a value as the bucket
//!   midpoint errs by at most `2^shift / 2` over a true value of at
//!   least `32·2^shift`: **≤ 1/64 ≈ 1.6% relative error**, inside the
//!   ~2% budget documented in [`RELATIVE_ERROR`].
//!
//! The top bucket's range ends exactly at `u64::MAX`; no clamping or
//! overflow case exists. Total: `(64 − 5 + 1)·32 = 1920` buckets.
//!
//! # Concurrency contract
//!
//! `record` bumps `sum` *before* the bucket counter, both with
//! `Release`; `snapshot` reads the buckets *before* `sum`, both with
//! `Acquire`. An observed bucket increment therefore always has its
//! value already included in the observed sum — a concurrent snapshot
//! may transiently over-report the mean (a sample's value visible
//! before its count) but never under-report it, and each counter is a
//! single atomic so no individual count ever tears. `tests/model.rs`
//! proves both properties under the loom model checker, where `Relaxed`
//! loads really do return stale values.

use crate::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each power-of-two range is split into
/// `2^SUB_BITS` equal buckets.
pub const SUB_BITS: u32 = 5;

const SUB: usize = 1 << SUB_BITS;

/// Worst-case relative error of any value reconstructed from its
/// bucket (quantiles, max): half a bucket width over the bucket's lower
/// bound, `2^(shift−1) / 32·2^shift = 1/64`.
pub const RELATIVE_ERROR: f64 = 1.0 / (SUB as f64 * 2.0);

/// Number of buckets. Under `--cfg nai_model` the array shrinks to a
/// handful of exact small-value buckets (values clamp into the last
/// one): every atomic access is a model-checker schedule point, so a
/// 1920-load snapshot would blow the bounded-DFS state space. The
/// record/snapshot protocol under test is identical at either size.
#[cfg(not(nai_model))]
pub const NUM_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB;
#[cfg(nai_model)]
pub const NUM_BUCKETS: usize = 8;

/// Bucket index for a value (see module docs for the scheme).
pub fn bucket_index(v: u64) -> usize {
    let idx = if v < SUB as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let shift = msb - SUB_BITS;
        ((shift + 1) as usize) * SUB + ((v >> shift) as usize - SUB)
    };
    // No-op for the full-size array (the scheme's maximum index is
    // NUM_BUCKETS - 1); clamps into the top bucket for the shrunken
    // model-checker array.
    idx.min(NUM_BUCKETS - 1)
}

/// Inclusive `(low, high)` value range of a bucket of the full-size
/// scheme.
pub fn bucket_range(i: usize) -> (u64, u64) {
    if i < SUB {
        (i as u64, i as u64)
    } else {
        let shift = (i / SUB - 1) as u32;
        let lo = ((SUB + i % SUB) as u64) << shift;
        // Parenthesized so the top bucket (which ends exactly at
        // u64::MAX) does not overflow in `lo + width` first.
        (lo, lo + ((1u64 << shift) - 1))
    }
}

/// The value a bucket's samples are reconstructed as: the bucket
/// midpoint (exact for single-value buckets below `2^SUB_BITS`).
pub fn bucket_mid(i: usize) -> u64 {
    let (lo, hi) = bucket_range(i);
    lo + (hi - lo) / 2
}

/// Lock-free concurrent histogram. `record` is wait-free; `snapshot`
/// is a read-only sweep. Cheap enough to keep one per pipeline stage.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    pub fn new() -> Self {
        LogHistogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample. Sum before bucket, both `Release` — see the
    /// module-level concurrency contract.
    pub fn record(&self, v: u64) {
        // Release ×2, sum before bucket: a snapshot that observes the
        // bucket increment also observes the sum it accounts for.
        self.sum.fetch_add(v, Ordering::Release);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Release);
    }

    /// A point-in-time copy safe to aggregate, serialize, or diff.
    /// Buckets before sum, both `Acquire` — see the module-level
    /// concurrency contract.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            // Acquire, buckets before sum (mirror of record's order).
            .map(|b| b.load(Ordering::Acquire))
            .collect();
        // Acquire: pairs with record's Release; sum ≥ what the
        // observed buckets account for.
        let sum = self.sum.load(Ordering::Acquire);
        HistogramSnapshot { counts, sum }
    }
}

/// Immutable copy of a [`LogHistogram`]: the quantile/merge surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            counts: vec![0; NUM_BUCKETS],
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean of recorded values (`0.0` when empty). Exact —
    /// the sum is tracked directly, not reconstructed from buckets.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Nearest-rank quantile (the same convention as
    /// `LatencyStats::quantile`, the exact-sort oracle it is tested
    /// against), reconstructed as the owning bucket's midpoint: within
    /// [`RELATIVE_ERROR`] of the exact answer. `0` when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_mid(i);
            }
        }
        bucket_mid(NUM_BUCKETS - 1)
    }

    /// Several quantiles in one pass over the buckets.
    pub fn quantiles(&self, qs: &[f64]) -> Vec<u64> {
        qs.iter().map(|&q| self.quantile(q)).collect()
    }

    /// Largest recorded value, reconstructed (midpoint of the highest
    /// non-empty bucket); `0` when empty.
    pub fn max(&self) -> u64 {
        match self.counts.iter().rposition(|&c| c > 0) {
            Some(i) => bucket_mid(i),
            None => 0,
        }
    }

    /// Accumulates `other` into `self`. Merging snapshots is exactly
    /// bucket-wise addition, so merge-then-quantile equals
    /// concatenate-then-quantile (property-tested in
    /// `tests/proptests.rs`).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, &theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.sum += other.sum;
    }

    /// `(inclusive upper bound, count)` for each non-empty bucket in
    /// ascending order — the raw series behind Prometheus `_bucket`
    /// exposition.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_range(i).1, c))
    }

    /// The exact small-value prefix: counts of values `0..2^SUB_BITS`,
    /// trimmed of trailing zeros. For small-domain data (exit depths,
    /// batch sizes ≤ 31) this *is* the exact histogram, in the same
    /// `hist[value] = count` shape `LatencyStats::depth_histogram`
    /// exposed.
    pub fn exact_small_counts(&self) -> Vec<u64> {
        let prefix = &self.counts[..SUB.min(self.counts.len())];
        let len = prefix.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
        prefix[..len].to_vec()
    }
}

#[cfg(all(test, not(nai_model)))]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = LogHistogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 32);
        assert_eq!(s.sum(), (0..32).sum::<u64>());
        for v in 0..32u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_mid(v as usize), v);
        }
        assert_eq!(s.exact_small_counts(), vec![1; 32]);
    }

    #[test]
    fn bucket_ranges_partition_u64() {
        // Consecutive buckets tile the axis with no gap or overlap,
        // ending exactly at u64::MAX.
        let mut expect_lo = 0u64;
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_range(i);
            assert_eq!(lo, expect_lo, "bucket {i} leaves a gap");
            assert!(hi >= lo);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
            if i + 1 == NUM_BUCKETS {
                assert_eq!(hi, u64::MAX);
            } else {
                expect_lo = hi + 1;
            }
        }
    }

    #[test]
    fn relative_error_bound_holds_pointwise() {
        for v in [
            31u64,
            32,
            33,
            1000,
            4096,
            123_456_789,
            u64::MAX / 3,
            u64::MAX,
        ] {
            let mid = bucket_mid(bucket_index(v));
            let err = mid.abs_diff(v) as f64 / v as f64;
            assert!(
                err <= RELATIVE_ERROR,
                "v={v} mid={mid} err={err} > {RELATIVE_ERROR}"
            );
        }
    }

    #[test]
    fn quantiles_match_nearest_rank_on_distinct_buckets() {
        // Values chosen to land in distinct buckets, so the histogram's
        // nearest-rank walk must agree with the exact answer.
        let h = LogHistogram::new();
        for v in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.0), 1);
        assert_eq!(s.quantile(0.5), 5);
        assert_eq!(s.quantile(1.0), 10);
        assert_eq!(s.max(), 10);
        assert_eq!(s.quantiles(&[0.5, 1.0]), vec![5, 10]);
    }

    #[test]
    fn empty_snapshot_is_all_zeroes() {
        let s = LogHistogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.exact_small_counts().is_empty());
        assert_eq!(s.nonzero_buckets().count(), 0);
        assert_eq!(s, HistogramSnapshot::default());
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let (a, b) = (LogHistogram::new(), LogHistogram::new());
        for v in [1u64, 50, 1000] {
            a.record(v);
        }
        for v in [2u64, 50, 70_000] {
            b.record(v);
        }
        let both = LogHistogram::new();
        for v in [1u64, 50, 1000, 2, 50, 70_000] {
            both.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, both.snapshot());
    }

    #[test]
    fn nonzero_buckets_cumulative_covers_count() {
        let h = LogHistogram::new();
        for v in [0u64, 5, 5, 100, 40_000] {
            h.record(v);
        }
        let s = h.snapshot();
        let total: u64 = s.nonzero_buckets().map(|(_, c)| c).sum();
        assert_eq!(total, s.count());
        let bounds: Vec<u64> = s.nonzero_buckets().map(|(ub, _)| ub).collect();
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "ascending bounds");
    }
}
