//! Property tests for the scenario topology generators (ISSUE 5
//! satellite): every family is deterministic for a fixed seed, emits a
//! well-formed CSR (sorted, deduped, in-bounds, no self-loops,
//! symmetric — all graphs here are undirected), and lands within
//! tolerance of its requested node/edge budget.

use nai_datasets::{TopologyKind, TopologySpec};
use proptest::prelude::*;

/// A spec exercising one of the five scenario families with
/// proptest-driven shape knobs. Hub counts are derived from the degree
/// budget so the pure leaf→hub edge space can actually hold the
/// requested edge count.
fn spec(kind_idx: usize, n: usize, classes: usize, avg_degree: f64, seed: u64) -> TopologySpec {
    let kind = match kind_idx {
        0 => TopologyKind::PowerLaw {
            a: 0.57,
            b: 0.19,
            c: 0.19,
        },
        1 => TopologyKind::Sbm {
            homophily: 0.8,
            power_law_exponent: 2.5,
        },
        2 => TopologyKind::Sbm {
            homophily: 0.2,
            power_law_exponent: 2.5,
        },
        3 => TopologyKind::SmallWorld { rewire: 0.15 },
        _ => TopologyKind::HubStar {
            hubs: ((avg_degree / 2.0).ceil() as usize + 1).max(2),
        },
    };
    TopologySpec {
        name: format!("prop-{kind_idx}"),
        kind,
        num_nodes: n,
        num_classes: classes,
        avg_degree,
        feature_dim: 6,
        feature_noise: 2.0,
        train_frac: 0.5,
        val_frac: 0.2,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(25))]

    #[test]
    fn every_generator_is_deterministic_well_formed_and_on_budget(
        kind_idx in 0..5usize,
        n in 80..240usize,
        classes in 2..6usize,
        avg in prop_oneof![Just(4.0f64), Just(6.0f64), Just(8.0f64)],
        seed in any::<u64>(),
    ) {
        let s = spec(kind_idx, n, classes, avg, seed);

        // Determinism: two builds of the same spec are bit-identical.
        let a = s.build();
        let b = s.build();
        prop_assert_eq!(&a.graph.labels, &b.graph.labels);
        prop_assert_eq!(a.graph.adj.indices(), b.graph.adj.indices());
        prop_assert_eq!(a.graph.adj.indptr(), b.graph.adj.indptr());
        prop_assert_eq!(a.graph.features.as_slice(), b.graph.features.as_slice());
        prop_assert_eq!(&a.split.test, &b.split.test);
        a.split.validate(a.graph.num_nodes()).map_err(|e| TestCaseError::fail(e.to_string()))?;

        // Well-formed CSR: monotone indptr, strictly ascending in-bounds
        // rows (sorted + deduped), no self-loops, symmetric.
        let g = &a.graph;
        let adj = &g.adj;
        prop_assert_eq!(adj.n(), n);
        let indptr = adj.indptr();
        prop_assert_eq!(indptr[0], 0);
        prop_assert_eq!(*indptr.last().unwrap(), adj.nnz());
        for i in 0..n {
            prop_assert!(indptr[i] <= indptr[i + 1]);
            let row = adj.row_indices(i);
            for w in row.windows(2) {
                prop_assert!(w[0] < w[1], "row {} not sorted/deduped", i);
            }
            for &j in row {
                prop_assert!((j as usize) < n, "column {} out of bounds", j);
                prop_assert_ne!(j as usize, i, "self-loop at {}", i);
                prop_assert!(
                    adj.row_indices(j as usize).binary_search(&(i as u32)).is_ok(),
                    "edge ({}, {}) missing its reverse", i, j
                );
            }
        }

        // Budgets: node count exact, undirected edge count within
        // tolerance of the family's own target (rejection-sampled
        // families lose edges to dedup on small dense shapes).
        prop_assert_eq!(g.num_nodes(), n);
        let target = s.edge_target() as f64;
        let m = g.num_edges() as f64;
        prop_assert!(
            (m - target).abs() <= 0.35 * target + 12.0,
            "{}: {} edges vs target {}", s.name, m, target
        );

        // Labels: in range and balanced to within one node per class.
        prop_assert!(g.labels.iter().all(|&l| (l as usize) < classes));
        let hist = g.class_histogram();
        let (lo, hi) = (n / classes, n.div_ceil(classes));
        prop_assert!(
            hist.iter().all(|&c| (lo..=hi).contains(&c)),
            "unbalanced class histogram {:?}", hist
        );
    }
}
