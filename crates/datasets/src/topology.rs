//! Parameterized synthetic topology scenarios.
//!
//! The paper's evaluation (§V) shows NAI's win depends on *graph
//! shape*: skewed-degree graphs let high-degree nodes exit after one or
//! two hops, homophilous graphs make propagation denoise features,
//! hub-heavy graphs concentrate read traffic on nodes that are cheap to
//! serve. [`TopologySpec`] makes that axis explicit: one seeded,
//! deterministic recipe per topology family, all funneled through the
//! same attributed-graph machinery as the paper-proxy datasets
//! ([`crate::load`] itself builds its SBM proxies through a
//! [`TopologySpec`]), so `nai bench` can sweep a (topology × workload)
//! matrix with no per-family special cases.

use crate::Scale;
use nai_graph::generators::{
    attributed, generate, hub_star_edges, rmat_edges, small_world_edges, GeneratorConfig,
};
use nai_graph::{Graph, InductiveSplit};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The topology family of a scenario: which edge-generation process
/// shapes the graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopologyKind {
    /// Degree-corrected stochastic block model (the paper-proxy
    /// machinery) with an explicit homophily knob: `homophily` close to
    /// 1 makes propagation denoise features, close to 0 makes it
    /// *mix* classes (the heterophilous regime of "Rethinking
    /// Node-wise Propagation").
    Sbm {
        /// Probability an edge stays inside its source's class.
        homophily: f64,
        /// Pareto exponent of the degree weights.
        power_law_exponent: f64,
    },
    /// R-MAT recursive-matrix power-law graph (quadrant probabilities
    /// `(a, b, c)`, fourth implied): the classic skewed-degree shape.
    PowerLaw {
        /// Top-left quadrant probability (skew strength).
        a: f64,
        /// Top-right quadrant probability.
        b: f64,
        /// Bottom-left quadrant probability.
        c: f64,
    },
    /// Watts–Strogatz ring lattice with rewiring probability `rewire`:
    /// near-homogeneous degrees, the anti-adaptive worst case.
    SmallWorld {
        /// Probability each lattice edge is rewired to a random node.
        rewire: f64,
    },
    /// A few extreme hubs absorb almost every edge; `hubs` is the hub
    /// count (node ids `0..hubs`, hub 0 hottest).
    HubStar {
        /// Number of hub nodes.
        hubs: usize,
    },
}

/// A fully parameterized, seeded scenario topology. Building the same
/// spec twice yields bit-identical graphs and splits.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologySpec {
    /// Cell label in bench reports (e.g. `"power-law"`).
    pub name: String,
    /// Edge-generation family and its knobs.
    pub kind: TopologyKind,
    /// Number of nodes `n`.
    pub num_nodes: usize,
    /// Number of classes `c`.
    pub num_classes: usize,
    /// Target average degree `2m / n`.
    pub avg_degree: f64,
    /// Feature dimensionality `f`.
    pub feature_dim: usize,
    /// Per-node feature noise (see [`GeneratorConfig::feature_noise`]).
    pub feature_noise: f32,
    /// Inductive-split train fraction.
    pub train_frac: f64,
    /// Inductive-split validation fraction.
    pub val_frac: f64,
    /// Master generation seed.
    pub seed: u64,
}

/// A built scenario: the attributed graph plus its inductive split.
pub struct Scenario {
    /// The spec's cell label.
    pub name: String,
    /// The generated graph.
    pub graph: Graph,
    /// Inductive split (train/val/test) over the graph's nodes.
    pub split: InductiveSplit,
}

impl TopologySpec {
    /// Scenario sizing per scale: `(num_nodes, feature_dim)`.
    fn scale_shape(scale: Scale) -> (usize, usize) {
        match scale {
            Scale::Test => (500, 12),
            Scale::Bench => (8_000, 48),
        }
    }

    /// The named scenario topology at a scale.
    ///
    /// # Errors
    /// Returns the list of known names when `name` is unknown.
    pub fn named(name: &str, scale: Scale) -> Result<TopologySpec, String> {
        let (num_nodes, feature_dim) = Self::scale_shape(scale);
        let base = |name: &str, kind, seed| TopologySpec {
            name: name.to_string(),
            kind,
            num_nodes,
            num_classes: 5,
            avg_degree: 8.0,
            feature_dim,
            feature_noise: 2.0,
            train_frac: 0.5,
            val_frac: 0.2,
            seed,
        };
        match name {
            "power-law" => Ok(base(
                name,
                TopologyKind::PowerLaw {
                    a: 0.57,
                    b: 0.19,
                    c: 0.19,
                },
                0x9077A,
            )),
            "sbm-homophilous" => Ok(base(
                name,
                TopologyKind::Sbm {
                    homophily: 0.85,
                    power_law_exponent: 2.5,
                },
                0x58311,
            )),
            "sbm-heterophilous" => Ok(base(
                name,
                TopologyKind::Sbm {
                    homophily: 0.15,
                    power_law_exponent: 2.5,
                },
                0x58312,
            )),
            "small-world" => Ok(base(
                name,
                TopologyKind::SmallWorld { rewire: 0.1 },
                0x53A11,
            )),
            "hub-star" => Ok(base(
                name,
                TopologyKind::HubStar {
                    hubs: (num_nodes / 100).max(3),
                },
                0x40B57,
            )),
            other => Err(format!(
                "unknown topology `{other}` (expected power-law | sbm-homophilous | \
                 sbm-heterophilous | small-world | hub-star)"
            )),
        }
    }

    /// The default scenario matrix: one spec per topology family, in
    /// bench-report order.
    pub fn matrix(scale: Scale) -> Vec<TopologySpec> {
        [
            "power-law",
            "sbm-homophilous",
            "sbm-heterophilous",
            "small-world",
            "hub-star",
        ]
        .iter()
        .map(|n| Self::named(n, scale).expect("matrix names are known"))
        .collect()
    }

    /// Wraps an existing [`GeneratorConfig`] (the paper-proxy
    /// machinery) as an SBM scenario — [`crate::load`] routes through
    /// this, so the proxies and the scenario matrix share one build
    /// path.
    pub fn from_generator_config(
        name: &str,
        cfg: &GeneratorConfig,
        train_frac: f64,
        val_frac: f64,
        seed: u64,
    ) -> TopologySpec {
        TopologySpec {
            name: name.to_string(),
            kind: TopologyKind::Sbm {
                homophily: cfg.homophily,
                power_law_exponent: cfg.power_law_exponent,
            },
            num_nodes: cfg.num_nodes,
            num_classes: cfg.num_classes,
            avg_degree: cfg.avg_degree,
            feature_dim: cfg.feature_dim,
            feature_noise: cfg.feature_noise,
            train_frac,
            val_frac,
            seed,
        }
    }

    /// The undirected-edge budget this spec aims for. Small-world
    /// realizes `n · k_per_side` lattice edges (its own exact shape);
    /// everything else targets `n · avg_degree / 2`.
    pub fn edge_target(&self) -> usize {
        match self.kind {
            TopologyKind::SmallWorld { .. } => self.num_nodes * self.k_per_side(),
            _ => ((self.num_nodes as f64 * self.avg_degree) / 2.0).round() as usize,
        }
    }

    /// Lattice half-width for the small-world family.
    fn k_per_side(&self) -> usize {
        ((self.avg_degree / 2.0).round() as usize).max(1)
    }

    /// Builds the scenario: deterministic for a fixed spec (same seed →
    /// bit-identical graph, features, labels, and split).
    ///
    /// # Panics
    /// Panics on degenerate shapes (fewer nodes than classes/hubs).
    pub fn build(&self) -> Scenario {
        let mut rng = StdRng::seed_from_u64(self.seed);
        // One source of truth with the proptest budget check: the arms
        // that take an explicit edge budget are exactly the arms where
        // `edge_target` is the `n · avg_degree / 2` form.
        let m_target = self.edge_target();
        let graph = match self.kind {
            TopologyKind::Sbm {
                homophily,
                power_law_exponent,
            } => generate(
                &GeneratorConfig {
                    num_nodes: self.num_nodes,
                    num_classes: self.num_classes,
                    avg_degree: self.avg_degree,
                    power_law_exponent,
                    homophily,
                    feature_dim: self.feature_dim,
                    feature_noise: self.feature_noise,
                },
                &mut rng,
            ),
            TopologyKind::PowerLaw { a, b, c } => {
                let edges = rmat_edges(self.num_nodes, m_target, (a, b, c), &mut rng);
                attributed(
                    self.num_nodes,
                    &edges,
                    self.num_classes,
                    self.feature_dim,
                    self.feature_noise,
                    &mut rng,
                )
            }
            TopologyKind::SmallWorld { rewire } => {
                let edges = small_world_edges(self.num_nodes, self.k_per_side(), rewire, &mut rng);
                attributed(
                    self.num_nodes,
                    &edges,
                    self.num_classes,
                    self.feature_dim,
                    self.feature_noise,
                    &mut rng,
                )
            }
            TopologyKind::HubStar { hubs } => {
                let edges = hub_star_edges(self.num_nodes, hubs, m_target, &mut rng);
                attributed(
                    self.num_nodes,
                    &edges,
                    self.num_classes,
                    self.feature_dim,
                    self.feature_noise,
                    &mut rng,
                )
            }
        };
        let split = InductiveSplit::random(
            graph.num_nodes(),
            self.train_frac,
            self.val_frac,
            &mut StdRng::seed_from_u64(self.seed ^ 0x5147),
        );
        Scenario {
            name: self.name.clone(),
            graph,
            split,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_every_family_with_distinct_names() {
        let matrix = TopologySpec::matrix(Scale::Test);
        assert!(matrix.len() >= 4, "bench needs ≥ 4 topologies");
        let names: std::collections::HashSet<&str> =
            matrix.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names.len(), matrix.len(), "names must be unique");
        for spec in &matrix {
            assert_eq!(TopologySpec::named(&spec.name, Scale::Test).unwrap(), *spec);
        }
        assert!(TopologySpec::named("torus", Scale::Test).is_err());
    }

    #[test]
    fn build_is_deterministic_and_split_is_valid() {
        for spec in TopologySpec::matrix(Scale::Test) {
            let a = spec.build();
            let b = spec.build();
            assert_eq!(a.graph.labels, b.graph.labels, "{}", spec.name);
            assert_eq!(
                a.graph.adj.indices(),
                b.graph.adj.indices(),
                "{}",
                spec.name
            );
            assert_eq!(
                a.graph.features.as_slice(),
                b.graph.features.as_slice(),
                "{}",
                spec.name
            );
            assert_eq!(a.split.test, b.split.test, "{}", spec.name);
            a.split.validate(a.graph.num_nodes()).unwrap();
            assert_eq!(a.graph.num_nodes(), spec.num_nodes);
        }
    }

    #[test]
    fn families_realize_their_shapes() {
        let get = |name: &str| TopologySpec::named(name, Scale::Test).unwrap().build();
        // Hub-star: hottest node degree is an order of magnitude above
        // the mean; small-world: max degree stays near the mean.
        let hub = get("hub-star");
        let sw = get("small-world");
        let max_deg =
            |g: &Graph| (0..g.num_nodes()).map(|i| g.adj.row_nnz(i)).max().unwrap() as f64;
        let mean_deg = |g: &Graph| 2.0 * g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(max_deg(&hub.graph) > 10.0 * mean_deg(&hub.graph));
        assert!(max_deg(&sw.graph) < 3.0 * mean_deg(&sw.graph));
        // Homophily knob: intra-class edge fractions on opposite sides.
        let intra_frac = |g: &Graph| {
            let mut intra = 0usize;
            let mut total = 0usize;
            for i in 0..g.num_nodes() {
                for (j, _) in g.adj.row_iter(i) {
                    total += 1;
                    intra += usize::from(g.labels[i] == g.labels[j as usize]);
                }
            }
            intra as f64 / total as f64
        };
        assert!(intra_frac(&get("sbm-homophilous").graph) > 0.6);
        assert!(intra_frac(&get("sbm-heterophilous").graph) < 0.4);
    }
}
