//! Torture tests for the event-driven HTTP transport — the reactor's
//! externally visible contract, over real sockets:
//!
//! * **pipelining determinism** — a keep-alive connection writing
//!   whole bursts in one syscall and a fleet of per-request
//!   `Connection: close` connections produce **bit-equal** response
//!   streams, both matching a single-threaded engine oracle replay;
//! * **isolation** — a slowloris connection (drip-feeding a request
//!   forever) and a half-open connection (connected, then silent) are
//!   evicted on `read_timeout` without stalling concurrent healthy
//!   traffic;
//! * **drain semantics** — `/shutdown` racing an in-flight pipelined
//!   burst still answers every request of the burst before the
//!   reactor closes the connection and exits;
//! * **protocol edges** — HTTP/1.0 defaults to close, oversized
//!   bodies are rejected with 400 without killing the server.
#![cfg(not(nai_model))]

use nai_core::config::{CacheConfig, InferenceConfig, LoadShedPolicy, ServeConfig};
use nai_models::{DepthClassifier, ModelKind};
use nai_serve::{proto, HttpClient, Json, NaiService, Op, Request, Server, TransportConfig};
use nai_stream::{DynamicGraph, StreamingEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

const F: usize = 6;
const K: usize = 2;
const CLASSES: usize = 4;
const SEED_NODES: usize = 90;

/// Engines with deterministic (seeded, untrained) weights: every call
/// builds a bit-identical replica, so transports and oracles agree.
fn engine() -> StreamingEngine {
    let g = nai_graph::generators::generate(
        &nai_graph::generators::GeneratorConfig {
            num_nodes: SEED_NODES,
            num_classes: CLASSES,
            feature_dim: F,
            avg_degree: 5.0,
            ..Default::default()
        },
        &mut StdRng::seed_from_u64(41),
    );
    let mut rng = StdRng::seed_from_u64(42);
    let classifiers: Vec<DepthClassifier> = (1..=K)
        .map(|d| DepthClassifier::new(ModelKind::Sgc, d, F, CLASSES, &[8], 0.0, &mut rng))
        .collect();
    StreamingEngine::with_lambda2(DynamicGraph::from_graph(&g), classifiers, None, 0.5, 0.9)
}

fn infer_cfg() -> InferenceConfig {
    InferenceConfig::distance(0.5, 1, K)
}

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        workers: 1, // one replica: `shard` is constant, replies are bit-stable
        max_batch: 8,
        max_wait: Duration::from_millis(1),
        queue_cap: 256,
        shed: LoadShedPolicy {
            trigger_fraction: 1.0,
            t_max_cap: 0, // shedding off: depths must match the oracle
        },
        cache: CacheConfig::off(),
    }
}

fn boot(cfg: TransportConfig) -> Server {
    let service = NaiService::new(vec![engine()], infer_cfg(), serve_cfg()).unwrap();
    Server::start_with(Arc::new(service), "127.0.0.1:0", cfg).unwrap()
}

fn render_line(op: &Op) -> String {
    let line = proto::render_request(&Request {
        op: op.clone(),
        shard: None,
    });
    format!("{line}\n")
}

/// A deterministic burst script: every burst is one mutation followed
/// by three reads, the first of which reads back the newest ingested
/// id — read-your-writes *within* a single pipelined burst (the
/// admission queue is FIFO, so a read admitted after a mutation
/// always observes it). Bursts carry exactly one mutation each
/// because co-batched mutations are answered by one flush after the
/// whole prefix: their predictions legitimately depend on racy batch
/// composition, which would make a bit-equality check meaningless.
fn burst_script(seed: u64, bursts: usize) -> Vec<Vec<Op>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nodes = SEED_NODES as u32;
    let mut last_ingested: Option<u32> = None;
    (0..bursts)
        .map(|i| {
            let mutation = if i % 2 == 0 {
                let neighbors: Vec<u32> = (0..3).map(|_| rng.gen_range(0..nodes)).collect();
                nodes += 1;
                last_ingested = Some(nodes - 1);
                Op::Ingest {
                    features: (0..F).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
                    neighbors,
                }
            } else {
                let u = rng.gen_range(0..nodes);
                let v = (u + 1 + rng.gen_range(0..nodes - 1)) % nodes;
                Op::ObserveEdge { u, v }
            };
            let mut ops = vec![mutation];
            for j in 0..3 {
                let mut read = vec![rng.gen_range(0..nodes)];
                if j == 0 {
                    if let Some(fresh) = last_ingested {
                        read.push(fresh);
                    }
                }
                ops.push(Op::Infer { nodes: read });
            }
            ops
        })
        .collect()
}

#[test]
fn pipelined_bursts_and_per_request_connections_are_bit_equal_to_the_oracle() {
    let script = burst_script(9001, 8);

    // Transport A: one keep-alive connection, each burst written in a
    // single syscall, responses read back in order.
    let server = boot(TransportConfig::default());
    let addr = server.local_addr();
    let mut client = HttpClient::connect(addr).unwrap();
    let mut pipelined: Vec<(u16, String)> = Vec::new();
    for burst in &script {
        let bodies: Vec<String> = burst.iter().map(render_line).collect();
        let refs: Vec<&str> = bodies.iter().map(String::as_str).collect();
        pipelined.extend(client.pipeline("POST", "/v1", &refs).unwrap());
    }
    drop(client);
    server.shutdown();

    // Transport B: a fresh connection per request, `Connection: close`
    // on each — the old thread-per-connection usage pattern.
    let server = boot(TransportConfig::default());
    let addr = server.local_addr();
    let mut per_request: Vec<(u16, String)> = Vec::new();
    for op in script.iter().flatten() {
        let mut client = HttpClient::connect(addr).unwrap();
        per_request.push(
            client
                .request_closing("POST", "/v1", Some(&render_line(op)))
                .unwrap(),
        );
        // The server honors the close: the next read sees EOF.
        assert!(
            client.recv().is_err(),
            "connection must be closed after Connection: close"
        );
    }
    server.shutdown();

    assert_eq!(
        pipelined, per_request,
        "the transport must not change a single response byte"
    );

    // Both match a single-threaded oracle replay of the same stream.
    let mut oracle = engine();
    for (op, (status, body)) in script.iter().flatten().zip(&pipelined) {
        assert_eq!(*status, 200, "body: {body}");
        let reply = Json::parse(body.trim()).unwrap();
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
        match op {
            Op::Infer { nodes } => {
                let expected = oracle.infer_nodes(nodes, &infer_cfg());
                let results = reply.get("results").unwrap().as_arr().unwrap();
                assert_eq!(results.len(), nodes.len());
                for (r, &(pred, depth)) in results.iter().zip(&expected) {
                    assert_eq!(r.get("prediction").unwrap().as_u64(), Some(pred as u64));
                    assert_eq!(r.get("depth").unwrap().as_u64(), Some(depth as u64));
                }
            }
            Op::Ingest {
                features,
                neighbors,
            } => {
                let id = oracle.ingest(features, neighbors);
                let expected = oracle.flush(&infer_cfg());
                assert_eq!(reply.get("node").unwrap().as_u64(), Some(id as u64));
                assert_eq!(
                    reply.get("prediction").unwrap().as_u64(),
                    Some(expected[0].prediction as u64)
                );
            }
            Op::ObserveEdge { u, v } => {
                let added = oracle.observe_edge(*u, *v);
                assert_eq!(reply.get("added").and_then(Json::as_bool), Some(added));
            }
        }
    }
}

#[test]
fn slowloris_and_half_open_connections_are_evicted_without_stalling_others() {
    let server = boot(TransportConfig {
        read_timeout: Duration::from_millis(200),
        drain_grace: Duration::from_secs(2),
    });
    let addr = server.local_addr();

    // A half-open connection: connects, then never sends a byte.
    let mut half_open = TcpStream::connect(addr).unwrap();
    half_open
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();

    // A slowloris: starts a request it will never finish.
    let mut slowloris = TcpStream::connect(addr).unwrap();
    slowloris
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    slowloris.write_all(b"POST /v1 HTTP/1.1\r\nHo").unwrap();

    // Healthy traffic flows past both for longer than `read_timeout`;
    // its own activity keeps refreshing its eviction clock.
    let mut client = HttpClient::connect(addr).unwrap();
    let started = Instant::now();
    let mut served = 0u32;
    while started.elapsed() < Duration::from_millis(500) {
        let line = format!("{{\"op\": \"infer\", \"nodes\": [{}]}}\n", served % 10);
        let (status, body) = client.request("POST", "/v1", Some(&line)).unwrap();
        assert_eq!(status, 200, "healthy request stalled: {body}");
        served += 1;
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(served > 10);

    // Both stuck connections were evicted: the server closed them, so
    // a blocking read observes EOF (or a reset) rather than our 5 s
    // client timeout.
    let evicted = |stream: &mut TcpStream| {
        let mut sink = [0u8; 16];
        match stream.read(&mut sink) {
            Ok(0) => true,
            Err(e) => e.kind() == std::io::ErrorKind::ConnectionReset,
            Ok(_) => false,
        }
    };
    assert!(
        evicted(&mut half_open),
        "half-open connection must be closed by the eviction sweep"
    );
    assert!(
        evicted(&mut slowloris),
        "slowloris must be evicted, not waited on forever"
    );

    // The healthy connection is still serving after the evictions.
    let (status, _) = client
        .request("POST", "/v1", Some("{\"op\": \"infer\", \"nodes\": [1]}\n"))
        .unwrap();
    assert_eq!(status, 200);
    server.shutdown();
}

/// Clamps the client-side receive buffer to 16 KiB. Setting SO_RCVBUF
/// also disables the kernel's receive-buffer autotuning (which can
/// otherwise grow to tens of megabytes on loopback), so a client that
/// stops reading jams the server's write path after ~100 KiB instead
/// of letting the kernel silently absorb the whole test.
fn shrink_rcvbuf(stream: &TcpStream) {
    #[cfg(target_os = "linux")]
    const SOL_SOCKET: i32 = 1;
    #[cfg(target_os = "linux")]
    const SO_RCVBUF: i32 = 8;
    #[cfg(not(target_os = "linux"))]
    const SOL_SOCKET: i32 = 0xffff;
    #[cfg(not(target_os = "linux"))]
    const SO_RCVBUF: i32 = 0x1002;
    extern "C" {
        fn setsockopt(
            fd: i32,
            level: i32,
            optname: i32,
            optval: *const std::ffi::c_void,
            optlen: u32,
        ) -> i32;
    }
    use std::os::unix::io::AsRawFd;
    let size: i32 = 16 * 1024;
    // SAFETY: plain syscall on an open fd; the kernel copies optval.
    let rc = unsafe {
        setsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_RCVBUF,
            &size as *const i32 as *const std::ffi::c_void,
            std::mem::size_of::<i32>() as u32,
        )
    };
    assert_eq!(rc, 0, "setsockopt(SO_RCVBUF) failed");
}

/// One full `GET /metrics` exchange over a raw socket, to size the
/// flood tests: returns the wire length of a single response.
fn metrics_wire_len(addr: std::net::SocketAddr) -> usize {
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    raw.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
    let mut response = Vec::new();
    raw.read_to_end(&mut response).unwrap();
    assert!(response.starts_with(b"HTTP/1.1 200"), "metrics probe");
    response.len()
}

#[test]
fn non_reading_peer_is_evicted_despite_write_backlog() {
    const REQ: &[u8] = b"GET /metrics HTTP/1.1\r\n\r\n";
    let read_timeout = Duration::from_millis(300);
    let server = boot(TransportConfig {
        read_timeout,
        drain_grace: Duration::from_secs(2),
    });
    let addr = server.local_addr();

    // Flood pipelined requests until the server's backpressure
    // genuinely stalls us — it stops reading once the backlog cap
    // trips and we never drain a byte, so a sustained write stall
    // means response bytes are pinned in the reactor's write backlog
    // beyond anything the kernel's socket buffers could absorb. The
    // 8 MiB ceiling (~420 MiB of implied responses) is a runtime
    // bound, not the expected stop: the stall fires long before it.
    const MAX_FLOOD_BYTES: usize = 8 * 1024 * 1024;
    let mut stalled = TcpStream::connect(addr).unwrap();
    shrink_rcvbuf(&stalled);
    stalled
        .set_write_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    stalled
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    let mut written = 0usize;
    let mut stalls = 0u32;
    'flood: while written < MAX_FLOOD_BYTES {
        let mut line = REQ;
        while !line.is_empty() {
            match stalled.write(line) {
                Ok(0) => break 'flood,
                Ok(n) => {
                    written += n;
                    line = &line[n..];
                    stalls = 0;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    stalls += 1;
                    if stalls >= 3 {
                        break 'flood; // ~300 ms without a byte: saturated
                    }
                }
                Err(_) => break 'flood, // reset: already evicted
            }
        }
    }
    let sent = written / REQ.len();
    assert!(sent > 16, "flood never got going: {sent}");

    // Never read a byte for well past `read_timeout`: no write
    // progress is possible, so the eviction sweep must fire even
    // though the connection still owes response bytes.
    std::thread::sleep(read_timeout * 4);

    // Healthy traffic was never pinned behind the stalled peer.
    let (status, _) = nai_serve::http_call(addr, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);

    // The server must have closed us: draining what the kernel
    // buffered ends in EOF or a reset, never our 2 s client timeout,
    // and the undelivered backlog means we see fewer responses than
    // requests we sent.
    let mut drained = Vec::new();
    let mut chunk = [0u8; 64 * 1024];
    let terminated = loop {
        match stalled.read(&mut chunk) {
            Ok(0) => break true,
            Ok(n) => drained.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => break true,
            Err(_) => break false, // timed out: the server never evicted us
        }
    };
    assert!(terminated, "non-reading peer must be evicted, not held");
    let received = drained.windows(12).filter(|w| w == b"HTTP/1.1 200").count();
    assert!(
        received < sent,
        "eviction must drop the stalled backlog ({received} responses for {sent} requests)"
    );
    server.shutdown();
}

#[test]
fn backpressured_pipelined_burst_is_fully_answered_once_the_client_drains() {
    let server = boot(TransportConfig::default());
    let addr = server.local_addr();

    // Size the burst so its responses overflow both the reactor's
    // write-backlog cap and the (clamped) kernel socket buffers:
    // parsing stops mid-burst with complete requests stranded in the
    // reactor's read buffer and nothing left in the kernel socket.
    let burst = (2 * 1024 * 1024 / metrics_wire_len(addr)).max(256);
    let mut client = TcpStream::connect(addr).unwrap();
    shrink_rcvbuf(&client);
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let writer = {
        let mut tx = client.try_clone().unwrap();
        std::thread::spawn(move || {
            let req = b"GET /metrics HTTP/1.1\r\n\r\n".repeat(burst);
            tx.write_all(&req).unwrap();
        })
    };

    // Let the burst land and the backpressure stall settle before
    // draining a single byte — the stranded tail can then only be
    // parsed by the backlog-drain path, never by a readable event.
    std::thread::sleep(Duration::from_millis(300));

    // Drain everything: every request of the burst must be answered.
    let mut received = 0usize;
    let mut tail: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 64 * 1024];
    while received < burst {
        let n = match client.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => panic!("burst stalled after {received}/{burst} responses: {e}"),
        };
        tail.extend_from_slice(&chunk[..n]);
        received += tail.windows(12).filter(|w| w == b"HTTP/1.1 200").count();
        // Keep only a potential split status-line prefix across reads.
        let keep = tail.len().min(11);
        tail = tail.split_off(tail.len() - keep);
    }
    assert_eq!(
        received, burst,
        "backpressure must not strand pipelined requests"
    );
    writer.join().unwrap();
    server.shutdown();
}

#[test]
fn shutdown_races_a_pipelined_burst_without_losing_responses() {
    const BURST: usize = 16;
    let server = boot(TransportConfig::default());
    let addr = server.local_addr();

    // One client writes a whole burst, then a second connection fires
    // /shutdown while those requests are in flight.
    let mut client = HttpClient::connect(addr).unwrap();
    let bodies: Vec<String> = (0..BURST)
        .map(|i| format!("{{\"op\": \"infer\", \"nodes\": [{}]}}\n", i % SEED_NODES))
        .collect();
    for body in &bodies {
        client.send("POST", "/v1", Some(body)).unwrap();
    }
    let (status, _) = nai_serve::http_call(addr, "POST", "/shutdown", None).unwrap();
    assert_eq!(status, 200);

    // Drain contract: every request admitted before the stop must be
    // answered (200) or refused as shutting down (503) — never dropped
    // with an unanswered slot or a mid-stream hang.
    for _ in 0..BURST {
        let (status, body) = client.recv().expect("burst response lost in shutdown");
        assert!(
            status == 200 || status == 503,
            "unexpected status {status}: {body}"
        );
    }
    // After the burst is answered the reactor closes the connection
    // and exits; join() must return promptly.
    assert!(client.recv().is_err(), "connection must close after drain");
    let joined = Instant::now();
    server.join();
    assert!(
        joined.elapsed() < Duration::from_secs(5),
        "reactor failed to exit after drain"
    );
}

#[test]
fn http_10_and_oversized_bodies_follow_the_protocol_edges() {
    let server = boot(TransportConfig::default());
    let addr = server.local_addr();

    // HTTP/1.0 without a Connection header defaults to close.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    raw.write_all(b"GET /healthz HTTP/1.0\r\n\r\n").unwrap();
    let mut response = Vec::new();
    raw.read_to_end(&mut response).unwrap(); // EOF = server closed
    let response = String::from_utf8(response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    assert!(
        response.to_ascii_lowercase().contains("connection: close"),
        "HTTP/1.0 default must be advertised: {response}"
    );

    // An oversized Content-Length is refused at header time with 400;
    // the server survives and the next connection still works.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    raw.write_all(b"POST /v1 HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n")
        .unwrap();
    let mut response = Vec::new();
    raw.read_to_end(&mut response).unwrap();
    let response = String::from_utf8(response).unwrap();
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");

    let (status, _) = nai_serve::http_call(addr, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    server.shutdown();
}
