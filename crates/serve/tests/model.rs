//! Exhaustive interleaving checks for the serve core's concurrency
//! invariants, compiled only under `--cfg nai_model` (ci.sh
//! `model_check`), where `nai_serve::sync` swaps `std::sync` for the
//! workspace's `loom` model checker.
//!
//! Each test explores *every* schedule within the preemption bound
//! (the DFS tests assert `exhausted`), so a pass is a proof over the
//! modeled state space, not a lucky run:
//!
//! 1. **Admission** — `in_flight` never exceeds `queue_cap` and every
//!    admitted slot is released exactly once, across submit /
//!    answer / rollback interleavings.
//! 2. **Panic repair** — a dying worker frees exactly the slots of
//!    its unanswered owned jobs, even while other workers answer
//!    their own slices of the same broadcast batch concurrently.
//! 3. **Cache versioning** — a worker insert racing a sequenced
//!    mutation never produces a hit that mixes the old prediction
//!    with the new sequence point.
//! 4. **Shutdown gate** — stop / begin / end / drain interleavings
//!    terminate under every schedule (a lost wakeup would surface as
//!    a detected deadlock) and never lose a counted connection.
//!
//! Plus the satellite-1 regression pinning why `worker_macs` moved
//! from four `Relaxed` stores to a mutex ([`nai_serve::MacsCell`]):
//! the old pattern's torn scrape is *found* by the checker (DFS and
//! seeded search) and deterministically replayed from its recorded
//! schedule; the new cell passes exhaustively.
#![cfg(nai_model)]

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::Arc;
use loom::{Builder, Stats};
use nai_serve::{
    AdmissionLedger, CompletionQueue, ConnGate, Invalidation, MacsCell, Reply, VersionedCache,
};
use nai_stream::MacsBreakdown;
use std::time::Duration;

fn dfs(bound: usize) -> Builder {
    Builder {
        preemption_bound: Some(bound),
        ..Builder::new()
    }
}

/// Invariant 1: concurrent submitters racing the admission CAS never
/// push `in_flight` past the cap, and answer/rollback releases bring
/// it back to exactly zero (the ledger's double-free debug_assert
/// turns any over-release into a failure the checker would report).
#[test]
fn admission_slots_never_exceed_cap_and_never_leak() {
    let stats: Stats = dfs(2)
        .check_quiet(|| {
            let ledger = Arc::new(AdmissionLedger::new(2, 1));
            let mut handles = Vec::new();
            // Three submitters race for two slots: at least one must
            // be refused somewhere, and every admit is released —
            // submitter 0 via a worker reply, 1 via the scheduler
            // slot, 2 via the submit-rollback path.
            for who in 0..3usize {
                let ledger = ledger.clone();
                handles.push(loom::thread::spawn(move || {
                    if !ledger.try_admit() {
                        return false;
                    }
                    let depth = ledger.in_flight();
                    assert!(depth >= 1 && depth <= 2, "in_flight {depth} out of bounds");
                    match who {
                        0 => ledger.note_answered(0),
                        1 => ledger.note_answered(ledger.scheduler_slot()),
                        _ => ledger.cancel_admit(),
                    }
                    true
                }));
            }
            let ledger2 = Arc::clone(&ledger);
            let admitted: usize = handles
                .into_iter()
                .map(|h| h.join().unwrap() as usize)
                .sum();
            assert!(admitted >= 2, "two slots exist; at most one refusal");
            assert_eq!(ledger2.in_flight(), 0, "slot leaked");
        })
        .expect("admission invariant must hold on every schedule");
    assert!(stats.exhausted, "bounded DFS must cover the whole tree");
    assert!(stats.iterations > 1);
}

/// Invariant 2: worker 0 answers one of its two owned jobs and then
/// panics, while worker 1 concurrently answers its own job from the
/// same broadcast batch. The repair must free exactly one slot (the
/// unanswered one) wherever the panic lands relative to worker 1's
/// replies — a global reply counter instead of per-worker slots would
/// under-repair here.
#[test]
fn panic_repair_frees_exactly_the_unanswered_slots() {
    let stats = dfs(2)
        .check_quiet(|| {
            let ledger = Arc::new(AdmissionLedger::new(4, 2));
            for _ in 0..3 {
                assert!(ledger.try_admit());
            }
            let l0 = ledger.clone();
            let dying = loom::thread::spawn(move || {
                let before = l0.answered_by(0);
                l0.note_answered(0); // first owned job answered...
                                     // ...then the engine panics mid-batch: 2 owned, 1 answered.
                let leaked = l0.repair_panicked(0, 2, before);
                assert_eq!(leaked, 1, "repair must free exactly the unanswered job");
            });
            let l1 = ledger.clone();
            let healthy = loom::thread::spawn(move || {
                l1.note_answered(1);
            });
            dying.join().unwrap();
            healthy.join().unwrap();
            assert_eq!(ledger.in_flight(), 0, "slot leaked or double-freed");
            assert!(ledger.is_dead(0));
            assert!(!ledger.is_dead(1));
        })
        .expect("panic repair must be exact on every schedule");
    assert!(stats.exhausted);
}

/// Invariant 3a: a worker's insert computed at sequence point 0 races
/// the scheduler sequencing a mutation that dirties the same node.
/// Whichever side takes the cache lock first, a later read must never
/// see the pre-mutation prediction: insert-then-sequence evicts the
/// entry; sequence-then-insert drops it on the version guard.
#[test]
fn version_guard_never_serves_a_stale_prediction() {
    let stats = dfs(2)
        .check_quiet(|| {
            let cache = Arc::new(VersionedCache::new(8));
            let c = cache.clone();
            let worker = loom::thread::spawn(move || {
                // Prediction 7 for node 5, computed at seq 0.
                c.insert_batch(0, [(5u32, 7usize, 1usize)]);
            });
            let c = cache.clone();
            let scheduler = loom::thread::spawn(move || {
                // Mutation 1 dirties node 5 at distance 0.
                c.sequence_mutation(1, Invalidation::Frontier(vec![(5, 0)]));
            });
            worker.join().unwrap();
            scheduler.join().unwrap();
            assert_eq!(cache.seq(), 1);
            assert!(
                cache.lookup(&[5]).is_none(),
                "stale pre-mutation prediction served after its node was dirtied"
            );
        })
        .expect("version guard must hold on every schedule");
    assert!(stats.exhausted);
}

/// Invariant 3b: when the sequenced mutation does *not* touch the
/// node, both lock orders are legal — but a hit must pair the entry
/// with the advanced sequence point, never a half-state.
#[test]
fn untouched_entries_survive_a_sequence_advance_consistently() {
    dfs(2).check(|| {
        let cache = Arc::new(VersionedCache::new(8));
        let c = cache.clone();
        let worker = loom::thread::spawn(move || {
            c.insert_batch(0, [(5u32, 7usize, 1usize)]);
        });
        cache.sequence_mutation(1, Invalidation::Untouched);
        worker.join().unwrap();
        match cache.lookup(&[5]) {
            // Insert won the lock first: the entry survives the
            // advance and reports the current point.
            Some((seq, results)) => {
                assert_eq!(seq, 1);
                assert_eq!(results[0].prediction, 7);
            }
            // Advance won: the seq-0 insert was version-guarded away.
            None => {}
        }
        assert_eq!(cache.seq(), 1);
    });
}

/// Invariant 4: stop / begin / end / drain interleavings terminate on
/// every schedule (loom reports a deadlock if the drain can miss its
/// wakeup) and the gate never loses a counted connection — once every
/// conn ended, the gate must report drained.
#[test]
fn conn_gate_drain_terminates_and_counts_every_conn() {
    let stats = dfs(2)
        .check_quiet(|| {
            let gate = Arc::new(ConnGate::new());
            // Accept loop counts the connection in before its thread
            // exists (as http.rs does), then the conn thread counts out.
            gate.begin_conn();
            let g = gate.clone();
            let conn = loom::thread::spawn(move || {
                g.end_conn();
            });
            let g = gate.clone();
            let stopper = loom::thread::spawn(move || {
                g.request_stop();
            });
            // May time out before the conn ends (grace expired — the
            // model explores the timeout branch) but must never hang.
            let drained = gate.await_drained(Duration::from_secs(2));
            conn.join().unwrap();
            stopper.join().unwrap();
            assert!(gate.stopping());
            // Every conn has ended: the gate must agree immediately.
            assert!(
                gate.await_drained(Duration::from_millis(1)),
                "connection lost by the gate"
            );
            if drained {
                // A positive drain answer is a real guarantee, not a
                // race artifact: nothing was active when it returned.
                assert!(gate.await_drained(Duration::from_millis(1)));
            }
        })
        .expect("shutdown gate must terminate on every schedule");
    assert!(stats.exhausted);
}

/// The stop latch fires its side effect (unblocking the accept loop)
/// exactly once however many threads race `/shutdown`.
#[test]
fn conn_gate_stop_latches_exactly_once() {
    dfs(2).check(|| {
        let gate = Arc::new(ConnGate::new());
        let g = gate.clone();
        let h = loom::thread::spawn(move || g.request_stop());
        let mine = gate.request_stop();
        let theirs = h.join().unwrap();
        assert!(
            mine ^ theirs,
            "exactly one stopper may observe the first transition"
        );
    });
}

/// Invariant 5: the reactor's completion mailbox never strands a
/// reply without a wake. A worker push racing the reactor's drain
/// either lands before the drain (and is collected by it), or lands
/// after the drain emptied the mailbox — making the push the
/// empty→non-empty edge, which fires `notify`. If the edge detection
/// and the enqueue were not under one lock, a schedule would exist
/// where a reply sits in the mailbox with no wake recorded, and the
/// reactor (parked in `Poller::wait` with no timeout pressure) would
/// never answer that request.
#[test]
fn completion_queue_never_strands_a_reply_without_a_wake() {
    let stats = dfs(2)
        .check_quiet(|| {
            let wakes = Arc::new(AtomicU64::new(0));
            let w = wakes.clone();
            let queue = Arc::new(CompletionQueue::new(Box::new(move || {
                // Relaxed: the assertion reads after join(), which
                // orders the count; nothing else rides this counter.
                w.fetch_add(1, Ordering::Relaxed);
            })));
            let q = queue.clone();
            let worker = loom::thread::spawn(move || {
                q.push(
                    1,
                    Reply::Error {
                        message: "x".into(),
                    },
                );
            });
            // The reactor drains once mid-race (as if woken for some
            // other reason), then goes back to sleep.
            let early = queue.drain();
            worker.join().unwrap();
            if early.is_empty() {
                // The push lost the early drain: it must have fired
                // the wake, so the reactor's next turn collects it.
                assert!(
                    wakes.load(Ordering::Relaxed) >= 1,
                    "reply enqueued after the drain but no wake fired"
                );
            }
            let late = queue.drain();
            assert_eq!(
                early.len() + late.len(),
                1,
                "the reply must be delivered exactly once"
            );
        })
        .expect("completion mailbox must never lose a wakeup");
    assert!(stats.exhausted);
}

/// The pre-refactor `worker_macs` pattern: four per-stage counters
/// published with independent `Relaxed` stores. A scrape can land
/// between the stores (or see a subset of them stale) and report a
/// breakdown mixing two batches — the checker must find it, and the
/// recorded schedule must replay to the same failure. This pins the
/// satellite-1 tightening that became [`MacsCell`].
fn torn_macs_body() {
    let macs: Arc<[AtomicU64; 4]> = Arc::new(std::array::from_fn(|_| AtomicU64::new(0)));
    let m = macs.clone();
    let worker = loom::thread::spawn(move || {
        // One batch's totals: every stage advances together.
        for stage in m.iter() {
            stage.store(1, Ordering::Relaxed);
        }
    });
    let scrape: Vec<u64> = macs.iter().map(|s| s.load(Ordering::Relaxed)).collect();
    worker.join().unwrap();
    assert!(
        scrape.iter().all(|&v| v == scrape[0]),
        "torn macs scrape: {scrape:?}"
    );
}

#[test]
fn macs_relaxed_stores_tear_and_the_schedule_replays() {
    let failure = dfs(2)
        .check_quiet(torn_macs_body)
        .expect_err("the 4-store publish must tear under some schedule");
    assert!(failure.message.contains("torn macs scrape"), "{failure}");
    let replayed = Builder {
        replay: Some(failure.schedule.clone()),
        ..Builder::new()
    }
    .check_quiet(torn_macs_body)
    .expect_err("the pinned schedule must reproduce the tear");
    assert!(replayed.message.contains("torn macs scrape"));
    assert_eq!(replayed.iteration, 1, "replay is a single execution");
}

/// Same bug found by seeded random search (the `--seed` workflow in
/// ARCHITECTURE.md) and replayed from its recorded schedule.
#[test]
fn macs_tear_found_by_seeded_search_and_replays() {
    let failure = Builder {
        seed: Some(0x5EED_CA11),
        preemption_bound: None,
        ..Builder::new()
    }
    .check_quiet(torn_macs_body)
    .expect_err("seeded search must find the tear");
    let replayed = Builder {
        replay: Some(failure.schedule.clone()),
        ..Builder::new()
    }
    .check_quiet(torn_macs_body)
    .expect_err("the seeded schedule must replay");
    assert!(replayed.message.contains("torn macs scrape"));
}

/// The fix: [`MacsCell`] publishes all four stages under one lock, so
/// a scrape sees the pre-batch or post-batch breakdown — never a mix.
/// Exhaustive at the same bound that broke the old pattern.
#[test]
fn macs_cell_snapshot_never_tears() {
    let stats = dfs(2)
        .check_quiet(|| {
            let cell = Arc::new(MacsCell::new());
            let c = cell.clone();
            let worker = loom::thread::spawn(move || {
                c.publish(&MacsBreakdown {
                    propagation: 1,
                    nap: 1,
                    classification: 1,
                    replication: 1,
                });
            });
            let b = cell.snapshot();
            worker.join().unwrap();
            assert!(
                b == MacsBreakdown::default()
                    || b == MacsBreakdown {
                        propagation: 1,
                        nap: 1,
                        classification: 1,
                        replication: 1,
                    },
                "torn snapshot: {b:?}"
            );
        })
        .expect("the mutex publish must never tear");
    assert!(stats.exhausted);
}
