//! Event-driven HTTP transport: one reactor thread multiplexing every
//! connection over a readiness poller.
//!
//! This replaced the thread-per-connection loop in [`crate::http`]: a
//! single `nai-serve-reactor` thread blocks in
//! [`crate::sync::poll::Poller::wait`] and drives non-blocking sockets
//! through per-connection state machines — read buffer → incremental
//! HTTP/1.1 parse → dispatch → ordered response queue → write buffer.
//! A readable socket drains *all* pipelined `/v1` lines into the
//! admission queue in one syscall round-trip, and replies come back
//! through a [`CompletionQueue`] instead of a parked thread per
//! request, so pipelining depth — not connection count — sets the
//! admission pressure.
//!
//! The state machine's invariants:
//!
//! * **Ordering.** Responses go out in request order. Each request
//!   reserves a slot in the connection's response queue at parse time
//!   (`Response::Ready` immediately, `Response::Pending` for `/v1`
//!   batches awaiting engine replies); the writer only ever pumps the
//!   queue's completed front.
//! * **Backpressure.** When a connection's write backlog reaches
//!   `WRITE_BUF_CAP`, the reactor stops parsing *and* stops reading
//!   from it (the read interest is dropped), so a slow reader
//!   pipelining requests is throttled by TCP instead of ballooning
//!   server memory.
//! * **Liveness.** `last_activity` advances on every completed request
//!   parse and on every byte of write progress. A connection with no
//!   activity for `read_timeout` is evicted *regardless of its write
//!   backlog* — this covers slowloris senders, half-open peers, idle
//!   keep-alive connections, and readers that never drain their
//!   responses (unflushed bytes are dropped with the connection; a
//!   peer that stalls its receive window is not owed delivery).
//!   Pending batches carry their own deadline: missing replies are
//!   filled with `timeout` error lines so one stuck request cannot
//!   wedge the connection behind it, and eviction waits for that fill
//!   so a slow engine reply surfaces as a typed timeout line, not a
//!   reset.
//! * **Drain.** Shutdown closes the listener, marks every connection
//!   `no_new_requests`, and gives in-flight responses `drain_grace` to
//!   flush before teardown closes the stragglers.

use crate::http::{route_basic, ServerState, CT_JSON};
use crate::json::Json;
use crate::proto::{error_line, parse_request, render_reply};
use crate::service::{CompletionQueue, ServeError, Submitted};
use crate::sync::poll::{Event, Interest, Poller};
use crate::sync::time::Instant;
use crate::sync::Arc;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::TcpListener;
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Poller key of the listening socket.
const KEY_LISTENER: usize = 0;
/// Poller key of the wake pipe's read end.
const KEY_WAKE: usize = 1;
/// Connection slot `s` registers under key `s + KEY_CONN_BASE`.
const KEY_CONN_BASE: usize = 2;

/// Upper bound on accepted request bodies (1 MiB — far above any
/// realistic micro-batch line, far below memory trouble).
pub(crate) const MAX_BODY: usize = 1 << 20;
/// Upper bound on one request/header line; longer lines are rejected
/// before they buffer further.
const MAX_HEADER_LINE: usize = 8 << 10;
/// Upper bound on headers per request.
const MAX_HEADERS: usize = 100;
/// Per-connection write backlog (flushing bytes plus queued rendered
/// responses) above which the reactor stops reading and parsing.
const WRITE_BUF_CAP: usize = 256 * 1024;
/// Bytes read per `read(2)` on a readable connection.
const READ_CHUNK: usize = 16 * 1024;

/// Tuning knobs for the event-driven transport.
#[derive(Debug, Clone, Copy)]
pub struct TransportConfig {
    /// Idle/eviction timeout: a connection with nothing in flight and
    /// no completed request parse for this long is closed, and a
    /// pending `/v1` batch older than this has its missing replies
    /// filled with `timeout` error lines.
    pub read_timeout: Duration,
    /// How long shutdown lets in-flight responses flush before
    /// teardown closes the remaining connections.
    pub drain_grace: Duration,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            read_timeout: Duration::from_secs(30),
            drain_grace: Duration::from_secs(2),
        }
    }
}

fn dur_ns(d: Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

/// One parsed HTTP/1.1 request.
pub(crate) struct HttpRequest {
    pub(crate) method: String,
    pub(crate) path: String,
    /// Close after responding — the `Connection` header's verdict, or
    /// the version default (HTTP/1.0 closes, HTTP/1.1 keeps alive).
    pub(crate) close: bool,
    pub(crate) body: String,
}

/// Parses one `Connection` header value into a close verdict:
/// `Some(true)` to close, `Some(false)` to keep alive, `None` when the
/// value names neither token and the version default applies. Values
/// are comma-separated token lists (`Connection: keep-alive, upgrade`)
/// and tokens are case-insensitive, so each comma-split token is
/// trimmed and compared whole — a substring scan would misread headers
/// like `Connection: not-close`.
fn connection_close(value: &str) -> Option<bool> {
    let mut verdict = None;
    for token in value.split(',') {
        let token = token.trim();
        if token.eq_ignore_ascii_case("close") {
            // `close` wins outright, whatever else the list names.
            return Some(true);
        }
        if token.eq_ignore_ascii_case("keep-alive") {
            verdict = Some(false);
        }
    }
    verdict
}

/// Takes the next CRLF/LF-terminated line out of `buf` starting at
/// `*pos`, advancing `*pos` past it. `Ok(None)` means the line is not
/// complete yet (caller waits for more bytes); an unterminated tail or
/// terminated line longer than [`MAX_HEADER_LINE`] is a protocol
/// error, as is non-UTF-8.
fn next_line<'a>(buf: &'a [u8], pos: &mut usize) -> Result<Option<&'a str>, String> {
    let rest = &buf[*pos..];
    let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
        if rest.len() > MAX_HEADER_LINE {
            return Err("header line too long".to_string());
        }
        return Ok(None);
    };
    if nl > MAX_HEADER_LINE {
        return Err("header line too long".to_string());
    }
    let mut line = &rest[..nl];
    if line.last() == Some(&b'\r') {
        line = &line[..line.len() - 1];
    }
    let line = std::str::from_utf8(line).map_err(|_| "non-UTF-8 header".to_string())?;
    *pos += nl + 1;
    Ok(Some(line))
}

/// Incremental HTTP/1.1 request parse over a connection's read buffer.
///
/// `Ok(None)` means the buffer holds a prefix of a valid request —
/// park it and wait for more bytes. `Ok(Some((req, consumed)))` hands
/// back one complete request and how many bytes it occupied (the
/// caller drains them and may call again immediately: pipelined
/// requests parse back to back from one buffer). `Err` is a protocol
/// violation; the caller answers 400 and closes.
///
/// The parse is pure and restartable — it never mutates the buffer, so
/// re-running it on a grown buffer is always safe.
pub(crate) fn try_parse_request(buf: &[u8]) -> Result<Option<(HttpRequest, usize)>, String> {
    let mut pos = 0usize;
    let Some(request_line) = next_line(buf, &mut pos)? else {
        return Ok(None);
    };
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_string(), p.to_string(), v),
        _ => return Err("malformed request line".to_string()),
    };
    let http10 = version == "HTTP/1.0";
    let mut content_length: Option<usize> = None;
    let mut explicit_close: Option<bool> = None;
    let mut seen = 0usize;
    loop {
        let Some(header) = next_line(buf, &mut pos)? else {
            return Ok(None);
        };
        if header.is_empty() {
            break;
        }
        seen += 1;
        if seen > MAX_HEADERS {
            return Err("too many headers".to_string());
        }
        if let Some((key, value)) = header.split_once(':') {
            let key = key.trim();
            let value = value.trim();
            if key.eq_ignore_ascii_case("content-length") {
                let parsed: usize = value
                    .parse()
                    .map_err(|_| "bad content-length".to_string())?;
                if parsed > MAX_BODY {
                    return Err("body too large".to_string());
                }
                // Repeated identical Content-Length headers are
                // tolerated; conflicting ones are a request-smuggling
                // shape and reject outright.
                if let Some(prev) = content_length {
                    if prev != parsed {
                        return Err("conflicting content-length".to_string());
                    }
                }
                content_length = Some(parsed);
            } else if key.eq_ignore_ascii_case("transfer-encoding") {
                // The parser does not implement chunked decoding;
                // treating a chunked body as Content-Length: 0 would
                // desync the pipeline (its body bytes would parse as
                // the next request), so any Transfer-Encoding rejects.
                return Err("transfer-encoding not supported".to_string());
            } else if key.eq_ignore_ascii_case("connection") {
                if let Some(c) = connection_close(value) {
                    // Close is sticky across repeated Connection
                    // headers; keep-alive never overrides it.
                    if explicit_close != Some(true) {
                        explicit_close = Some(c);
                    }
                }
            }
        }
    }
    let content_length = content_length.unwrap_or(0);
    if buf.len() < pos + content_length {
        return Ok(None);
    }
    let body = std::str::from_utf8(&buf[pos..pos + content_length])
        .map_err(|_| "non-UTF-8 body".to_string())?
        .to_string();
    Ok(Some((
        HttpRequest {
            method,
            path,
            close: explicit_close.unwrap_or(http10),
            body,
        },
        pos + content_length,
    )))
}

/// Renders a complete HTTP/1.1 response to wire bytes.
pub(crate) fn render_response(status: u16, body: &str, content_type: &str, close: bool) -> Vec<u8> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let connection = if close { "close" } else { "keep-alive" };
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// A `/v1` batch whose engine replies are still arriving. `slots`
/// holds one rendered newline-JSON line per request line, in body
/// order; `None` marks a reply still in flight ( `missing` counts
/// them). Once `missing` hits zero the batch renders and the response
/// queue can pump past it.
struct PendingBatch {
    slots: Vec<Option<String>>,
    missing: usize,
    status: u16,
    /// Single-line bodies surface per-line failures in the HTTP
    /// status; multi-line bodies always answer 200.
    single: bool,
    close: bool,
    /// Fill-by-timeout deadline for the missing replies.
    deadline: Instant,
}

fn render_batch(batch: &PendingBatch) -> Vec<u8> {
    let mut body = String::new();
    for slot in &batch.slots {
        match slot {
            Some(line) => body.push_str(line),
            None => body.push_str(&error_line("timeout", None).to_string()),
        }
        body.push('\n');
    }
    render_response(batch.status, &body, CT_JSON, batch.close)
}

/// One queued response, in request order.
enum Response {
    /// Fully rendered wire bytes, ready to pump.
    Ready(Vec<u8>),
    /// A `/v1` batch awaiting engine replies.
    Pending(PendingBatch),
}

/// Per-connection state machine.
struct Conn {
    stream: std::net::TcpStream,
    /// Generation stamp: tokens for replies in flight carry it, so a
    /// reply for a closed connection can never land on a successor
    /// reusing the same slot.
    gen: u64,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    responses: VecDeque<Response>,
    /// Response id of `responses[0]`; ids are assigned at parse time
    /// and never reused, so a completion for an already-popped
    /// (timeout-filled) batch is detected by `resp < resp_base`.
    resp_base: u64,
    next_resp: u64,
    /// Peer sent EOF. Buffered pipelined requests still parse; only
    /// further reads stop.
    read_closed: bool,
    /// Stop parsing new requests: close requested, protocol error, or
    /// server drain. The connection closes once responses flush.
    no_new_requests: bool,
    /// Interest currently registered with the poller.
    interest: Interest,
    /// Advanced on each completed request parse; eviction clock.
    last_activity: Instant,
}

impl Conn {
    fn new(stream: std::net::TcpStream, gen: u64) -> Self {
        Conn {
            stream,
            gen,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            responses: VecDeque::new(),
            resp_base: 0,
            next_resp: 0,
            read_closed: false,
            no_new_requests: false,
            interest: Interest::READ,
            last_activity: Instant::now(),
        }
    }

    /// Bytes owed to the peer: unflushed write buffer plus rendered
    /// responses still queued behind a pending batch.
    fn write_backlog(&self) -> usize {
        let queued: usize = self
            .responses
            .iter()
            .map(|r| match r {
                Response::Ready(bytes) => bytes.len(),
                Response::Pending(_) => 0,
            })
            .sum();
        (self.write_buf.len() - self.write_pos) + queued
    }

    /// Moves the completed front of the response queue into the write
    /// buffer (responses strictly in request order).
    fn pump_ready(&mut self) {
        loop {
            match self.responses.front() {
                Some(Response::Ready(_)) => {
                    if let Some(Response::Ready(bytes)) = self.responses.pop_front() {
                        self.write_buf.extend_from_slice(&bytes);
                        self.resp_base += 1;
                    }
                }
                Some(Response::Pending(batch)) if batch.missing == 0 => {
                    let rendered = render_batch(batch);
                    self.write_buf.extend_from_slice(&rendered);
                    self.responses.pop_front();
                    self.resp_base += 1;
                }
                _ => break,
            }
        }
    }

    /// Writes the buffer out until done or the socket would block.
    /// Write progress counts as activity: a peer that keeps draining
    /// responses is alive, while one that stalls its receive window
    /// stops refreshing the eviction clock and is closed at
    /// `read_timeout` even with bytes still owed.
    fn flush(&mut self) -> io::Result<()> {
        while self.write_pos < self.write_buf.len() {
            match (&self.stream).write(&self.write_buf[self.write_pos..]) {
                Ok(0) => return Err(io::Error::from(io::ErrorKind::WriteZero)),
                Ok(n) => {
                    self.write_pos += n;
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.write_pos == self.write_buf.len() {
            self.write_buf.clear();
            self.write_pos = 0;
        }
        Ok(())
    }
}

/// Where a completion token's reply lands: connection slot (guarded by
/// `gen`), response id, and line index within the batch body.
struct TokenDest {
    slot: usize,
    gen: u64,
    resp: u64,
    line: usize,
}

/// The event loop: owns the poller, the listener, every connection,
/// and the token map routing engine completions back to batch slots.
pub(crate) struct Reactor {
    poller: Poller,
    listener: Option<TcpListener>,
    wake_rx: UnixStream,
    state: Arc<ServerState>,
    queue: Arc<CompletionQueue>,
    cfg: TransportConfig,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    tokens: HashMap<u64, TokenDest>,
    next_token: u64,
    next_gen: u64,
    draining: bool,
    drain_deadline: Instant,
}

impl Reactor {
    pub(crate) fn new(
        listener: TcpListener,
        wake_rx: UnixStream,
        state: Arc<ServerState>,
        cfg: TransportConfig,
    ) -> io::Result<Reactor> {
        let poller = Poller::new()?;
        poller.add(listener.as_raw_fd(), KEY_LISTENER, Interest::READ)?;
        poller.add(wake_rx.as_raw_fd(), KEY_WAKE, Interest::READ)?;
        // Engine workers completing a reply poke the wake pipe so the
        // reactor leaves `wait` promptly; the write end is non-blocking
        // and a full pipe is fine (a wake byte is already pending).
        let wake_tx = state.waker.try_clone()?;
        let queue = Arc::new(CompletionQueue::new(Box::new(move || {
            let _ = (&wake_tx).write(&[1u8]);
        })));
        Ok(Reactor {
            poller,
            listener: Some(listener),
            wake_rx,
            state,
            queue,
            cfg,
            conns: Vec::new(),
            free: Vec::new(),
            tokens: HashMap::new(),
            next_token: 0,
            next_gen: 0,
            draining: false,
            drain_deadline: Instant::now(),
        })
    }

    pub(crate) fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            let now = Instant::now();
            if self.state.gate.stopping() && !self.draining {
                self.begin_drain(now);
            }
            if self.draining {
                let live = self.conns.iter().filter(|c| c.is_some()).count();
                if live == 0 || now >= self.drain_deadline {
                    break;
                }
            }
            let timeout = self.next_timeout(now);
            if self.poller.wait(&mut events, timeout).is_err() {
                break;
            }
            for &ev in &events {
                match ev.key {
                    KEY_LISTENER => self.on_accept(),
                    KEY_WAKE => self.on_wake(),
                    key => {
                        let slot = key - KEY_CONN_BASE;
                        if ev.readable {
                            self.on_readable(slot);
                        }
                        if ev.writable {
                            self.pump(slot);
                        }
                    }
                }
            }
            self.drain_completions();
            self.expire(Instant::now());
        }
        // Teardown: close the stragglers so the gate drains.
        for slot in 0..self.conns.len() {
            self.close_conn(slot);
        }
    }

    /// Earliest deadline the loop must wake for: the drain grace, each
    /// pending batch's fill-by-timeout, each connection's eviction
    /// clock. `None` (block forever) only with no connections and no
    /// drain in progress — then only listener/wake events matter.
    fn next_timeout(&self, now: Instant) -> Option<Duration> {
        let mut next: Option<Instant> = if self.draining {
            Some(self.drain_deadline)
        } else {
            None
        };
        for conn in self.conns.iter().flatten() {
            let cand = conn
                .responses
                .iter()
                .find_map(|r| match r {
                    Response::Pending(p) if p.missing > 0 => Some(p.deadline),
                    _ => None,
                })
                .unwrap_or(conn.last_activity + self.cfg.read_timeout);
            next = Some(match next {
                Some(n) => n.min(cand),
                None => cand,
            });
        }
        next.map(|t| t.saturating_duration_since(now))
    }

    fn on_accept(&mut self) {
        loop {
            let Some(listener) = self.listener.as_ref() else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    if self.state.gate.stopping() {
                        // Drain the accept queue so stragglers get a
                        // reset instead of a hang.
                        drop(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        continue;
                    }
                    let slot = match self.free.pop() {
                        Some(s) => s,
                        None => {
                            self.conns.push(None);
                            self.conns.len() - 1
                        }
                    };
                    if self
                        .poller
                        .add(stream.as_raw_fd(), slot + KEY_CONN_BASE, Interest::READ)
                        .is_err()
                    {
                        self.free.push(slot);
                        continue;
                    }
                    self.state.gate.begin_conn();
                    let gen = self.next_gen;
                    self.next_gen += 1;
                    self.conns[slot] = Some(Conn::new(stream, gen));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    /// Drains the wake pipe; the level-triggered poller would
    /// otherwise re-report it forever.
    fn on_wake(&mut self) {
        let mut buf = [0u8; 64];
        loop {
            match (&self.wake_rx).read(&mut buf) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break, // WouldBlock: drained.
            }
        }
    }

    fn on_readable(&mut self, slot: usize) {
        loop {
            let Some(conn) = self.conns.get_mut(slot).and_then(|c| c.as_mut()) else {
                return;
            };
            if conn.read_closed || conn.no_new_requests || conn.write_backlog() >= WRITE_BUF_CAP {
                break;
            }
            let mut chunk = [0u8; READ_CHUNK];
            let n = match (&conn.stream).read(&mut chunk) {
                Ok(0) => {
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(slot);
                    return;
                }
            };
            conn.read_buf.extend_from_slice(&chunk[..n]);
            let ingress = Instant::now();
            self.parse_loop(slot, ingress);
            if n < READ_CHUNK {
                // Short read: the socket is likely drained. The
                // level-triggered poller re-reports if not.
                break;
            }
        }
        self.pump(slot);
    }

    /// Parses every complete request sitting in the read buffer —
    /// this is where a pipelined burst fans into the admission queue
    /// in one pass.
    fn parse_loop(&mut self, slot: usize, ingress: Instant) {
        loop {
            enum Parsed {
                Req(HttpRequest),
                Bad(String),
            }
            let parsed = {
                let Some(conn) = self.conns.get_mut(slot).and_then(|c| c.as_mut()) else {
                    return;
                };
                if conn.no_new_requests
                    || conn.read_buf.is_empty()
                    || conn.write_backlog() >= WRITE_BUF_CAP
                {
                    return;
                }
                match try_parse_request(&conn.read_buf) {
                    Ok(None) => return,
                    Ok(Some((req, consumed))) => {
                        conn.read_buf.drain(..consumed);
                        conn.last_activity = Instant::now();
                        Parsed::Req(req)
                    }
                    Err(msg) => Parsed::Bad(msg),
                }
            };
            match parsed {
                Parsed::Req(req) => self.handle_request(slot, req, ingress),
                Parsed::Bad(msg) => {
                    if let Some(conn) = self.conns.get_mut(slot).and_then(|c| c.as_mut()) {
                        conn.no_new_requests = true;
                    }
                    let body = format!("{}\n", error_line("bad_request", Some(&msg)));
                    self.queue_ready(slot, 400, &body, CT_JSON, true);
                    return;
                }
            }
        }
    }

    fn handle_request(&mut self, slot: usize, req: HttpRequest, ingress: Instant) {
        // Split the query string off the path; only /metrics reads it.
        let (path, query) = match req.path.split_once('?') {
            Some((p, q)) => (p, q),
            None => (req.path.as_str(), ""),
        };
        let shutdown = req.method == "POST" && path == "/shutdown";
        let close = req.close || shutdown;
        if close {
            if let Some(conn) = self.conns.get_mut(slot).and_then(|c| c.as_mut()) {
                conn.no_new_requests = true;
            }
        }
        if shutdown {
            // Stop *before* queuing the acknowledgement: a client that
            // fires /shutdown and disconnects without reading the
            // reply must still take the server down.
            self.state.request_stop();
            let body = format!(
                "{}\n",
                Json::obj(vec![("status", Json::str("shutting_down"))])
            );
            self.queue_ready(slot, 200, &body, CT_JSON, true);
            return;
        }
        if req.method == "POST" && path == "/v1" {
            self.queue_v1(slot, &req.body, ingress, close);
            return;
        }
        let (status, body, ct) = route_basic(&req.method, path, query, &self.state.service);
        self.queue_ready(slot, status, &body, ct, close);
    }

    /// Runs every line of a newline-JSON `/v1` body through the
    /// service, preserving order. Cache hits and rejections resolve
    /// inline; admitted lines reserve `None` slots filled by the
    /// completion queue. The HTTP status reflects the single-line case
    /// (503 overloaded / 400 invalid); multi-line bodies always get
    /// 200 with per-line `"ok"` flags.
    fn queue_v1(&mut self, slot: usize, body: &str, ingress: Instant, close: bool) {
        let lines: Vec<&str> = body.lines().filter(|l| !l.trim().is_empty()).collect();
        if lines.is_empty() {
            let body = format!("{}\n", error_line("empty_body", None));
            self.queue_ready(slot, 400, &body, CT_JSON, close);
            return;
        }
        let single = lines.len() == 1;
        let (gen, resp) = {
            let Some(conn) = self.conns.get(slot).and_then(|c| c.as_ref()) else {
                return;
            };
            (conn.gen, conn.next_resp)
        };
        let mut slots: Vec<Option<String>> = Vec::with_capacity(lines.len());
        let mut missing = 0usize;
        let mut status = 200u16;
        for (i, line) in lines.iter().enumerate() {
            match parse_request(line) {
                Err(msg) => {
                    if single {
                        status = 400;
                    }
                    slots.push(Some(error_line("invalid", Some(&msg)).to_string()));
                }
                Ok(req) => {
                    let parse_ns = dur_ns(ingress.elapsed());
                    let token = self.next_token;
                    self.next_token += 1;
                    match self
                        .state
                        .service
                        .submit_completion(req, parse_ns, &self.queue, token)
                    {
                        Ok(Submitted::Done(reply)) => slots.push(Some(render_reply(&reply))),
                        Ok(Submitted::Pending) => {
                            self.tokens.insert(
                                token,
                                TokenDest {
                                    slot,
                                    gen,
                                    resp,
                                    line: i,
                                },
                            );
                            slots.push(None);
                            missing += 1;
                        }
                        Err(e) => {
                            let (kind, message): (&str, Option<&str>) = match &e {
                                ServeError::Overloaded => ("overloaded", None),
                                ServeError::ShuttingDown => ("shutting_down", None),
                                ServeError::Timeout => ("timeout", None),
                                ServeError::Invalid(m) => ("invalid", Some(m.as_str())),
                            };
                            if single {
                                status = match e {
                                    ServeError::Invalid(_) => 400,
                                    _ => 503,
                                };
                            }
                            slots.push(Some(error_line(kind, message).to_string()));
                        }
                    }
                }
            }
        }
        let deadline = Instant::now() + self.cfg.read_timeout;
        if let Some(conn) = self.conns.get_mut(slot).and_then(|c| c.as_mut()) {
            conn.responses.push_back(Response::Pending(PendingBatch {
                slots,
                missing,
                status,
                single,
                close,
                deadline,
            }));
            conn.next_resp += 1;
        }
    }

    fn queue_ready(
        &mut self,
        slot: usize,
        status: u16,
        body: &str,
        content_type: &str,
        close: bool,
    ) {
        if let Some(conn) = self.conns.get_mut(slot).and_then(|c| c.as_mut()) {
            conn.responses.push_back(Response::Ready(render_response(
                status,
                body,
                content_type,
                close,
            )));
            conn.next_resp += 1;
        }
    }

    /// Pump + flush + re-arm for one connection.
    ///
    /// After flushing, re-runs the parse loop whenever the write
    /// backlog has dropped back under [`WRITE_BUF_CAP`] with bytes
    /// still in `read_buf`: backpressure can strand *complete*
    /// pipelined requests there, and if the client already sent its
    /// whole burst the kernel socket is empty, so no readable event
    /// will ever re-trigger parsing — the drain itself must. The loop
    /// exits once parsing makes no progress (the residue is a request
    /// prefix awaiting more bytes) or backpressure re-engages.
    fn pump(&mut self, slot: usize) {
        loop {
            let flushed = {
                let Some(conn) = self.conns.get_mut(slot).and_then(|c| c.as_mut()) else {
                    return;
                };
                conn.pump_ready();
                conn.flush()
            };
            if flushed.is_err() {
                self.close_conn(slot);
                return;
            }
            let before = {
                let Some(conn) = self.conns.get(slot).and_then(|c| c.as_ref()) else {
                    return;
                };
                if conn.no_new_requests
                    || conn.read_buf.is_empty()
                    || conn.write_backlog() >= WRITE_BUF_CAP
                {
                    break;
                }
                conn.read_buf.len()
            };
            self.parse_loop(slot, Instant::now());
            match self.conns.get(slot).and_then(|c| c.as_ref()) {
                Some(conn) if conn.read_buf.len() != before => {} // progress: pump again
                Some(_) => break,
                None => return,
            }
        }
        self.after_io(slot);
    }

    /// Closes a finished connection or re-registers its interest:
    /// readable while accepting requests under the backlog cap,
    /// writable while bytes are owed.
    fn after_io(&mut self, slot: usize) {
        let (done, desired, fd, current) = {
            let Some(conn) = self.conns.get(slot).and_then(|c| c.as_ref()) else {
                return;
            };
            let unflushed = conn.write_buf.len() - conn.write_pos;
            let done = (conn.no_new_requests || conn.read_closed)
                && conn.responses.is_empty()
                && unflushed == 0;
            let desired = Interest {
                readable: !conn.read_closed
                    && !conn.no_new_requests
                    && conn.write_backlog() < WRITE_BUF_CAP,
                writable: unflushed > 0,
            };
            (done, desired, conn.stream.as_raw_fd(), conn.interest)
        };
        if done {
            self.close_conn(slot);
            return;
        }
        if desired != current {
            if self
                .poller
                .modify(fd, slot + KEY_CONN_BASE, desired)
                .is_err()
            {
                self.close_conn(slot);
                return;
            }
            if let Some(conn) = self.conns.get_mut(slot).and_then(|c| c.as_mut()) {
                conn.interest = desired;
            }
        }
    }

    fn close_conn(&mut self, slot: usize) {
        let Some(conn) = self.conns.get_mut(slot).and_then(|c| c.take()) else {
            return;
        };
        let _ = self.poller.delete(conn.stream.as_raw_fd());
        let gen = conn.gen;
        // Purge token residue so late completions for this connection
        // drop instead of dangling in the map forever.
        self.tokens.retain(|_, d| !(d.slot == slot && d.gen == gen));
        self.free.push(slot);
        self.state.gate.end_conn();
    }

    /// Routes completed engine replies into their batch slots. Guards
    /// in order: token still live, connection still the same
    /// generation, response not already popped (timeout-filled), slot
    /// not already filled.
    fn drain_completions(&mut self) {
        let completed = self.queue.drain();
        if completed.is_empty() {
            return;
        }
        let mut touched: Vec<usize> = Vec::new();
        for (token, reply) in completed {
            let Some(dest) = self.tokens.remove(&token) else {
                continue;
            };
            let Some(conn) = self.conns.get_mut(dest.slot).and_then(|c| c.as_mut()) else {
                continue;
            };
            if conn.gen != dest.gen {
                continue;
            }
            let Some(idx) = dest.resp.checked_sub(conn.resp_base) else {
                continue;
            };
            let Some(Response::Pending(batch)) = conn.responses.get_mut(idx as usize) else {
                continue;
            };
            let Some(line) = batch.slots.get_mut(dest.line) else {
                continue;
            };
            if line.is_none() {
                *line = Some(render_reply(&reply));
                batch.missing = batch.missing.saturating_sub(1);
                touched.push(dest.slot);
            }
        }
        touched.sort_unstable();
        touched.dedup();
        for slot in touched {
            self.pump(slot);
        }
    }

    /// Deadline sweep: fills overdue pending batches with `timeout`
    /// error lines (one stuck request must not wedge the pipeline
    /// behind it) and evicts connections idle past `read_timeout` —
    /// slowloris senders, half-open peers, idle keep-alives.
    fn expire(&mut self, now: Instant) {
        for slot in 0..self.conns.len() {
            let mut filled = false;
            let mut evict = false;
            if let Some(conn) = self.conns[slot].as_mut() {
                for r in conn.responses.iter_mut() {
                    if let Response::Pending(batch) = r {
                        if batch.missing > 0 && now >= batch.deadline {
                            for line in batch.slots.iter_mut() {
                                if line.is_none() {
                                    *line = Some(error_line("timeout", None).to_string());
                                }
                            }
                            batch.missing = 0;
                            if batch.single {
                                batch.status = 503;
                            }
                            filled = true;
                        }
                    }
                }
                // Evict on inactivity *regardless of write backlog*:
                // a peer that neither sends requests nor drains its
                // responses must not pin the slot (nor spin the loop
                // on an expired deadline `expire` would never act on).
                // The one deferral: a pending batch still awaiting
                // engine replies keeps the connection alive until its
                // own deadline fills it with timeout lines — that
                // deadline is never later than `read_timeout` from
                // parse, so the deferral is bounded.
                evict = !filled
                    && now >= conn.last_activity + self.cfg.read_timeout
                    && !conn
                        .responses
                        .iter()
                        .any(|r| matches!(r, Response::Pending(b) if b.missing > 0));
            }
            if filled {
                self.pump(slot);
            } else if evict {
                self.close_conn(slot);
            }
        }
    }

    /// Shutdown observed: stop accepting (listener closed), stop
    /// parsing everywhere, give in-flight responses `drain_grace`.
    fn begin_drain(&mut self, now: Instant) {
        self.draining = true;
        self.drain_deadline = now + self.cfg.drain_grace;
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.delete(listener.as_raw_fd());
        }
        for conn in self.conns.iter_mut().flatten() {
            conn.no_new_requests = true;
        }
        for slot in 0..self.conns.len() {
            if self.conns[slot].is_some() {
                // Closes already-idle connections immediately.
                self.pump(slot);
            }
        }
    }
}

#[cfg(all(test, not(nai_model)))]
mod tests {
    use super::*;

    #[test]
    fn connection_header_parses_whole_tokens() {
        // Case-insensitive whole tokens, not substrings.
        assert_eq!(connection_close("close"), Some(true));
        assert_eq!(connection_close("Close"), Some(true));
        assert_eq!(connection_close("keep-alive"), Some(false));
        assert_eq!(connection_close("Keep-Alive"), Some(false));
        assert_eq!(connection_close("keep-alive, upgrade"), Some(false));
        assert_eq!(connection_close("upgrade, close"), Some(true));
        // close wins even when keep-alive is also present.
        assert_eq!(connection_close("keep-alive, close"), Some(true));
        // Unknown tokens leave the version default in charge.
        assert_eq!(connection_close("upgrade"), None);
        // A substring scan would have tripped on these.
        assert_eq!(connection_close("not-close"), None);
        assert_eq!(connection_close("closed"), None);
    }

    #[test]
    fn connection_defaults_follow_http_version() {
        let parse = |raw: &str| {
            try_parse_request(raw.as_bytes())
                .expect("valid request")
                .expect("complete request")
                .0
        };
        // HTTP/1.1 defaults to keep-alive.
        assert!(!parse("GET /healthz HTTP/1.1\r\n\r\n").close);
        // HTTP/1.0 defaults to close...
        assert!(parse("GET /healthz HTTP/1.0\r\n\r\n").close);
        // ...unless keep-alive is explicit.
        assert!(!parse("GET /healthz HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").close);
        // `Connection: Close` closes an HTTP/1.1 connection.
        assert!(parse("GET /healthz HTTP/1.1\r\nConnection: Close\r\n\r\n").close);
        // Token lists keep the connection alive when they say so.
        assert!(!parse("GET /healthz HTTP/1.1\r\nConnection: keep-alive, upgrade\r\n\r\n").close);
    }

    #[test]
    fn parse_is_incremental_and_restartable() {
        let full = "POST /v1 HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        // Every strict prefix is incomplete, never an error.
        for cut in 0..full.len() {
            let r = try_parse_request(&full.as_bytes()[..cut]).expect("prefix parses");
            assert!(r.is_none(), "prefix of {cut} bytes should be incomplete");
        }
        let (req, consumed) = try_parse_request(full.as_bytes())
            .expect("valid")
            .expect("complete");
        assert_eq!(consumed, full.len());
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1");
        assert_eq!(req.body, "hello");
        assert!(!req.close);
    }

    #[test]
    fn pipelined_requests_parse_back_to_back() {
        let a = "POST /v1 HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc";
        let b = "GET /metrics HTTP/1.1\r\n\r\n";
        let buf = format!("{a}{b}");
        let (first, consumed) = try_parse_request(buf.as_bytes())
            .expect("valid")
            .expect("complete");
        assert_eq!(first.body, "abc");
        assert_eq!(consumed, a.len());
        let (second, consumed2) = try_parse_request(&buf.as_bytes()[consumed..])
            .expect("valid")
            .expect("complete");
        assert_eq!(second.method, "GET");
        assert_eq!(second.path, "/metrics");
        assert_eq!(consumed2, b.len());
    }

    #[test]
    fn protocol_violations_are_errors_not_hangs() {
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(MAX_HEADER_LINE + 1));
        assert!(try_parse_request(long_line.as_bytes()).is_err());
        // An unterminated line past the cap errors instead of buffering.
        let unterminated = "x".repeat(MAX_HEADER_LINE + 2);
        assert!(try_parse_request(unterminated.as_bytes()).is_err());
        assert!(
            try_parse_request(b"GET\r\n\r\n").is_err(),
            "short request line"
        );
        assert!(
            try_parse_request(b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n").is_err(),
            "bad content-length"
        );
        let huge = format!(
            "POST /v1 HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(
            try_parse_request(huge.as_bytes()).is_err(),
            "body too large"
        );
    }

    #[test]
    fn smuggling_shapes_are_rejected() {
        // Transfer-Encoding is not implemented; accepting it as
        // Content-Length: 0 would desync pipelined requests.
        assert!(
            try_parse_request(b"POST /v1 HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").is_err(),
            "chunked must be rejected"
        );
        assert!(
            try_parse_request(b"POST /v1 HTTP/1.1\r\nTransfer-Encoding: identity\r\n\r\n").is_err(),
            "any transfer-encoding must be rejected"
        );
        // Conflicting duplicate Content-Length headers reject...
        assert!(
            try_parse_request(
                b"POST /v1 HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 5\r\n\r\nabcde"
            )
            .is_err(),
            "conflicting content-length must be rejected"
        );
        // ...while repeated identical ones still parse.
        let (req, _) = try_parse_request(
            b"POST /v1 HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 3\r\n\r\nabc",
        )
        .expect("valid")
        .expect("complete");
        assert_eq!(req.body, "abc");
    }

    #[test]
    fn responses_render_with_keepalive_and_close() {
        let keep = String::from_utf8(render_response(200, "{}\n", CT_JSON, false)).expect("utf8");
        assert!(keep.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(keep.contains("Connection: keep-alive\r\n"));
        assert!(keep.contains("Content-Length: 3\r\n"));
        let close = String::from_utf8(render_response(503, "x", CT_JSON, true)).expect("utf8");
        assert!(close.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(close.contains("Connection: close\r\n"));
    }
}
