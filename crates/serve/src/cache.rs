//! Sequence-versioned prediction cache with k-hop invalidation.
//!
//! The serving layer answers every read by running propagation on an
//! engine replica — even when the same (often hub) node was predicted
//! moments ago on an unchanged graph. This module remembers
//! `(prediction, depth)` per node, stamped with the mutation sequence
//! number it was computed under, and serves repeat reads without
//! touching a replica. Correctness hinges on two rules:
//!
//! * **Version guard** — an entry is inserted only if the sequence
//!   point it was computed at is *still* the cache's current sequence
//!   point ([`PredictionCache::insert`] drops late results computed
//!   before a newer mutation was sequenced), and the scheduler advances
//!   the cache's sequence point (after invalidating) the moment it
//!   sequences a mutation — before any worker could have applied it.
//! * **Mutation invalidation** — under fixed-depth propagation a
//!   mutation can only change predictions within `t_max` hops of the
//!   touched nodes, so the scheduler walks that frontier
//!   ([`nai_stream::DynamicGraph::k_hop_frontier`]) and evicts every
//!   cached node within its own depth bound of the mutation
//!   ([`PredictionCache::invalidate_frontier`]). When the walk blows
//!   its budget — or the NAP mode consults *global* state (the
//!   incremental stationary vector, perturbed by every mutation), where
//!   no local frontier is sound — the whole cache is flushed
//!   ([`PredictionCache::flush_all`]).
//!
//! Hits are therefore bit-identical to a cache-bypass run at the same
//! sequence point: a surviving entry's inputs (its ≤`depth`-hop
//! neighborhood under fixed mode; the entire graph otherwise) are
//! untouched since it was computed.
//!
//! Capacity is bounded: beyond `cap` entries the least-recently-used
//! entry is evicted (an `O(cap)` scan — caches here are small and
//! misses already pay a full propagation).

use crate::proto::NodeResult;
use crate::sync::{lock_recover, Mutex};
use std::collections::HashMap;

/// Monotonic counters exported through `/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Reads answered entirely from the cache (request granularity: a
    /// multi-node read hits only if *every* node is cached).
    pub hits: u64,
    /// Reads that consulted the cache and fell through to an engine.
    pub misses: u64,
    /// Entries dropped under capacity pressure (LRU).
    pub evicted: u64,
    /// Entries dropped by mutation invalidation (frontier walks and
    /// full flushes combined).
    pub invalidated: u64,
    /// Conservative full flushes (budget-exceeded walks, and every
    /// mutation under a globally-dependent NAP mode).
    pub flushes: u64,
}

struct Entry {
    /// Sequence point the prediction was computed at.
    seq: u64,
    prediction: usize,
    /// NAP exit depth — also this entry's invalidation radius: a
    /// mutation within `depth` hops could have changed it.
    depth: usize,
    /// LRU clock value of the last touch.
    tick: u64,
}

/// Bounded node → `(applied_seq, prediction, depth)` map. See the
/// module docs for the invalidation contract.
pub struct PredictionCache {
    map: HashMap<u32, Entry>,
    cap: usize,
    tick: u64,
    /// Sequence number of the latest sequenced mutation (0 = seed
    /// state). Entries are only inserted at this sequence point, and
    /// hits report it as their `applied_seq`.
    seq: u64,
    counters: CacheCounters,
}

impl PredictionCache {
    /// An empty cache holding at most `cap` entries.
    ///
    /// # Panics
    /// Panics if `cap` is zero (validated upstream by
    /// `ServeConfig::validate`).
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "cache cap must be ≥ 1");
        Self {
            map: HashMap::new(),
            cap,
            tick: 0,
            seq: 0,
            counters: CacheCounters::default(),
        }
    }

    /// The sequence point cached entries are valid at.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counter snapshot.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// Moves the cache's sequence point forward after a mutation has
    /// been sequenced (and its invalidation applied). Surviving entries
    /// remain valid at the new point by the invalidation argument.
    pub fn advance_seq(&mut self, seq: u64) {
        debug_assert!(seq >= self.seq, "sequence points are monotonic");
        self.seq = seq;
    }

    /// All-or-nothing read: `Some((applied_seq, results))` when *every*
    /// requested node is cached (counted as one hit; entries are
    /// LRU-touched), `None` otherwise (not counted — call
    /// [`Self::note_miss`] once the read is actually dispatched, so
    /// `hits + misses` equals the reads that went down the cached
    /// path).
    pub fn lookup(&mut self, nodes: &[u32]) -> Option<(u64, Vec<NodeResult>)> {
        if nodes.is_empty() || !nodes.iter().all(|n| self.map.contains_key(n)) {
            return None;
        }
        self.counters.hits += 1;
        let results = nodes
            .iter()
            .map(|&node| {
                self.tick += 1;
                // nai-lint: allow(hot-path-panic) -- the all-hit check above
                // proved every node present, and `&mut self` bars eviction between.
                let e = self.map.get_mut(&node).expect("presence checked above");
                // An entry is inserted at the then-current sequence
                // point and only *survives* advances (invalidation runs
                // before each advance), so it is valid at `self.seq`.
                debug_assert!(e.seq <= self.seq);
                e.tick = self.tick;
                NodeResult {
                    node,
                    prediction: e.prediction,
                    depth: e.depth,
                }
            })
            .collect();
        Some((self.seq, results))
    }

    /// Records a read that consulted the cache and was dispatched to an
    /// engine instead.
    pub fn note_miss(&mut self) {
        self.counters.misses += 1;
    }

    /// Inserts a freshly computed prediction — only if it was computed
    /// at the cache's *current* sequence point. A result computed at
    /// `seq` is stale the moment a newer mutation is sequenced (the
    /// scheduler invalidates and advances before any worker can apply
    /// it), so late inserts are dropped rather than raced in.
    pub fn insert(&mut self, node: u32, seq: u64, prediction: usize, depth: usize) {
        if seq != self.seq {
            debug_assert!(seq < self.seq, "insert from the future");
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.map.get_mut(&node) {
            *e = Entry {
                seq,
                prediction,
                depth,
                tick,
            };
            return;
        }
        if self.map.len() >= self.cap {
            // LRU by scan: caches are small (cap ≈ thousands) and this
            // runs only on an insert past capacity.
            let oldest = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(&n, _)| n)
                // nai-lint: allow(hot-path-panic) -- this branch runs only
                // when len ≥ cap, and cap ≥ 1, so the map is non-empty.
                .expect("non-empty at cap");
            self.map.remove(&oldest);
            self.counters.evicted += 1;
        }
        self.map.insert(
            node,
            Entry {
                seq,
                prediction,
                depth,
                tick,
            },
        );
    }

    /// Applies a mutation's dirty frontier: every cached node whose own
    /// depth bound reaches the mutation (`hop distance ≤ entry.depth`)
    /// is evicted. Under fixed-depth mode every entry's depth equals
    /// `t_max`, so this evicts the frontier ∩ cache; the per-entry
    /// bound keeps the rule exact if shallower entries ever coexist.
    pub fn invalidate_frontier(&mut self, frontier: &[(u32, usize)]) {
        for &(node, dist) in frontier {
            if let Some(e) = self.map.get(&node) {
                if dist <= e.depth {
                    self.map.remove(&node);
                    self.counters.invalidated += 1;
                }
            }
        }
    }

    /// Conservative fallback: drop everything (budget-exceeded walks,
    /// and every mutation under globally-dependent NAP modes).
    pub fn flush_all(&mut self) {
        self.counters.invalidated += self.map.len() as u64;
        self.counters.flushes += 1;
        self.map.clear();
    }
}

/// What a sequenced mutation evicts before its sequence point advances
/// (computed by the scheduler's mirror walk, applied by
/// [`VersionedCache::sequence_mutation`]).
pub enum Invalidation {
    /// The graph did not change (duplicate edge) or the mutation
    /// touched no existing adjacency (isolated arrival): every entry
    /// survives.
    Untouched,
    /// Evict the mutation's dirty frontier (`(node, hop distance)`
    /// pairs from the k-hop walk).
    Frontier(Vec<(u32, usize)>),
    /// Conservative full flush (walk over budget, or a globally
    /// dependent NAP mode).
    Flush,
}

/// A [`PredictionCache`] behind a mutex, exposing exactly the compound
/// operations whose atomicity the serving invariants need:
///
/// * [`Self::sequence_mutation`] applies a mutation's invalidation
///   *and* advances the sequence point under one lock acquisition —
///   a worker insert can land before or after, never in between, so
///   the per-entry version guard is airtight (`tests/model.rs` checks
///   this exhaustively under `--cfg nai_model`).
/// * [`Self::insert_batch`] stamps a whole batch's results at the
///   sequence point they were computed at in one acquisition.
///
/// Every method recovers from poison: cache state is a plain map +
/// counters that no panic can leave half-linked, and a dead worker
/// must not take the submit fast path or `/metrics` down.
pub struct VersionedCache {
    inner: Mutex<PredictionCache>,
}

impl VersionedCache {
    /// An empty cache holding at most `cap` entries.
    ///
    /// # Panics
    /// Panics if `cap` is zero (validated upstream by
    /// `ServeConfig::validate`).
    pub fn new(cap: usize) -> Self {
        Self {
            inner: Mutex::new(PredictionCache::new(cap)),
        }
    }

    /// All-or-nothing read (see [`PredictionCache::lookup`]).
    pub fn lookup(&self, nodes: &[u32]) -> Option<(u64, Vec<NodeResult>)> {
        lock_recover(&self.inner).lookup(nodes)
    }

    /// Records a read that consulted the cache and was dispatched to
    /// an engine instead.
    pub fn note_miss(&self) {
        lock_recover(&self.inner).note_miss();
    }

    /// Atomically applies a sequenced mutation: eviction and the
    /// sequence-point advance happen under the same lock, so a
    /// concurrent [`Self::insert_batch`] either runs entirely before
    /// (its entries are then subject to this eviction) or entirely
    /// after (its stale-seq entries are dropped by the version guard).
    pub fn sequence_mutation(&self, seq: u64, inv: Invalidation) {
        let mut c = lock_recover(&self.inner);
        match inv {
            Invalidation::Untouched => {}
            Invalidation::Frontier(frontier) => c.invalidate_frontier(&frontier),
            Invalidation::Flush => c.flush_all(),
        }
        c.advance_seq(seq);
    }

    /// Inserts a batch of `(node, prediction, depth)` results computed
    /// at sequence point `seq`, under one lock acquisition. Results
    /// outdated by a mutation sequenced since they were computed are
    /// dropped by the per-entry version guard.
    pub fn insert_batch(&self, seq: u64, entries: impl IntoIterator<Item = (u32, usize, usize)>) {
        let mut c = lock_recover(&self.inner);
        for (node, prediction, depth) in entries {
            c.insert(node, seq, prediction, depth);
        }
    }

    /// Counter snapshot (poison-recovering: `/metrics` keeps working
    /// after a worker dies mid-insert).
    pub fn counters(&self) -> CacheCounters {
        lock_recover(&self.inner).counters()
    }

    /// The sequence point cached entries are valid at.
    pub fn seq(&self) -> u64 {
        lock_recover(&self.inner).seq()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nai_stream::DynamicGraph;

    /// A path 0 − 1 − … − (n−1): exact hop distances for the walk.
    fn path_graph(n: usize) -> DynamicGraph {
        let mut d = DynamicGraph::new(2);
        d.add_node(&[0.0; 2], &[]);
        for v in 1..n as u32 {
            d.add_node(&[0.0; 2], &[v - 1]);
        }
        d
    }

    fn hit_nodes(c: &mut PredictionCache, nodes: &[u32]) -> bool {
        c.lookup(nodes).is_some()
    }

    #[test]
    fn edge_mutation_within_k_hops_evicts_beyond_does_not() {
        const K: usize = 2;
        let mut g = path_graph(10);
        let mut c = PredictionCache::new(64);
        c.insert(0, 0, 7, K);
        assert!(hit_nodes(&mut c, &[0]));

        // Edge (3, 5) arrives: node 3 is K+1 = 3 hops from node 0 —
        // outside its depth bound, so the entry survives.
        assert!(g.add_edge(3, 5));
        let frontier = g.k_hop_frontier(&[3, 5], K, 1024).unwrap();
        c.invalidate_frontier(&frontier);
        c.advance_seq(1);
        assert!(hit_nodes(&mut c, &[0]), "mutation at distance K+1 kept");
        assert_eq!(c.counters().invalidated, 0);

        // Edge (2, 7) arrives: node 2 is exactly K hops from node 0 —
        // inside the bound, so the entry is evicted.
        assert!(g.add_edge(2, 7));
        let frontier = g.k_hop_frontier(&[2, 7], K, 1024).unwrap();
        c.invalidate_frontier(&frontier);
        c.advance_seq(2);
        assert!(!hit_nodes(&mut c, &[0]), "mutation at distance K evicts");
        assert_eq!(c.counters().invalidated, 1);
    }

    #[test]
    fn shallower_entries_use_their_own_depth_bound() {
        const K: usize = 2;
        let g = path_graph(10);
        let mut c = PredictionCache::new(64);
        c.insert(0, 0, 1, 1); // depth-1 entry: radius 1, not K
        let frontier = g.k_hop_frontier(&[2], K, 1024).unwrap();
        assert!(frontier.iter().any(|&(n, d)| n == 0 && d == 2));
        c.invalidate_frontier(&frontier);
        assert!(
            hit_nodes(&mut c, &[0]),
            "distance 2 cannot reach a depth-1 entry"
        );
        let frontier = g.k_hop_frontier(&[1], K, 1024).unwrap();
        c.invalidate_frontier(&frontier);
        assert!(!hit_nodes(&mut c, &[0]), "distance 1 reaches it");
    }

    #[test]
    fn over_budget_frontier_forces_full_flush() {
        // A hub mutation's 1-hop ball exceeds the budget → the caller
        // gets None and must flush everything, including entries far
        // from the mutation.
        let mut g = DynamicGraph::new(2);
        g.add_node(&[0.0; 2], &[]);
        for _ in 0..40 {
            g.add_node(&[0.0; 2], &[0]);
        }
        let far = g.add_node(&[0.0; 2], &[1]); // leaf-of-leaf
        let mut c = PredictionCache::new(64);
        c.insert(far, 0, 3, 1);
        let walk = g.k_hop_frontier(&[0, 2], 2, 16);
        assert!(walk.is_none(), "hub frontier must exceed the budget");
        c.flush_all();
        c.advance_seq(1);
        assert!(c.is_empty());
        assert!(!hit_nodes(&mut c, &[far]));
        let counters = c.counters();
        assert_eq!(counters.flushes, 1);
        assert_eq!(counters.invalidated, 1);
    }

    #[test]
    fn lru_eviction_under_cap_pressure_never_serves_the_evicted_entry() {
        let mut c = PredictionCache::new(2);
        c.insert(10, 0, 1, 2);
        c.insert(20, 0, 2, 2);
        // Touch 10 so 20 is the LRU entry.
        assert!(hit_nodes(&mut c, &[10]));
        c.insert(30, 0, 3, 2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.counters().evicted, 1);
        assert!(!hit_nodes(&mut c, &[20]), "evicted entry gone");
        let (seq, results) = c.lookup(&[10, 30]).unwrap();
        assert_eq!(seq, 0);
        assert_eq!(
            results
                .iter()
                .map(|r| (r.node, r.prediction, r.depth))
                .collect::<Vec<_>>(),
            vec![(10, 1, 2), (30, 3, 2)]
        );
        // Re-inserting a present node is an overwrite, not an eviction.
        c.insert(30, 0, 9, 1);
        assert_eq!(c.counters().evicted, 1);
        assert_eq!(c.lookup(&[30]).unwrap().1[0].prediction, 9);
    }

    #[test]
    fn stale_inserts_are_dropped_by_the_version_guard() {
        let mut c = PredictionCache::new(8);
        c.advance_seq(3);
        // A worker's result computed at seq 2 arrives after mutation 3
        // was sequenced: it must not be cached.
        c.insert(5, 2, 1, 2);
        assert!(!hit_nodes(&mut c, &[5]));
        c.insert(5, 3, 1, 2);
        let (seq, _) = c.lookup(&[5]).unwrap();
        assert_eq!(seq, 3, "hits report the current sequence point");
    }

    /// Satellite-2 regression: a panic while the cache lock is held
    /// (e.g. a worker dying mid-insert) poisons it; every
    /// [`VersionedCache`] operation must keep working — the map and
    /// counters cannot be left half-linked by a panic, so recovery is
    /// sound, and `/metrics` plus the submit fast path must not die
    /// with the worker.
    #[test]
    fn versioned_cache_operations_survive_a_poisoned_lock() {
        let vc = VersionedCache::new(4);
        vc.insert_batch(0, [(1u32, 2usize, 1usize)]);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // nai-lint: allow(lock-hygiene) -- this test poisons the lock on
            // purpose; lock_recover here would defeat the setup.
            let _g = vc.inner.lock().unwrap();
            panic!("die holding the cache lock");
        }));
        assert!(r.is_err());
        assert!(vc.inner.is_poisoned());
        assert_eq!(vc.lookup(&[1]).unwrap().0, 0, "hit after poison");
        vc.note_miss();
        vc.sequence_mutation(1, Invalidation::Flush);
        assert_eq!(vc.seq(), 1);
        assert!(vc.lookup(&[1]).is_none(), "flush applied after poison");
        let counters = vc.counters();
        assert_eq!((counters.flushes, counters.misses), (1, 1));
    }

    #[test]
    fn multi_node_reads_hit_all_or_nothing() {
        let mut c = PredictionCache::new(8);
        c.insert(1, 0, 1, 2);
        assert!(c.lookup(&[1, 2]).is_none(), "partial coverage is a miss");
        c.note_miss();
        c.insert(2, 0, 2, 2);
        assert!(c.lookup(&[1, 2]).is_some());
        assert!(c.lookup(&[]).is_none(), "empty reads never hit");
        let counters = c.counters();
        assert_eq!((counters.hits, counters.misses), (1, 1));
    }
}
