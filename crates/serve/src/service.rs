//! The in-process serving engine: admission control → dynamic
//! micro-batcher → shard worker pool.
//!
//! ```text
//!             submit()                 scheduler thread              worker threads
//! clients ──[admission: in-flight ≤ queue_cap]──▶ bounded MPSC ──▶ forming batch
//!                │ Overloaded                          │  closes on max_batch
//!                ▼                                     │  or max_wait deadline
//!            rejected                                  ▼
//!                                         split by shard, shed check
//!                                                      │
//!                                        ┌─────────────┼─────────────┐
//!                                        ▼             ▼             ▼
//!                                    worker 0      worker 1  …   worker N−1
//!                                   (engine +     (engine +     (engine +
//!                                    scratch)      scratch)      scratch)
//! ```
//!
//! **Batching** is the paper's Fig. 5 trade-off as a runtime policy: a
//! forming batch closes when it holds `max_batch` requests *or* its
//! oldest request has waited `max_wait` — larger/longer batches amortize
//! the per-batch stationary and BFS work, at the cost of queueing
//! latency.
//!
//! **Sharding**: each worker owns one [`StreamingEngine`] replica (same
//! checkpoint, private graph + scratch). Reads fan out round-robin;
//! mutations land on one owning shard (explicit `shard` field, or
//! round-robin assignment for ingests, whose replies name the owner).
//! Shards therefore diverge under mutation — routing consistency is the
//! client's contract, checked per shard against a single-threaded
//! engine oracle in the end-to-end tests.
//!
//! **Admission / shedding**: at most `queue_cap` requests may be in
//! flight (queued or being served); beyond that, [`ServeError::Overloaded`]
//! is returned immediately — never a hang. Before that hard wall, the
//! [`nai_core::config::LoadShedPolicy`] caps the NAP depth budget of
//! batches dispatched under queue pressure, trading accuracy for drain
//! rate (the accuracy↔latency dial driven by load).

use crate::proto::{NodeResult, Op, Reply, Request};
use nai_core::checkpoint::ModelCheckpoint;
use nai_core::config::{InferenceConfig, ServeConfig};
use nai_stream::{DynamicGraph, LatencyStats, MacsBreakdown, StreamingEngine};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service-level failures surfaced to the transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The admission bound (`queue_cap`) is full; retry later.
    Overloaded,
    /// The service is shutting down; no new work is accepted.
    ShuttingDown,
    /// The worker did not answer within the wait deadline.
    Timeout,
    /// The request can never be served (e.g. shard out of range).
    Invalid(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "overloaded"),
            ServeError::ShuttingDown => write!(f, "shutting_down"),
            ServeError::Timeout => write!(f, "timeout"),
            ServeError::Invalid(m) => write!(f, "invalid request: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Static facts about a deployed service (the `/healthz` payload).
#[derive(Debug, Clone, Copy)]
pub struct ServiceInfo {
    /// Worker / shard count.
    pub shards: usize,
    /// Feature dimensionality every ingest must match.
    pub feature_dim: usize,
    /// Highest trained depth.
    pub k: usize,
    /// Node count of the seed graph every shard started from (ids below
    /// this are valid on every shard).
    pub seed_nodes: usize,
}

/// A point-in-time view of the service counters (the `/metrics`
/// payload). Latency statistics are merged across workers with
/// [`LatencyStats::merge`]; MACs with [`MacsBreakdown::merge`].
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Requests currently queued or being served.
    pub queue_depth: usize,
    /// Submissions rejected at the admission bound.
    pub overloaded: u64,
    /// Batches dispatched so far.
    pub batches: u64,
    /// Batches dispatched with a degraded (load-shed) depth budget.
    pub degraded_batches: u64,
    /// Requests dispatched inside degraded batches (counted per
    /// request at dispatch time, whatever its kind or node count).
    pub shed_ops: u64,
    /// Edge mutations applied.
    pub edges_observed: u64,
    /// Per-op validation failures answered.
    pub op_errors: u64,
    /// Predictions answered since the service started (one per node
    /// for `infer`, one per `ingest`).
    pub served: u64,
    /// Enqueue→reply latency and exit depths, merged across workers.
    /// Bounded: each worker restarts its accumulator after every
    /// [`STATS_WINDOW`] samples (so quantiles cover the current
    /// accumulation period, not all time, and a long-lived service
    /// cannot grow without bound); `served` keeps the all-time count.
    pub stats: LatencyStats,
    /// Cumulative per-stage MACs summed over shard engines.
    pub macs: MacsBreakdown,
}

struct Job {
    op: Op,
    shard: Option<usize>,
    responder: Sender<Reply>,
    enqueued: Instant,
}

struct RoutedJob {
    op: Op,
    responder: Sender<Reply>,
    enqueued: Instant,
}

type ShardBatch = (Vec<RoutedJob>, InferenceConfig);

/// Per-worker latency-sample bound: the accumulator restarts from
/// empty each time it reaches this many samples, so quantiles describe
/// the current accumulation period while counters cover all time
/// (`LatencyStats` stores every recorded sample, so an unbounded
/// accumulator would leak on a long-lived server).
pub const STATS_WINDOW: usize = 1 << 18;

struct Shared {
    in_flight: AtomicUsize,
    overloaded: AtomicU64,
    batches: AtomicU64,
    degraded_batches: AtomicU64,
    shed_ops: AtomicU64,
    edges_observed: AtomicU64,
    op_errors: AtomicU64,
    served: AtomicU64,
    /// Replies sent (all kinds) — lets a panicking worker repair the
    /// in-flight counter for the jobs its batch never answered.
    answered: AtomicU64,
    worker_stats: Vec<Mutex<LatencyStats>>,
    /// `[propagation, nap, classification]` per worker, overwritten
    /// after each batch from the engine's own breakdown.
    worker_macs: Vec<[AtomicU64; 3]>,
}

impl Shared {
    fn respond(&self, worker: usize, job: &RoutedJob, reply: Reply) {
        let latency = job.enqueued.elapsed();
        match &reply {
            Reply::Infer { results, .. } => {
                self.served
                    .fetch_add(results.len() as u64, Ordering::Relaxed);
                let mut stats = self.worker_stats[worker].lock().unwrap();
                for r in results {
                    if stats.count() >= STATS_WINDOW {
                        *stats = LatencyStats::new();
                    }
                    stats.record(latency, r.depth);
                }
            }
            Reply::Ingest { depth, .. } => {
                self.served.fetch_add(1, Ordering::Relaxed);
                let mut stats = self.worker_stats[worker].lock().unwrap();
                if stats.count() >= STATS_WINDOW {
                    *stats = LatencyStats::new();
                }
                stats.record(latency, *depth);
            }
            Reply::Edge { .. } => {
                self.edges_observed.fetch_add(1, Ordering::Relaxed);
            }
            Reply::Error { .. } => {
                self.op_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        // Free the admission slot *before* the reply is visible, so a
        // client that has its answer can immediately resubmit without
        // racing the counter (and `queue_depth` reads 0 once every
        // reply of a closed loop has been received).
        self.answered.fetch_add(1, Ordering::Relaxed);
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
        let _ = job.responder.send(reply);
    }
}

/// A pending answer; `wait` blocks until the worker responds.
pub struct Ticket {
    rx: Receiver<Reply>,
}

impl Ticket {
    /// Blocks for the reply up to `timeout`.
    ///
    /// # Errors
    /// [`ServeError::Timeout`] if no reply arrives in time (the request
    /// may still complete server-side; its reply is then discarded).
    pub fn wait(self, timeout: Duration) -> Result<Reply, ServeError> {
        self.rx
            .recv_timeout(timeout)
            .map_err(|_| ServeError::Timeout)
    }
}

/// The online inference service (transport-agnostic; see
/// [`crate::http`] for the TCP front end).
pub struct NaiService {
    tx: Mutex<Option<SyncSender<Job>>>,
    shared: Arc<Shared>,
    info: ServiceInfo,
    cfg: ServeConfig,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl NaiService {
    /// Deploys the service over pre-built engine shards.
    ///
    /// # Errors
    /// Returns a description when `cfg` fails validation, the shard
    /// count disagrees with `cfg.workers`, or `infer_cfg` is invalid
    /// for the engines' trained depth.
    pub fn new(
        engines: Vec<StreamingEngine>,
        infer_cfg: InferenceConfig,
        cfg: ServeConfig,
    ) -> Result<Self, String> {
        cfg.validate()?;
        if engines.len() != cfg.workers {
            return Err(format!(
                "cfg.workers = {} but {} engine shards supplied",
                cfg.workers,
                engines.len()
            ));
        }
        let k = engines[0].k();
        infer_cfg.validate(k)?;
        let feature_dim = engines[0].graph().feature_dim();
        let seed_nodes = engines[0].graph().num_nodes();
        for e in &engines {
            if e.k() != k || e.graph().feature_dim() != feature_dim {
                return Err("engine shards must share k and feature_dim".to_string());
            }
        }
        let info = ServiceInfo {
            shards: cfg.workers,
            feature_dim,
            k,
            seed_nodes,
        };
        let shared = Arc::new(Shared {
            in_flight: AtomicUsize::new(0),
            overloaded: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            degraded_batches: AtomicU64::new(0),
            shed_ops: AtomicU64::new(0),
            edges_observed: AtomicU64::new(0),
            op_errors: AtomicU64::new(0),
            served: AtomicU64::new(0),
            answered: AtomicU64::new(0),
            worker_stats: (0..cfg.workers)
                .map(|_| Mutex::new(LatencyStats::new()))
                .collect(),
            worker_macs: (0..cfg.workers)
                .map(|_| [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)])
                .collect(),
        });

        let mut threads = Vec::with_capacity(cfg.workers + 1);
        let mut worker_txs = Vec::with_capacity(cfg.workers);
        for (w, engine) in engines.into_iter().enumerate() {
            let (wtx, wrx) = mpsc::channel::<ShardBatch>();
            worker_txs.push(wtx);
            let shared_w = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("nai-serve-worker-{w}"))
                    .spawn(move || worker_loop(w, engine, wrx, shared_w))
                    .expect("spawn worker thread"),
            );
        }

        let (tx, rx) = mpsc::sync_channel::<Job>(cfg.queue_cap);
        let shared_s = Arc::clone(&shared);
        let sched_cfg = cfg;
        threads.push(
            std::thread::Builder::new()
                .name("nai-serve-batcher".to_string())
                .spawn(move || scheduler_loop(rx, worker_txs, infer_cfg, sched_cfg, shared_s))
                .expect("spawn scheduler thread"),
        );

        Ok(Self {
            tx: Mutex::new(Some(tx)),
            shared,
            info,
            cfg,
            threads: Mutex::new(threads),
        })
    }

    /// Deploys over `cfg.workers` shard replicas built from one
    /// checkpoint and seed graph (λ₂ estimated once — see
    /// [`StreamingEngine::shard_replicas`]).
    ///
    /// # Errors
    /// As [`Self::new`].
    pub fn from_checkpoint(
        ckpt: &ModelCheckpoint,
        seed: &DynamicGraph,
        infer_cfg: InferenceConfig,
        cfg: ServeConfig,
    ) -> Result<Self, String> {
        cfg.validate()?;
        let engines = StreamingEngine::shard_replicas(ckpt, seed, cfg.workers);
        Self::new(engines, infer_cfg, cfg)
    }

    /// Static deployment facts.
    pub fn info(&self) -> ServiceInfo {
        self.info
    }

    /// The serving configuration this service runs under.
    pub fn config(&self) -> ServeConfig {
        self.cfg
    }

    /// Enqueues a request; returns a [`Ticket`] for the eventual reply.
    ///
    /// # Errors
    /// [`ServeError::Overloaded`] at the admission bound,
    /// [`ServeError::Invalid`] for an out-of-range shard,
    /// [`ServeError::ShuttingDown`] after [`Self::shutdown`] began.
    pub fn submit(&self, req: Request) -> Result<Ticket, ServeError> {
        if let Some(s) = req.shard {
            if s >= self.info.shards {
                return Err(ServeError::Invalid(format!(
                    "shard {s} out of range (service has {} shards)",
                    self.info.shards
                )));
            }
        }
        // Admission: reserve an in-flight slot or reject immediately.
        if self
            .shared
            .in_flight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |c| {
                (c < self.cfg.queue_cap).then_some(c + 1)
            })
            .is_err()
        {
            self.shared.overloaded.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded);
        }
        let (rtx, rrx) = mpsc::channel();
        let job = Job {
            op: req.op,
            shard: req.shard,
            responder: rtx,
            enqueued: Instant::now(),
        };
        let guard = self.tx.lock().unwrap();
        let outcome = match guard.as_ref() {
            None => Err(ServeError::ShuttingDown),
            Some(tx) => match tx.try_send(job) {
                Ok(()) => Ok(Ticket { rx: rrx }),
                // The sync_channel capacity equals queue_cap, so with the
                // admission counter reserved this is unreachable in
                // practice — kept as a typed backstop, not a panic.
                Err(TrySendError::Full(_)) => Err(ServeError::Overloaded),
                Err(TrySendError::Disconnected(_)) => Err(ServeError::ShuttingDown),
            },
        };
        drop(guard);
        if let Err(e) = &outcome {
            self.shared.in_flight.fetch_sub(1, Ordering::AcqRel);
            if *e == ServeError::Overloaded {
                self.shared.overloaded.fetch_add(1, Ordering::Relaxed);
            }
        }
        outcome
    }

    /// [`Self::submit`] + wait, with a 30 s answer deadline.
    ///
    /// # Errors
    /// As [`Self::submit`], plus [`ServeError::Timeout`].
    pub fn call(&self, req: Request) -> Result<Reply, ServeError> {
        self.submit(req)?.wait(Duration::from_secs(30))
    }

    /// Requests currently queued or executing — one atomic load, cheap
    /// enough for a liveness probe (unlike [`Self::metrics`], which
    /// merges every worker's latency samples).
    pub fn queue_depth(&self) -> usize {
        self.shared.in_flight.load(Ordering::Acquire)
    }

    /// Merged counters, latency statistics, and MACs.
    pub fn metrics(&self) -> MetricsSnapshot {
        let s = &self.shared;
        let mut stats = LatencyStats::new();
        for w in &s.worker_stats {
            stats.merge(&w.lock().unwrap());
        }
        let mut macs = MacsBreakdown::default();
        for m in &s.worker_macs {
            macs.merge(&MacsBreakdown {
                propagation: m[0].load(Ordering::Relaxed),
                nap: m[1].load(Ordering::Relaxed),
                classification: m[2].load(Ordering::Relaxed),
            });
        }
        MetricsSnapshot {
            queue_depth: s.in_flight.load(Ordering::Acquire),
            overloaded: s.overloaded.load(Ordering::Relaxed),
            batches: s.batches.load(Ordering::Relaxed),
            degraded_batches: s.degraded_batches.load(Ordering::Relaxed),
            shed_ops: s.shed_ops.load(Ordering::Relaxed),
            edges_observed: s.edges_observed.load(Ordering::Relaxed),
            served: s.served.load(Ordering::Relaxed),
            op_errors: s.op_errors.load(Ordering::Relaxed),
            stats,
            macs,
        }
    }

    /// Stops accepting work, drains queued requests (every admitted
    /// request still gets its reply), and joins all threads.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        // Dropping the submission sender disconnects the scheduler's
        // receive loop; the scheduler dispatches its forming batch,
        // then drops the worker senders, which drains the workers.
        drop(self.tx.lock().unwrap().take());
        let mut threads = self.threads.lock().unwrap();
        for handle in threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for NaiService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn scheduler_loop(
    rx: Receiver<Job>,
    worker_txs: Vec<Sender<ShardBatch>>,
    base_cfg: InferenceConfig,
    cfg: ServeConfig,
    shared: Arc<Shared>,
) {
    let mut forming: Vec<Job> = Vec::with_capacity(cfg.max_batch);
    let mut rr = 0usize;
    let dispatch = |forming: &mut Vec<Job>, rr: &mut usize| {
        if forming.is_empty() {
            return;
        }
        shared.batches.fetch_add(1, Ordering::Relaxed);
        let degraded = cfg
            .shed
            .engaged(shared.in_flight.load(Ordering::Acquire), cfg.queue_cap);
        let batch_cfg = if degraded {
            shared.degraded_batches.fetch_add(1, Ordering::Relaxed);
            shared
                .shed_ops
                .fetch_add(forming.len() as u64, Ordering::Relaxed);
            cfg.shed.degrade(&base_cfg)
        } else {
            base_cfg
        };
        let mut per_shard: Vec<Vec<RoutedJob>> =
            (0..worker_txs.len()).map(|_| Vec::new()).collect();
        for job in forming.drain(..) {
            let shard = job.shard.unwrap_or_else(|| match job.op {
                // Mutations without an owner default to shard 0 so
                // repeated un-routed edges stay self-consistent; reads
                // and new-node ingests are assigned round-robin.
                Op::ObserveEdge { .. } => 0,
                _ => {
                    let s = *rr % worker_txs.len();
                    *rr += 1;
                    s
                }
            });
            per_shard[shard].push(RoutedJob {
                op: job.op,
                responder: job.responder,
                enqueued: job.enqueued,
            });
        }
        for (shard, jobs) in per_shard.into_iter().enumerate() {
            if jobs.is_empty() {
                continue;
            }
            // Workers outlive the scheduler by construction, but if one
            // ever died (engine panic), answer its jobs instead of
            // leaking their admission slots and hanging the clients.
            if let Err(dead) = worker_txs[shard].send((jobs, batch_cfg)) {
                for job in dead.0 .0 {
                    shared.respond(
                        shard,
                        &job,
                        Reply::Error {
                            message: format!("shard {shard} worker is gone"),
                        },
                    );
                }
            }
        }
    };

    loop {
        let next = if forming.is_empty() {
            match rx.recv() {
                Ok(job) => Some(job),
                Err(_) => break,
            }
        } else {
            let deadline = forming[0].enqueued + cfg.max_wait;
            match deadline.checked_duration_since(Instant::now()) {
                None => None, // oldest request's wait budget is spent
                Some(remaining) => match rx.recv_timeout(remaining) {
                    Ok(job) => Some(job),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => {
                        dispatch(&mut forming, &mut rr);
                        break;
                    }
                },
            }
        };
        match next {
            Some(job) => {
                forming.push(job);
                if forming.len() >= cfg.max_batch {
                    dispatch(&mut forming, &mut rr);
                }
            }
            None => dispatch(&mut forming, &mut rr),
        }
    }
    // Senders to workers drop here; workers drain and exit.
}

fn worker_loop(
    worker: usize,
    mut engine: StreamingEngine,
    rx: Receiver<ShardBatch>,
    shared: Arc<Shared>,
) {
    while let Ok((jobs, cfg)) = rx.recv() {
        let batch_len = jobs.len() as u64;
        let answered_before = shared.answered.load(Ordering::Relaxed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            process_shard_batch(worker, &mut engine, jobs, &cfg, &shared);
        }));
        if let Err(panic) = outcome {
            // The engine may be in an inconsistent state — let the
            // worker die (the scheduler answers its future batches with
            // "worker is gone") — but first give back the admission
            // slots of the jobs this batch never answered, so queue
            // capacity is not permanently shrunk. Their clients see a
            // timeout rather than a reply.
            let answered = shared.answered.load(Ordering::Relaxed) - answered_before;
            let leaked = batch_len.saturating_sub(answered);
            if leaked > 0 {
                shared
                    .in_flight
                    .fetch_sub(leaked as usize, Ordering::AcqRel);
            }
            std::panic::resume_unwind(panic);
        }
        let b = engine.macs_breakdown();
        shared.worker_macs[worker][0].store(b.propagation, Ordering::Relaxed);
        shared.worker_macs[worker][1].store(b.nap, Ordering::Relaxed);
        shared.worker_macs[worker][2].store(b.classification, Ordering::Relaxed);
        // The service keeps its own (queue-inclusive) latency samples;
        // drop the engine's internal per-flush copy so a long-lived
        // worker does not accumulate a second unbounded sample vector.
        engine.reset_stats();
    }
}

/// Executes one shard's slice of a batch in arrival order, coalescing
/// runs of same-kind operations: consecutive `infer`s become one
/// active-set engine call (per-node results are batch-composition
/// independent), consecutive `ingest`s are appended together and
/// answered by one flush (each arrival sees every earlier arrival of
/// the run, exactly like `ingest…ingest→flush` on a single-threaded
/// engine).
fn process_shard_batch(
    worker: usize,
    engine: &mut StreamingEngine,
    jobs: Vec<RoutedJob>,
    cfg: &InferenceConfig,
    shared: &Shared,
) {
    let mut i = 0;
    while i < jobs.len() {
        match &jobs[i].op {
            Op::Infer { .. } => {
                let mut j = i;
                while j < jobs.len() && matches!(jobs[j].op, Op::Infer { .. }) {
                    j += 1;
                }
                infer_run(worker, engine, &jobs[i..j], cfg, shared);
                i = j;
            }
            Op::Ingest { .. } => {
                let mut j = i;
                while j < jobs.len() && matches!(jobs[j].op, Op::Ingest { .. }) {
                    j += 1;
                }
                ingest_run(worker, engine, &jobs[i..j], cfg, shared);
                i = j;
            }
            Op::ObserveEdge { u, v } => {
                let (u, v) = (*u, *v);
                let n = engine.graph().num_nodes() as u32;
                let reply = if u == v {
                    Reply::Error {
                        message: format!("self-loop edge ({u},{u}) is not representable"),
                    }
                } else if u >= n || v >= n {
                    Reply::Error {
                        message: format!("edge ({u},{v}) out of range (shard has {n} nodes)"),
                    }
                } else {
                    Reply::Edge {
                        shard: worker,
                        added: engine.observe_edge(u, v),
                    }
                };
                shared.respond(worker, &jobs[i], reply);
                i += 1;
            }
        }
    }
}

fn infer_run(
    worker: usize,
    engine: &mut StreamingEngine,
    jobs: &[RoutedJob],
    cfg: &InferenceConfig,
    shared: &Shared,
) {
    let n = engine.graph().num_nodes() as u32;
    // Validate per job; only valid jobs contribute nodes to the engine
    // call. `spans` keeps (job index, node count) to slice results back.
    let mut nodes: Vec<u32> = Vec::new();
    let mut spans: Vec<(usize, usize)> = Vec::new();
    let mut invalid: Vec<(usize, String)> = Vec::new();
    for (idx, job) in jobs.iter().enumerate() {
        let Op::Infer { nodes: req } = &job.op else {
            unreachable!("infer run contains only infer jobs");
        };
        match req.iter().find(|&&v| v >= n) {
            Some(&bad) => invalid.push((
                idx,
                format!("node {bad} out of range (shard has {n} nodes)"),
            )),
            None => {
                spans.push((idx, req.len()));
                nodes.extend_from_slice(req);
            }
        }
    }
    let results = engine.infer_nodes(&nodes, cfg);
    let mut offset = 0;
    for (idx, len) in spans {
        let Op::Infer { nodes: req } = &jobs[idx].op else {
            unreachable!();
        };
        let slice = &results[offset..offset + len];
        offset += len;
        let reply = Reply::Infer {
            shard: worker,
            results: req
                .iter()
                .zip(slice)
                .map(|(&node, &(prediction, depth))| NodeResult {
                    node,
                    prediction,
                    depth,
                })
                .collect(),
        };
        shared.respond(worker, &jobs[idx], reply);
    }
    for (idx, message) in invalid {
        shared.respond(worker, &jobs[idx], Reply::Error { message });
    }
}

fn ingest_run(
    worker: usize,
    engine: &mut StreamingEngine,
    jobs: &[RoutedJob],
    cfg: &InferenceConfig,
    shared: &Shared,
) {
    let feature_dim = engine.graph().feature_dim();
    // Sequential validation: each arrival may attach to nodes ingested
    // earlier in the same run.
    let mut admitted: Vec<usize> = Vec::with_capacity(jobs.len());
    let mut invalid: Vec<(usize, String)> = Vec::new();
    for (idx, job) in jobs.iter().enumerate() {
        let Op::Ingest {
            features,
            neighbors,
        } = &job.op
        else {
            unreachable!("ingest run contains only ingest jobs");
        };
        let n = engine.graph().num_nodes() as u32;
        if features.len() != feature_dim {
            invalid.push((
                idx,
                format!(
                    "feature length {} does not match graph dimension {feature_dim}",
                    features.len()
                ),
            ));
        } else if features.iter().any(|x| !x.is_finite()) {
            // One inf/NaN feature would poison the shard's shared
            // incremental stationary accumulators for every later
            // request — reject it at the door.
            invalid.push((idx, "features must be finite".to_string()));
        } else if let Some(&bad) = neighbors.iter().find(|&&v| v >= n) {
            invalid.push((
                idx,
                format!("neighbor {bad} out of range (shard has {n} nodes)"),
            ));
        } else {
            engine.ingest(features, neighbors);
            admitted.push(idx);
        }
    }
    let predictions = engine.flush(cfg);
    debug_assert_eq!(predictions.len(), admitted.len());
    for (p, idx) in predictions.iter().zip(admitted) {
        shared.respond(
            worker,
            &jobs[idx],
            Reply::Ingest {
                shard: worker,
                node: p.node,
                prediction: p.prediction,
                depth: p.depth,
            },
        );
    }
    for (idx, message) in invalid {
        shared.respond(worker, &jobs[idx], Reply::Error { message });
    }
}
