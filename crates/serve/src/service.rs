//! The in-process serving engine: admission control → dynamic
//! micro-batcher → replicated shard worker pool.
//!
//! ```text
//!             submit()                 scheduler thread              worker threads
//! clients ──[admission: in-flight ≤ queue_cap]──▶ bounded MPSC ──▶ forming batch
//!                │ Overloaded                          │  closes on max_batch
//!                ▼                                     │  or max_wait deadline
//!            rejected                                  ▼
//!                              stamp mutations with seq, validate once,
//!                              broadcast them to every worker; route
//!                              reads (hint or round-robin)
//!                                                      │
//!                                        ┌─────────────┼─────────────┐
//!                                        ▼             ▼             ▼
//!                                    worker 0      worker 1  …   worker N−1
//!                                 apply mutation  apply mutation  apply mutation
//!                                 prefix in seq   prefix in seq   prefix in seq
//!                                 order, then     order, then     order, then
//!                                 serve reads     serve reads     serve reads
//! ```
//!
//! **Batching** is the paper's Fig. 5 trade-off as a runtime policy: a
//! forming batch closes when it holds `max_batch` requests *or* its
//! oldest request has waited `max_wait` — larger/longer batches amortize
//! the per-batch stationary and BFS work, at the cost of queueing
//! latency. The batcher is also *work-conserving*: when the intake
//! channel is empty and every admitted request is already aboard the
//! forming batch, no further arrival can possibly join before
//! dispatch, so the batch closes immediately (`CloseReason::Idle`)
//! instead of sleeping out the rest of the `max_wait` window.
//!
//! **Sequenced mutation replication**: each worker owns one
//! [`StreamingEngine`] replica (same checkpoint, private graph +
//! scratch). The scheduler stamps every mutation (ingest /
//! observe_edge) with a monotonic sequence number, validates it once
//! against its sequenced model of the global graph, and broadcasts it
//! to *every* worker; exactly one replica — the affinity hint, or
//! round-robin — holds the client's reply handle and pays for the
//! prediction. A worker applies its batch's mutation prefix in
//! sequence order *before* executing its slice of reads, and worker
//! channels are FIFO, so every replica converges on the same graph and
//! any replica can serve any node: read-your-writes holds at batch
//! granularity with no client routing contract.
//!
//! **Admission / shedding**: at most `queue_cap` requests may be in
//! flight (queued or being served); beyond that, [`ServeError::Overloaded`]
//! is returned immediately — never a hang. Before that hard wall, the
//! [`nai_core::config::LoadShedPolicy`] caps the NAP depth budget of
//! batches dispatched under queue pressure, trading accuracy for drain
//! rate (the accuracy↔latency dial driven by load).
//!
//! **Prediction cache** (opt-in via `ServeConfig::cache`): `submit`
//! consults a sequence-versioned [`PredictionCache`](crate::cache::PredictionCache) before admission —
//! a read whose nodes are all cached is answered on the caller's
//! thread, skipping the queue, the batching wait, and the replica
//! entirely. The scheduler keeps its own [`DynamicGraph`] mirror of the
//! replicated graph and, at the moment it sequences a mutation,
//! invalidates the mutation's dirty frontier (fixed-depth mode) or
//! flushes everything (globally-dependent NAP modes, or a walk past its
//! budget) *before* advancing the cache's sequence point — so workers'
//! later inserts are version-guarded against the mutation, and a hit is
//! bit-identical to a cache-bypass run at the same sequence point.
//! Results computed under a degraded (load-shed) depth budget are never
//! inserted.

use crate::admission::AdmissionLedger;
use crate::cache::{Invalidation, VersionedCache};
use crate::obs::ServeObs;
use crate::proto::{NodeResult, Op, Reply, Request};
use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::mpsc::{
    self, Receiver, RecvTimeoutError, Sender, SyncSender, TryRecvError, TrySendError,
};
use crate::sync::thread::{self, JoinHandle};
use crate::sync::time::Instant;
use crate::sync::{lock_recover, Arc, Mutex};
use nai_core::checkpoint::ModelCheckpoint;
use nai_core::config::{InferenceConfig, NapMode, ServeConfig};
use nai_obs::{
    CloseReason, HistogramSnapshot, Stage, StageBreakdown, TraceRecord, STAGE_COUNT, TRACE_NODE_CAP,
};
use nai_stream::{DynamicGraph, MacsBreakdown, StageTimes, StreamingEngine};
use std::time::Duration;

/// A `Duration` as whole nanoseconds, saturating at `u64::MAX` (585
/// years — no real span gets near it).
fn dur_ns(d: Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

/// Service-level failures surfaced to the transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The admission bound (`queue_cap`) is full; retry later.
    Overloaded,
    /// The service is shutting down; no new work is accepted.
    ShuttingDown,
    /// The worker did not answer within the wait deadline.
    Timeout,
    /// The request can never be served (e.g. shard hint out of range).
    Invalid(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "overloaded"),
            ServeError::ShuttingDown => write!(f, "shutting_down"),
            ServeError::Timeout => write!(f, "timeout"),
            ServeError::Invalid(m) => write!(f, "invalid request: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Static facts about a deployed service (the `/healthz` payload).
#[derive(Debug, Clone, Copy)]
pub struct ServiceInfo {
    /// Worker / shard replica count.
    pub shards: usize,
    /// Feature dimensionality every ingest must match.
    pub feature_dim: usize,
    /// Highest trained depth.
    pub k: usize,
    /// Node count of the seed graph every replica started from. Ids at
    /// or above this are assigned by sequenced ingests and — because
    /// every mutation is replicated everywhere — are equally valid on
    /// every replica.
    pub seed_nodes: usize,
}

/// A point-in-time view of the service counters (the `/metrics`
/// payload). Latency, depth, stage, and batch-size distributions are
/// [`HistogramSnapshot`]s of the service-wide lock-free histograms
/// (every worker records into the same ones — nothing to merge); MACs
/// use a replication-aware merge (see [`MetricsSnapshot::macs`]).
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Requests currently queued or being served.
    pub queue_depth: usize,
    /// Submissions rejected at the admission bound.
    pub overloaded: u64,
    /// Batches dispatched so far.
    pub batches: u64,
    /// Batches dispatched with a degraded (load-shed) depth budget.
    pub degraded_batches: u64,
    /// Requests dispatched inside degraded batches (counted per
    /// request at dispatch time, whatever its kind or node count).
    pub shed_ops: u64,
    /// Edge mutations answered (sequenced once each, whatever the
    /// replica count).
    pub edges_observed: u64,
    /// Per-op validation failures answered.
    pub op_errors: u64,
    /// Predictions answered since the service started (one per node
    /// for `infer`, one per `ingest`), cache hits included.
    pub served: u64,
    /// Reads answered entirely from the prediction cache (request
    /// granularity). 0 when the cache is disabled.
    pub cache_hits: u64,
    /// Reads that consulted the cache and fell through to a replica.
    pub cache_misses: u64,
    /// Cache entries dropped under capacity (LRU) pressure.
    pub cache_evicted: u64,
    /// Cache entries dropped by mutation invalidation (frontier walks
    /// and conservative full flushes combined).
    pub cache_invalidated: u64,
    /// Enqueue→reply latency in nanoseconds, one sample per prediction
    /// (cache hits included) — all-time, fixed footprint, quantiles
    /// within `nai_obs::RELATIVE_ERROR`.
    pub latency: HistogramSnapshot,
    /// NAP exit depths, one sample per prediction. Depths are tiny, so
    /// `exact_small_counts` is the exact histogram.
    pub depths: HistogramSnapshot,
    /// Per-stage span histograms in nanoseconds, indexed by
    /// [`Stage::index`]: one sample per stage per answered request
    /// (request granularity — a multi-node read contributes once).
    pub stages: [HistogramSnapshot; STAGE_COUNT],
    /// Requests per dispatched batch.
    pub batch_sizes: HistogramSnapshot,
    /// Batches closed because the forming batch reached `max_batch`.
    pub closed_on_max_batch: u64,
    /// Batches closed by the `max_wait` deadline while other admitted
    /// requests were still in transit toward them.
    pub closed_on_deadline: u64,
    /// Batches closed work-conservingly: every admitted request was
    /// already aboard the forming batch, so waiting out the deadline
    /// could only have added latency.
    pub closed_on_idle: u64,
    /// Partial batches drained by shutdown — a teardown artifact,
    /// counted apart so the deadline counter describes batching policy
    /// only.
    pub closed_on_shutdown: u64,
    /// Cumulative per-stage MACs. Inference stages (propagation / NAP /
    /// classification) are summed over replicas — each read or
    /// prediction runs on exactly one. The `replication` stage is the
    /// **max** over replicas, not the sum: every replica applies the
    /// same sequenced mutations, so summing would bill one mutation
    /// `shards` times. Totals are therefore shard-count independent.
    pub macs: MacsBreakdown,
}

impl MetricsSnapshot {
    /// Predictions per second of busy (enqueue→reply) time — the same
    /// ratio the old exact accumulator reported, now derived from the
    /// latency histogram's exact count and sum.
    pub fn throughput(&self) -> f64 {
        let secs = self.latency.sum() as f64 * 1e-9;
        if secs == 0.0 {
            return 0.0;
        }
        self.latency.count() as f64 / secs
    }

    /// Mean NAP exit depth over every answered prediction.
    pub fn mean_depth(&self) -> f64 {
        self.depths.mean()
    }
}

/// The reply mailbox of an event-driven transport: workers push
/// `(token, reply)` pairs and fire `notify` on the empty→non-empty
/// edge; the reactor drains the mailbox on its next loop turn. One
/// queue serves every connection of a reactor — the token (issued by
/// the reactor at submit time) names the response slot the reply
/// fills, so no per-request channel is ever allocated and the reactor
/// is woken instead of parked.
pub struct CompletionQueue {
    replies: Mutex<Vec<(u64, Reply)>>,
    /// Fired outside the lock when a push found the mailbox empty —
    /// exactly the moments the reactor may be parked in its readiness
    /// wait with nothing left to drain. The reactor installs a closure
    /// that writes one byte to its wake pipe.
    notify: Box<dyn Fn() + Send + Sync>,
}

impl CompletionQueue {
    /// A mailbox whose empty→non-empty transitions fire `notify`.
    pub fn new(notify: Box<dyn Fn() + Send + Sync>) -> Self {
        CompletionQueue {
            replies: Mutex::new(Vec::new()),
            notify,
        }
    }

    /// Delivers one reply. `notify` fires iff the mailbox was empty: a
    /// drain concurrent with this push either runs after it under the
    /// lock (and collects the entry), or emptied the mailbox before it
    /// (making this push the empty→non-empty edge, which notifies) —
    /// either way no reply is ever stranded without a wake.
    pub fn push(&self, token: u64, reply: Reply) {
        let was_empty = {
            let mut q = lock_recover(&self.replies);
            let was_empty = q.is_empty();
            q.push((token, reply));
            was_empty
        };
        if was_empty {
            (self.notify)();
        }
    }

    /// Takes every queued `(token, reply)` pair, oldest first.
    pub fn drain(&self) -> Vec<(u64, Reply)> {
        std::mem::take(&mut *lock_recover(&self.replies))
    }
}

/// Where a reply lands: a per-request channel (the blocking
/// [`Ticket`] path) or a shared [`CompletionQueue`] keyed by token
/// (the event-driven transport path).
enum ReplySink {
    Channel(Sender<Reply>),
    Completion {
        queue: Arc<CompletionQueue>,
        token: u64,
    },
}

impl ReplySink {
    fn deliver(&self, reply: Reply) {
        match self {
            // A dropped receiver (client timed out or disconnected) is
            // not an error: the reply is simply discarded.
            ReplySink::Channel(tx) => drop(tx.send(reply)),
            ReplySink::Completion { queue, token } => queue.push(*token, reply),
        }
    }
}

/// The admission slot + reply sink of one accepted request; exactly
/// one party (a worker, or the scheduler for never-dispatched jobs)
/// answers it, releasing the slot.
struct ReplyHandle {
    responder: ReplySink,
    /// Trace id issued at admission; keys the flight-recorder entry.
    trace_id: u64,
    /// Transport parse span (ns): request bytes read off the socket →
    /// op submitted for admission. Zero for in-process callers, which
    /// skip the transport. Added to the reported end-to-end latency so
    /// the stage spans keep tiling it.
    parse_ns: u64,
    enqueued: Instant,
    /// When the scheduler popped the job off the request channel
    /// (initialized to `enqueued`; the pop overwrites it). The
    /// enqueued→dequeued span is the `queue_wait` stage.
    dequeued: Instant,
}

struct Job {
    op: Op,
    /// Replica affinity hint (validated < shards at submit).
    shard: Option<usize>,
    handle: ReplyHandle,
}

/// A read routed to one replica.
struct ReadJob {
    op: Op,
    handle: ReplyHandle,
}

/// One sequenced mutation, broadcast to every live worker. The op is
/// shared (ingest feature rows are not cloned per replica); `handle`
/// is present on exactly one worker's copy — that replica answers the
/// client (and, for ingests, computes the prediction).
struct SeqMutation {
    seq: u64,
    op: Arc<Op>,
    handle: Option<ReplyHandle>,
}

struct ShardBatch {
    /// This batch's full mutation prefix, in sequence order.
    mutations: Vec<SeqMutation>,
    /// This worker's slice of reads, executed after the prefix.
    reads: Vec<ReadJob>,
    cfg: InferenceConfig,
    /// Dispatched under a load-shed (capped-depth) budget: results are
    /// honest answers but must never be cached as full-depth ones.
    degraded: bool,
    /// Requests in the dispatch this slice came from (the whole formed
    /// batch, not just this worker's share) — reported in traces.
    size: u32,
    /// Why the batcher closed the dispatch this slice came from.
    close: CloseReason,
}

impl ShardBatch {
    /// Jobs *this* worker must answer (its reply handles).
    fn owned_jobs(&self) -> u64 {
        self.reads.len() as u64
            + self.mutations.iter().filter(|m| m.handle.is_some()).count() as u64
    }
}

/// The timing context of one engine call, shared by every reply it
/// answers: the engine-stage spans are whole-call times attributed to
/// every batch member (each member really does wait for the coalesced
/// call), and the start/end instants bound the `batch_wait` and
/// `serialize` stages.
struct BatchTiming {
    /// Just before the engine call.
    engine_start: Instant,
    /// Just after the engine call returned.
    engine_end: Instant,
    /// The engine's cumulative stage-time delta across the call.
    engine: StageTimes,
    /// Requests in the dispatch (whole formed batch).
    batch_size: u32,
    /// Why the batcher closed the dispatch.
    close: CloseReason,
}

/// One worker's cumulative per-stage MACs, published as a single
/// consistent snapshot after each batch.
///
/// This replaced a `[AtomicU64; 4]` published with four independent
/// `Relaxed` stores: the model checker exhibits a `/metrics` scrape
/// landing between two of those stores and reporting a breakdown that
/// mixes two batches' totals — per-stage numbers that never coexisted
/// on the worker (`tests/model.rs::macs_tear_*` pins the failing
/// schedule). A mutex makes the 4-field publish indivisible; the lock
/// is uncontended outside scrapes and taken once per *batch*, so it
/// costs nothing on the request path.
pub struct MacsCell(Mutex<MacsBreakdown>);

impl MacsCell {
    /// A zeroed breakdown.
    pub fn new() -> Self {
        Self(Mutex::new(MacsBreakdown::default()))
    }

    /// Overwrites the published breakdown with the engine's current
    /// cumulative totals, atomically across all four stages.
    pub fn publish(&self, b: &MacsBreakdown) {
        *lock_recover(&self.0) = *b;
    }

    /// The last published breakdown (poison-recovering: the breakdown
    /// is copied in whole by `publish`, so even a poisoned cell holds
    /// a consistent snapshot).
    pub fn snapshot(&self) -> MacsBreakdown {
        *lock_recover(&self.0)
    }
}

impl Default for MacsCell {
    fn default() -> Self {
        Self::new()
    }
}

struct Shared {
    /// In-flight slot accounting, per-party reply counters, and worker
    /// dead flags — the state whose interplay the model tests check.
    admission: AdmissionLedger,
    overloaded: AtomicU64,
    batches: AtomicU64,
    degraded_batches: AtomicU64,
    shed_ops: AtomicU64,
    edges_observed: AtomicU64,
    op_errors: AtomicU64,
    served: AtomicU64,
    /// Request-lifecycle observability: latency / depth / stage / batch
    /// histograms (lock-free — every party records into the same ones)
    /// and the slow-request flight recorder.
    obs: ServeObs,
    /// `None` unless `ServeConfig::cache.enabled`. Locked briefly by
    /// the submit path (lookup / miss counting), the scheduler
    /// (invalidation + sequence advance), and workers (inserts).
    cache: Option<VersionedCache>,
    /// Per-worker MACs breakdown, overwritten after each batch from
    /// the engine's own totals — atomically, so scrapes never tear.
    worker_macs: Vec<MacsCell>,
    /// Engine replicas handed back by workers at drain time (see
    /// [`NaiService::into_engines`]); a panicked worker's replica is
    /// absent.
    returned: Mutex<Vec<(usize, StreamingEngine)>>,
}

impl Shared {
    fn respond(&self, who: usize, handle: &ReplyHandle, reply: Reply) {
        match &reply {
            // Relaxed on the counters below: each is a monotone count
            // read only by `/metrics` snapshots, with no cross-counter
            // invariant a scrape could see torn; publication to the
            // answered client is ordered by the reply-channel send.
            Reply::Infer { results, .. } => {
                self.served
                    .fetch_add(results.len() as u64, Ordering::Relaxed); // monotone, scrape-only
            }
            Reply::Ingest { .. } => {
                self.served.fetch_add(1, Ordering::Relaxed); // monotone, scrape-only
            }
            Reply::Edge { .. } => {
                self.edges_observed.fetch_add(1, Ordering::Relaxed); // monotone, scrape-only
            }
            Reply::Error { .. } => {
                self.op_errors.fetch_add(1, Ordering::Relaxed); // monotone, scrape-only
            }
        }
        // Free the admission slot *before* the reply is visible, so a
        // client that has its answer can immediately resubmit without
        // racing the counter (and `queue_depth` reads 0 once every
        // reply of a closed loop has been received).
        self.admission.note_answered(who);
        handle.responder.deliver(reply);
    }

    /// [`Self::respond`] for replies that carry predictions: stamps the
    /// request's full stage timeline into the histograms and the flight
    /// recorder first. Only `Infer` and `Ingest` replies come through
    /// here; error and edge paths answer via plain `respond` (no
    /// latency sample — same as the exact accumulator recorded).
    fn respond_traced(&self, who: usize, handle: &ReplyHandle, reply: Reply, timing: &BatchTiming) {
        // One clock read covers the whole accounting: total latency and
        // the serialize span end at the same instant, so the stage sum
        // tiles the measured total (up to the engine's interior glue).
        let now = Instant::now();
        let total_ns = handle.parse_ns + dur_ns(now.saturating_duration_since(handle.enqueued));
        let mut stages = StageBreakdown::default();
        stages.set(Stage::Parse, handle.parse_ns);
        stages.set(
            Stage::QueueWait,
            dur_ns(handle.dequeued.saturating_duration_since(handle.enqueued)),
        );
        stages.set(
            Stage::BatchWait,
            dur_ns(
                timing
                    .engine_start
                    .saturating_duration_since(handle.dequeued),
            ),
        );
        stages.set(Stage::EnginePropagation, dur_ns(timing.engine.propagation));
        stages.set(Stage::EngineNap, dur_ns(timing.engine.nap));
        stages.set(Stage::EngineClassify, dur_ns(timing.engine.classification));
        stages.set(
            Stage::Serialize,
            dur_ns(now.saturating_duration_since(timing.engine_end)),
        );
        let (applied_seq, nodes, depths) = match &reply {
            Reply::Infer {
                applied_seq,
                results,
                ..
            } => {
                for r in results {
                    self.obs.note_prediction(total_ns, r.depth as u64);
                }
                (
                    *applied_seq,
                    results
                        .iter()
                        .take(TRACE_NODE_CAP)
                        .map(|r| r.node)
                        .collect(),
                    results
                        .iter()
                        .take(TRACE_NODE_CAP)
                        .map(|r| r.depth as u32)
                        .collect(),
                )
            }
            Reply::Ingest {
                applied_seq,
                node,
                depth,
                ..
            } => {
                self.obs.note_prediction(total_ns, *depth as u64);
                (*applied_seq, vec![*node], vec![*depth as u32])
            }
            _ => unreachable!("only prediction replies are traced"),
        };
        self.obs.note_request(
            &stages,
            TraceRecord {
                trace_id: handle.trace_id,
                total_ns,
                stages,
                nodes,
                depths,
                cache_hit: false,
                applied_seq,
                batch_size: timing.batch_size,
                close_reason: timing.close.as_str(),
            },
        );
        self.respond(who, handle, reply);
    }

    /// Merged counters, latency statistics, and MACs — the `/metrics`
    /// body, on `Shared` so observability needs no service handle (and
    /// the poison unit tests can drive a bare `Shared`). Every lock on
    /// this path recovers from poison: one dead worker must not take
    /// monitoring down.
    fn snapshot(&self) -> MetricsSnapshot {
        let mut macs = MacsBreakdown::default();
        for m in &self.worker_macs {
            let b = m.snapshot();
            // Inference runs on exactly one replica per request: sum.
            macs.propagation += b.propagation;
            macs.nap += b.nap;
            macs.classification += b.classification;
            // Replicated mutations run on *every* replica: attribute
            // the work once (max = the most caught-up replica), so
            // totals do not scale with the shard count.
            macs.replication = macs.replication.max(b.replication);
        }
        let cache = self
            .cache
            .as_ref()
            .map(|c| c.counters())
            .unwrap_or_default();
        MetricsSnapshot {
            queue_depth: self.admission.in_flight(),
            // Relaxed loads: monotone counters with no cross-counter
            // invariant — a scrape is a statistical sample, not a
            // linearization point.
            overloaded: self.overloaded.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            degraded_batches: self.degraded_batches.load(Ordering::Relaxed),
            shed_ops: self.shed_ops.load(Ordering::Relaxed),
            edges_observed: self.edges_observed.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            op_errors: self.op_errors.load(Ordering::Relaxed),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evicted: cache.evicted,
            cache_invalidated: cache.invalidated,
            latency: self.obs.latency(),
            depths: self.obs.depths(),
            stages: self.obs.stages(),
            batch_sizes: self.obs.batch_sizes(),
            closed_on_max_batch: self.obs.closed_on_max_batch(),
            closed_on_deadline: self.obs.closed_on_deadline(),
            closed_on_idle: self.obs.closed_on_idle(),
            closed_on_shutdown: self.obs.closed_on_shutdown(),
            macs,
        }
    }

    /// Takes the engines drained workers handed back, in worker order
    /// (poison-recovering: a replica pushed before another worker's
    /// panic is still recoverable).
    fn take_returned(&self) -> Vec<StreamingEngine> {
        let mut replicas = std::mem::take(&mut *lock_recover(&self.returned));
        replicas.sort_by_key(|(w, _)| *w);
        replicas.into_iter().map(|(_, e)| e).collect()
    }
}

/// A pending answer; `wait` blocks until the worker responds.
pub struct Ticket {
    rx: Receiver<Reply>,
}

impl Ticket {
    /// Blocks for the reply up to `timeout`.
    ///
    /// # Errors
    /// [`ServeError::Timeout`] if no reply arrives in time (the request
    /// may still complete server-side; a timed-out *mutation* may in
    /// particular still have been applied — its reply is discarded, not
    /// its sequence point).
    pub fn wait(self, timeout: Duration) -> Result<Reply, ServeError> {
        self.rx
            .recv_timeout(timeout)
            .map_err(|_| ServeError::Timeout)
    }
}

/// The outcome of [`NaiService::submit_completion`].
#[derive(Debug)]
pub enum Submitted {
    /// Admitted: the reply will arrive on the completion queue under
    /// the submitted token.
    Pending,
    /// Answered inline from the prediction cache — nothing was queued
    /// and nothing will land on the completion queue.
    Done(Reply),
}

/// The online inference service (transport-agnostic; see
/// [`crate::http`] for the TCP front end).
pub struct NaiService {
    tx: Mutex<Option<SyncSender<Job>>>,
    shared: Arc<Shared>,
    info: ServiceInfo,
    cfg: ServeConfig,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl NaiService {
    /// Deploys the service over pre-built engine replicas. Every
    /// replica must start from the same state (same seed graph and
    /// checkpoint) — sequenced replication keeps them convergent from
    /// there on.
    ///
    /// # Errors
    /// Returns a description when `cfg` fails validation, the replica
    /// count disagrees with `cfg.workers`, or `infer_cfg` is invalid
    /// for the engines' trained depth.
    pub fn new(
        engines: Vec<StreamingEngine>,
        infer_cfg: InferenceConfig,
        cfg: ServeConfig,
    ) -> Result<Self, String> {
        cfg.validate()?;
        if engines.len() != cfg.workers {
            return Err(format!(
                "cfg.workers = {} but {} engine shards supplied",
                cfg.workers,
                engines.len()
            ));
        }
        let k = engines[0].k();
        infer_cfg.validate(k)?;
        let feature_dim = engines[0].graph().feature_dim();
        let seed_nodes = engines[0].graph().num_nodes();
        for e in &engines {
            if e.k() != k || e.graph().feature_dim() != feature_dim {
                return Err("engine shards must share k and feature_dim".to_string());
            }
            if e.graph().num_nodes() != seed_nodes {
                return Err("engine shards must start from the same seed graph".to_string());
            }
        }
        let info = ServiceInfo {
            shards: cfg.workers,
            feature_dim,
            k,
            seed_nodes,
        };
        let shared = Arc::new(Shared {
            admission: AdmissionLedger::new(cfg.queue_cap, cfg.workers),
            overloaded: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            degraded_batches: AtomicU64::new(0),
            shed_ops: AtomicU64::new(0),
            edges_observed: AtomicU64::new(0),
            op_errors: AtomicU64::new(0),
            served: AtomicU64::new(0),
            obs: ServeObs::new(),
            cache: cfg
                .cache
                .enabled
                .then(|| VersionedCache::new(cfg.cache.cap)),
            worker_macs: (0..cfg.workers).map(|_| MacsCell::new()).collect(),
            returned: Mutex::new(Vec::new()),
        });

        // The scheduler's invalidation mirror must be cloned before the
        // engines move into their worker threads.
        let invalidator = cfg.cache.enabled.then(|| CacheInvalidator {
            mirror: engines[0].graph().clone(),
            // Only fixed-depth propagation is a purely local function
            // of the t_max-hop neighborhood; distance/gate/upper-bound
            // NAP consult the incremental stationary state, which every
            // mutation perturbs globally — no local frontier is sound
            // there, so those modes flush on every mutation.
            local: matches!(infer_cfg.nap, NapMode::Fixed),
            radius: infer_cfg.t_max,
            budget: cfg.cache.frontier_budget,
        });

        let mut threads = Vec::with_capacity(cfg.workers + 1);
        let mut worker_txs = Vec::with_capacity(cfg.workers);
        for (w, engine) in engines.into_iter().enumerate() {
            let (wtx, wrx) = mpsc::channel::<ShardBatch>();
            worker_txs.push(wtx);
            let shared_w = Arc::clone(&shared);
            threads.push(
                thread::Builder::new()
                    .name(format!("nai-serve-worker-{w}"))
                    .spawn(move || worker_loop(w, engine, wrx, shared_w))
                    // nai-lint: allow(hot-path-panic) -- spawn fails only on
                    // OS resource exhaustion during service construction.
                    .expect("spawn worker thread"),
            );
        }

        let (tx, rx) = mpsc::sync_channel::<Job>(cfg.queue_cap);
        let shared_s = Arc::clone(&shared);
        let sched_cfg = cfg;
        threads.push(
            thread::Builder::new()
                .name("nai-serve-batcher".to_string())
                .spawn(move || {
                    Scheduler::new(
                        worker_txs,
                        infer_cfg,
                        sched_cfg,
                        shared_s,
                        info,
                        invalidator,
                    )
                    .run(rx)
                })
                // nai-lint: allow(hot-path-panic) -- spawn fails only on
                // OS resource exhaustion during service construction.
                .expect("spawn scheduler thread"),
        );

        Ok(Self {
            tx: Mutex::new(Some(tx)),
            shared,
            info,
            cfg,
            threads: Mutex::new(threads),
        })
    }

    /// Deploys over `cfg.workers` shard replicas built from one
    /// checkpoint and seed graph (λ₂ estimated once — see
    /// [`StreamingEngine::shard_replicas`]).
    ///
    /// # Errors
    /// As [`Self::new`].
    pub fn from_checkpoint(
        ckpt: &ModelCheckpoint,
        seed: &DynamicGraph,
        infer_cfg: InferenceConfig,
        cfg: ServeConfig,
    ) -> Result<Self, String> {
        cfg.validate()?;
        let engines = StreamingEngine::shard_replicas(ckpt, seed, cfg.workers);
        Self::new(engines, infer_cfg, cfg)
    }

    /// Static deployment facts.
    pub fn info(&self) -> ServiceInfo {
        self.info
    }

    /// The serving configuration this service runs under.
    pub fn config(&self) -> ServeConfig {
        self.cfg
    }

    /// Enqueues a request; returns a [`Ticket`] for the eventual reply.
    ///
    /// # Errors
    /// [`ServeError::Overloaded`] at the admission bound,
    /// [`ServeError::Invalid`] for an out-of-range shard hint,
    /// [`ServeError::ShuttingDown`] after [`Self::shutdown`] began.
    pub fn submit(&self, req: Request) -> Result<Ticket, ServeError> {
        let (rtx, rrx) = mpsc::channel();
        if let Some(reply) = self.submit_with(req, 0, ReplySink::Channel(rtx.clone()))? {
            // Cache fast path: pre-resolve the ticket.
            let _ = rtx.send(reply);
        }
        Ok(Ticket { rx: rrx })
    }

    /// Enqueues a request whose reply is delivered to an event-driven
    /// transport's [`CompletionQueue`] under `token` instead of a
    /// per-request channel. A read answered entirely from the
    /// prediction cache short-circuits: the reply comes back inline as
    /// [`Submitted::Done`] and nothing ever lands on the queue.
    ///
    /// `parse_ns` is the transport's parse span (request bytes read
    /// off the socket → this call); it is stamped as the `parse` stage
    /// and counted into the request's end-to-end latency.
    ///
    /// # Errors
    /// As [`Self::submit`].
    pub fn submit_completion(
        &self,
        req: Request,
        parse_ns: u64,
        queue: &Arc<CompletionQueue>,
        token: u64,
    ) -> Result<Submitted, ServeError> {
        let sink = ReplySink::Completion {
            queue: Arc::clone(queue),
            token,
        };
        Ok(match self.submit_with(req, parse_ns, sink)? {
            Some(reply) => Submitted::Done(reply),
            None => Submitted::Pending,
        })
    }

    /// The shared submit path. Returns `Ok(Some(reply))` when the
    /// prediction cache answered on this thread (the sink is unused),
    /// `Ok(None)` when the request was admitted and the reply will
    /// arrive through the sink.
    fn submit_with(
        &self,
        req: Request,
        parse_ns: u64,
        sink: ReplySink,
    ) -> Result<Option<Reply>, ServeError> {
        if let Some(s) = req.shard {
            if s >= self.info.shards {
                return Err(ServeError::Invalid(format!(
                    "shard hint {s} out of range (service has {} shards)",
                    self.info.shards
                )));
            }
        }
        // Prediction-cache fast path: a read whose nodes are all cached
        // is answered right here — no admission slot, no batching wait,
        // no replica work. The entries' version guard makes the answer
        // bit-identical to a dispatch at the current sequence point,
        // and `applied_seq` reports that point. Anything short of a
        // full hit is counted as a miss once the read is actually
        // enqueued (so hits + misses == reads that took this path).
        let mut cached_read = false;
        if let Some(cache) = &self.shared.cache {
            if let Op::Infer { nodes } = &req.op {
                cached_read = true;
                let begun = Instant::now();
                if let Some((applied_seq, results)) = cache.lookup(nodes) {
                    return Ok(Some(self.answer_from_cache(
                        begun,
                        parse_ns,
                        req.shard,
                        applied_seq,
                        results,
                    )));
                }
            }
        }
        // Admission: reserve an in-flight slot or reject immediately.
        if !self.shared.admission.try_admit() {
            // Relaxed: monotone rejection count, only read by scrapes.
            self.shared.overloaded.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded);
        }
        let enqueued = Instant::now();
        let job = Job {
            op: req.op,
            shard: req.shard,
            handle: ReplyHandle {
                responder: sink,
                trace_id: self.shared.obs.next_trace_id(),
                parse_ns,
                enqueued,
                dequeued: enqueued,
            },
        };
        let guard = lock_recover(&self.tx);
        let outcome = match guard.as_ref() {
            None => Err(ServeError::ShuttingDown),
            Some(tx) => match tx.try_send(job) {
                Ok(()) => Ok(None),
                // The sync_channel capacity equals queue_cap, so with the
                // admission counter reserved this is unreachable in
                // practice — kept as a typed backstop, not a panic.
                Err(TrySendError::Full(_)) => Err(ServeError::Overloaded),
                Err(TrySendError::Disconnected(_)) => Err(ServeError::ShuttingDown),
            },
        };
        drop(guard);
        match &outcome {
            Err(e) => {
                // The job never entered the queue: give its slot back.
                self.shared.admission.cancel_admit();
                if *e == ServeError::Overloaded {
                    // Relaxed: see the admission-refusal count above.
                    self.shared.overloaded.fetch_add(1, Ordering::Relaxed);
                }
            }
            Ok(_) if cached_read => {
                if let Some(cache) = &self.shared.cache {
                    cache.note_miss();
                }
            }
            Ok(_) => {}
        }
        outcome
    }

    /// Answers a fully cached read on the caller's thread: bumps
    /// `served`, records the (sub-batching) latency, depths, and trace,
    /// and returns the reply. The reply's `shard` is the caller's hint
    /// (or replica 0): no replica did any work, but the field must
    /// name a valid one.
    fn answer_from_cache(
        &self,
        begun: Instant,
        parse_ns: u64,
        hint: Option<usize>,
        applied_seq: u64,
        results: Vec<NodeResult>,
    ) -> Reply {
        let lookup_ns = dur_ns(begun.elapsed());
        let total_ns = parse_ns + lookup_ns;
        self.shared
            .served
            // Relaxed: monotone count, read only by scrapes.
            .fetch_add(results.len() as u64, Ordering::Relaxed);
        for r in &results {
            self.shared.obs.note_prediction(total_ns, r.depth as u64);
        }
        // A cache hit never queues, batches, or touches the engine: its
        // whole lifetime is transport parse + the serialize stage, and
        // its trace says so (batch_size 0 — it rode no batch).
        let mut stages = StageBreakdown::default();
        stages.set(Stage::Parse, parse_ns);
        stages.set(Stage::Serialize, lookup_ns);
        self.shared.obs.note_request(
            &stages,
            TraceRecord {
                trace_id: self.shared.obs.next_trace_id(),
                total_ns,
                stages,
                nodes: results
                    .iter()
                    .take(TRACE_NODE_CAP)
                    .map(|r| r.node)
                    .collect(),
                depths: results
                    .iter()
                    .take(TRACE_NODE_CAP)
                    .map(|r| r.depth as u32)
                    .collect(),
                cache_hit: true,
                applied_seq,
                batch_size: 0,
                close_reason: "cache_hit",
            },
        );
        Reply::Infer {
            shard: hint.unwrap_or(0),
            applied_seq,
            results,
        }
    }

    /// [`Self::submit`] + wait, with a 30 s answer deadline.
    ///
    /// # Errors
    /// As [`Self::submit`], plus [`ServeError::Timeout`].
    pub fn call(&self, req: Request) -> Result<Reply, ServeError> {
        self.submit(req)?.wait(Duration::from_secs(30))
    }

    /// Requests currently queued or executing — one atomic load, cheap
    /// enough for a liveness probe (unlike [`Self::metrics`], which
    /// merges every worker's latency samples).
    pub fn queue_depth(&self) -> usize {
        self.shared.admission.in_flight()
    }

    /// Merged counters, latency statistics, and MACs. Every lock on
    /// this path recovers from poison, so `/metrics` keeps answering
    /// after a worker panic.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.snapshot()
    }

    /// The slowest recent requests (current + previous flight-recorder
    /// windows), slowest first, with their full stage timelines — the
    /// `GET /debug/slow` payload.
    pub fn slow_traces(&self) -> Vec<TraceRecord> {
        self.shared.obs.slow_traces()
    }

    /// Stops accepting work, drains queued requests (every admitted
    /// request still gets its reply), and joins all threads.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        // Dropping the submission sender disconnects the scheduler's
        // receive loop; the scheduler dispatches its forming batch,
        // then drops the worker senders, which drains the workers.
        drop(lock_recover(&self.tx).take());
        let mut threads = lock_recover(&self.threads);
        for handle in threads.drain(..) {
            let _ = handle.join();
        }
    }

    /// [`Self::shutdown`], then hands back the drained engine replicas
    /// in worker order — the convergence oracle for tests (replicas
    /// must hold identical graphs) and the state hand-off for
    /// re-checkpointing. A replica whose worker panicked is absent.
    pub fn into_engines(self) -> Vec<StreamingEngine> {
        self.shutdown();
        self.shared.take_returned()
    }
}

impl Drop for NaiService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The scheduler's cache-invalidation state: a private mirror of the
/// replicated graph, kept in lockstep with sequenced mutations, plus
/// the dirty-frontier walk parameters.
struct CacheInvalidator {
    mirror: DynamicGraph,
    /// Whether a mutation's effect on predictions is local to its
    /// `radius`-hop neighborhood (fixed-depth propagation). All other
    /// NAP modes consult globally-perturbed stationary state and must
    /// flush the cache on every mutation.
    local: bool,
    /// Walk radius: the base (undegraded) `t_max`, the largest depth
    /// bound any cached entry can carry.
    radius: usize,
    /// Visited-node budget beyond which the walk falls back to a flush.
    budget: usize,
}

/// The batcher thread: forms batches, sequences + validates mutations,
/// broadcasts them, and routes reads.
struct Scheduler {
    /// `None` once a worker is known dead: its sender is dropped so
    /// the worker's drain loop (see [`worker_loop`]) disconnects and
    /// exits.
    worker_txs: Vec<Option<Sender<ShardBatch>>>,
    /// A worker found dead — its `Shared::dead` flag set by the panic
    /// path, or its channel disconnected — is skipped by routing and
    /// broadcast from then on; its jobs are answered with a typed
    /// error instead of leaking their admission slots.
    alive: Vec<bool>,
    workers: usize,
    base_cfg: InferenceConfig,
    cfg: ServeConfig,
    shared: Arc<Shared>,
    rr: usize,
    /// Next mutation sequence number (1-based; 0 = "seed state").
    next_seq: u64,
    /// The scheduler's model of the replicated graph's node count:
    /// seed nodes plus every valid sequenced ingest. Mutations are
    /// validated against this once, here — replicas apply them without
    /// re-checking.
    nodes: u64,
    feature_dim: usize,
    /// Present iff the prediction cache is enabled: the graph mirror
    /// and walk parameters used to invalidate at sequencing time.
    invalidator: Option<CacheInvalidator>,
}

impl Scheduler {
    fn new(
        worker_txs: Vec<Sender<ShardBatch>>,
        base_cfg: InferenceConfig,
        cfg: ServeConfig,
        shared: Arc<Shared>,
        info: ServiceInfo,
        invalidator: Option<CacheInvalidator>,
    ) -> Self {
        let workers = worker_txs.len();
        Self {
            worker_txs: worker_txs.into_iter().map(Some).collect(),
            alive: vec![true; workers],
            workers,
            base_cfg,
            cfg,
            shared,
            rr: 0,
            next_seq: 1,
            nodes: info.seed_nodes as u64,
            feature_dim: info.feature_dim,
            invalidator,
        }
    }

    /// The scheduler's slot in `Shared::answered`.
    fn self_slot(&self) -> usize {
        self.workers
    }

    /// Retires workers whose panic path raised `Shared::dead` since the
    /// last dispatch: drop their senders (disconnecting their drain
    /// loops) and take them out of routing. A batch sent before the
    /// flag was observed is answered by the worker's drain loop, so the
    /// hand-off leaks nothing.
    fn reap_dead_workers(&mut self) {
        for w in 0..self.workers {
            if self.alive[w] && self.shared.admission.is_dead(w) {
                self.alive[w] = false;
                self.worker_txs[w] = None;
            }
        }
    }

    /// Picks the answering replica: the affinity hint when it names a
    /// live worker, the next live worker round-robin otherwise; `None`
    /// when every worker is gone.
    fn route(&mut self, hint: Option<usize>) -> Option<usize> {
        if let Some(s) = hint {
            if self.alive[s] {
                return Some(s);
            }
        }
        for _ in 0..self.workers {
            let s = self.rr % self.workers;
            self.rr += 1;
            if self.alive[s] {
                return Some(s);
            }
        }
        None
    }

    /// Validates a mutation against the sequenced global graph model —
    /// once, at sequencing time, identically for every replica.
    fn validate_mutation(&self, op: &Op) -> Result<(), String> {
        let n = self.nodes;
        match op {
            Op::Ingest {
                features,
                neighbors,
            } => {
                if features.len() != self.feature_dim {
                    return Err(format!(
                        "feature length {} does not match graph dimension {}",
                        features.len(),
                        self.feature_dim
                    ));
                }
                if features.iter().any(|x| !x.is_finite()) {
                    // One inf/NaN feature would poison every replica's
                    // incremental stationary accumulators for every
                    // later request — reject it at the door.
                    return Err("features must be finite".to_string());
                }
                if let Some(&bad) = neighbors.iter().find(|&&v| v as u64 >= n) {
                    return Err(format!("neighbor {bad} out of range (graph has {n} nodes)"));
                }
                if n > u32::MAX as u64 {
                    return Err("graph is full (node ids are u32)".to_string());
                }
                Ok(())
            }
            Op::ObserveEdge { u, v } => {
                if u == v {
                    return Err(format!("self-loop edge ({u},{u}) is not representable"));
                }
                if *u as u64 >= n || *v as u64 >= n {
                    return Err(format!("edge ({u},{v}) out of range (graph has {n} nodes)"));
                }
                Ok(())
            }
            Op::Infer { .. } => unreachable!("reads are not sequenced"),
        }
    }

    /// Applies a just-sequenced mutation to the cache: mirror update,
    /// dirty-frontier eviction (or conservative flush), then the
    /// sequence-point advance — all before any worker can have applied
    /// the mutation, so the version guard on inserts is airtight.
    ///
    /// The walk runs on the *post-mutation* mirror: edge additions only
    /// shrink hop distances, so the new adjacency reaches every node
    /// whose old ≤`radius`-hop computation involved the touched region.
    fn invalidate_cache(&mut self, op: &Op, seq: u64) {
        let Some(inv) = self.invalidator.as_mut() else {
            return;
        };
        let Some(cache) = self.shared.cache.as_ref() else {
            return;
        };
        // `None` = the graph did not change (duplicate edge): nothing
        // to invalidate in any mode. Otherwise the touched nodes.
        let seeds: Option<Vec<u32>> = match op {
            Op::Ingest {
                features,
                neighbors,
            } => {
                // Already validated: ids in range, features well-formed.
                inv.mirror.add_node(features, neighbors);
                // The arrival itself cannot be cached yet; only its
                // attachment points change existing adjacency/degrees.
                Some(neighbors.clone())
            }
            Op::ObserveEdge { u, v } => inv.mirror.add_edge(*u, *v).then(|| vec![*u, *v]),
            Op::Infer { .. } => unreachable!("reads are not sequenced"),
        };
        let action = match seeds {
            // `None` = the graph did not change (duplicate edge);
            // an empty seed list = an isolated arrival under
            // fixed-depth mode, touching no existing adjacency.
            None => Invalidation::Untouched,
            Some(_) if !inv.local => Invalidation::Flush,
            Some(seeds) if seeds.is_empty() => Invalidation::Untouched,
            Some(seeds) => match inv.mirror.k_hop_frontier(&seeds, inv.radius, inv.budget) {
                Some(frontier) => Invalidation::Frontier(frontier),
                None => Invalidation::Flush,
            },
        };
        // One lock acquisition for eviction + advance: a worker insert
        // can land before or after this mutation, never in between.
        cache.sequence_mutation(seq, action);
    }

    fn dispatch(&mut self, forming: &mut Vec<Job>, close: CloseReason) {
        if forming.is_empty() {
            return;
        }
        self.reap_dead_workers();
        if !self.alive.iter().any(|&a| a) {
            // Every worker is gone: answer rather than hang or leak.
            for job in forming.drain(..) {
                self.shared.respond(
                    self.self_slot(),
                    &job.handle,
                    Reply::Error {
                        message: "no live shard workers".to_string(),
                    },
                );
            }
            return;
        }
        // Relaxed on the dispatch counters: monotone, scrape-only.
        self.shared.batches.fetch_add(1, Ordering::Relaxed);
        let size = forming.len() as u32;
        self.shared.obs.note_batch(size, close);
        let degraded = self
            .cfg
            .shed
            .engaged(self.shared.admission.in_flight(), self.cfg.queue_cap);
        let batch_cfg = if degraded {
            // Relaxed: monotone shed counter, scrape-only.
            self.shared.degraded_batches.fetch_add(1, Ordering::Relaxed);
            self.shared
                .shed_ops
                // Relaxed: monotone shed counter, scrape-only.
                .fetch_add(forming.len() as u64, Ordering::Relaxed);
            self.cfg.shed.degrade(&self.base_cfg)
        } else {
            self.base_cfg
        };

        let mut reads: Vec<Vec<ReadJob>> = (0..self.workers).map(|_| Vec::new()).collect();
        // (seq, op, answering replica, handle) in sequence order; the
        // handle is moved into exactly one worker's broadcast copy.
        let mut muts: Vec<(u64, Arc<Op>, usize, Option<ReplyHandle>)> = Vec::new();
        for job in forming.drain(..) {
            match job.op {
                Op::Infer { .. } => match self.route(job.shard) {
                    Some(s) => reads[s].push(ReadJob {
                        op: job.op,
                        handle: job.handle,
                    }),
                    None => self.respond_no_workers(&job.handle),
                },
                Op::Ingest { .. } | Op::ObserveEdge { .. } => {
                    if let Err(message) = self.validate_mutation(&job.op) {
                        self.shared.respond(
                            self.self_slot(),
                            &job.handle,
                            Reply::Error { message },
                        );
                        continue;
                    }
                    let Some(responder) = self.route(job.shard) else {
                        self.respond_no_workers(&job.handle);
                        continue;
                    };
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    if matches!(job.op, Op::Ingest { .. }) {
                        self.nodes += 1;
                    }
                    self.invalidate_cache(&job.op, seq);
                    muts.push((seq, Arc::new(job.op), responder, Some(job.handle)));
                }
            }
        }

        for (w, worker_reads) in reads.iter_mut().enumerate() {
            if !self.alive[w] {
                continue;
            }
            let mutations: Vec<SeqMutation> = muts
                .iter_mut()
                .map(|(seq, op, responder, handle)| SeqMutation {
                    seq: *seq,
                    op: Arc::clone(op),
                    handle: if *responder == w { handle.take() } else { None },
                })
                .collect();
            let batch_reads = std::mem::take(worker_reads);
            if mutations.is_empty() && batch_reads.is_empty() {
                continue;
            }
            let batch = ShardBatch {
                mutations,
                reads: batch_reads,
                cfg: batch_cfg,
                degraded,
                size,
                close,
            };
            let tx = self.worker_txs[w]
                .as_ref()
                // nai-lint: allow(hot-path-panic) -- dispatch targets only
                // workers that passed the is_dead reap just above; a reaped
                // worker's sender is the only one ever dropped.
                .expect("alive workers keep a sender");
            if let Err(dead) = tx.send(batch) {
                // Backstop for a worker that died without raising its
                // dead flag (should not happen — the panic path always
                // sets it): answer the jobs only it would have
                // answered, so their clients see a typed error instead
                // of a timeout and no admission slot leaks. Its
                // broadcast mutation copies are dropped — the replica
                // is out of rotation for good, and the surviving
                // replicas stay convergent with each other (a mutation
                // answered by a live replica may thus outlive its dead
                // responder, like a timeout).
                self.alive[w] = false;
                self.worker_txs[w] = None;
                let gone = dead.0;
                for m in gone.mutations.into_iter().filter_map(|m| m.handle) {
                    self.respond_worker_gone(w, &m);
                }
                for r in gone.reads {
                    self.respond_worker_gone(w, &r.handle);
                }
            }
        }
    }

    fn respond_no_workers(&self, handle: &ReplyHandle) {
        self.shared.respond(
            self.self_slot(),
            handle,
            Reply::Error {
                message: "no live shard workers".to_string(),
            },
        );
    }

    fn respond_worker_gone(&self, worker: usize, handle: &ReplyHandle) {
        self.shared.respond(
            self.self_slot(),
            handle,
            Reply::Error {
                message: format!("shard {worker} worker is gone"),
            },
        );
    }

    fn run(mut self, rx: Receiver<Job>) {
        let mut forming: Vec<Job> = Vec::with_capacity(self.cfg.max_batch);
        loop {
            let next = if forming.is_empty() {
                match rx.recv() {
                    Ok(job) => Some(job),
                    Err(_) => break,
                }
            } else {
                match rx.try_recv() {
                    Ok(job) => Some(job),
                    Err(TryRecvError::Disconnected) => {
                        self.dispatch(&mut forming, CloseReason::Shutdown);
                        break;
                    }
                    Err(TryRecvError::Empty) => {
                        // Work-conserving close: the channel is empty
                        // and every in-flight request is already aboard
                        // the forming batch, so nothing else can arrive
                        // before dispatch — sleeping out the rest of
                        // `max_wait` would only add latency. (Slots are
                        // reserved *before* the channel send, so an
                        // admitted-but-unsent request keeps in_flight
                        // above the batch size and we wait for it.)
                        if self.shared.admission.in_flight() <= forming.len() {
                            self.dispatch(&mut forming, CloseReason::Idle);
                            continue;
                        }
                        let deadline = forming[0].handle.enqueued + self.cfg.max_wait;
                        match deadline.checked_duration_since(Instant::now()) {
                            None => None, // oldest request's wait budget is spent
                            Some(remaining) => match rx.recv_timeout(remaining) {
                                Ok(job) => Some(job),
                                Err(RecvTimeoutError::Timeout) => None,
                                Err(RecvTimeoutError::Disconnected) => {
                                    self.dispatch(&mut forming, CloseReason::Shutdown);
                                    break;
                                }
                            },
                        }
                    }
                }
            };
            match next {
                Some(mut job) => {
                    // The queue_wait stage ends here: the job has left
                    // the request channel and joined the forming batch.
                    job.handle.dequeued = Instant::now();
                    forming.push(job);
                    if forming.len() >= self.cfg.max_batch {
                        self.dispatch(&mut forming, CloseReason::MaxBatch);
                    }
                }
                None => self.dispatch(&mut forming, CloseReason::Deadline),
            }
        }
        // Senders to workers drop here; workers drain and exit.
    }
}

fn worker_loop(
    worker: usize,
    mut engine: StreamingEngine,
    rx: Receiver<ShardBatch>,
    shared: Arc<Shared>,
) {
    // Sequence number of the last mutation applied to this replica
    // (0 = seed state); exported in replies as `applied_seq`.
    let mut applied_seq = 0u64;
    while let Ok(batch) = rx.recv() {
        let owned = batch.owned_jobs();
        let answered_before = shared.admission.answered_by(worker);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            process_shard_batch(worker, &mut engine, batch, &mut applied_seq, &shared);
        }));
        if let Err(panic) = outcome {
            // The engine may be in an inconsistent state — let the
            // worker die (the scheduler reaps it and answers its future
            // jobs with a typed error) — but first give back the
            // admission slots of the jobs this batch owned and never
            // answered, so queue capacity is not permanently shrunk.
            // The per-worker counter makes the repair exact even while
            // other workers answer their own slices of the same
            // broadcast batch. These clients see a timeout rather than
            // a reply. Repair raises the dead flag, then the drain
            // runs: batches the scheduler sends before it observes the
            // flag would otherwise be silently dropped with their
            // admission slots held — answer their owned jobs with a
            // typed error instead. The drain ends when the scheduler
            // reaps this worker (dropping its sender) or shuts down.
            shared
                .admission
                .repair_panicked(worker, owned, answered_before);
            while let Ok(stranded) = rx.recv() {
                for handle in stranded
                    .mutations
                    .into_iter()
                    .filter_map(|m| m.handle)
                    .chain(stranded.reads.into_iter().map(|r| r.handle))
                {
                    shared.respond(
                        worker,
                        &handle,
                        Reply::Error {
                            message: format!("shard {worker} worker is gone"),
                        },
                    );
                }
            }
            std::panic::resume_unwind(panic);
        }
        // One atomic publish of all four stages: a scrape sees either
        // the pre-batch or the post-batch breakdown, never a mix (the
        // old 4×`Relaxed`-store pattern tore — see `MacsCell`).
        shared.worker_macs[worker].publish(&engine.macs_breakdown());
        // The service keeps its own (queue-inclusive) latency samples;
        // drop the engine's internal per-flush copy so a long-lived
        // worker does not accumulate a second unbounded sample vector.
        engine.reset_stats();
    }
    // Drained cleanly: hand the replica back for `into_engines`.
    lock_recover(&shared.returned).push((worker, engine));
}

/// Executes one worker's view of a batch: first the batch's full
/// mutation prefix in sequence order (every replica applies every
/// mutation; ingests owned by this worker are additionally queued and
/// answered by one flush after the prefix), then this worker's slice
/// of reads — which therefore observe every mutation of this batch and
/// of all earlier batches (worker channels are FIFO), on whatever
/// replica they landed.
fn process_shard_batch(
    worker: usize,
    engine: &mut StreamingEngine,
    batch: ShardBatch,
    applied_seq: &mut u64,
    shared: &Shared,
) {
    let ShardBatch {
        mutations,
        reads,
        cfg,
        degraded,
        size,
        close,
    } = batch;
    let mut ingest_handles: Vec<ReplyHandle> = Vec::new();
    for m in mutations {
        debug_assert_eq!(
            m.seq,
            *applied_seq + 1,
            "broadcast must deliver every mutation in sequence order"
        );
        match m.op.as_ref() {
            Op::Ingest {
                features,
                neighbors,
            } => {
                if let Some(handle) = m.handle {
                    // This replica answers: queue for the post-prefix
                    // flush (pending order = sequence order).
                    engine.ingest(features, neighbors);
                    ingest_handles.push(handle);
                } else {
                    engine.apply_replicated_ingest(features, neighbors);
                }
            }
            Op::ObserveEdge { u, v } => {
                let added = engine.apply_replicated_edge(*u, *v);
                if let Some(handle) = &m.handle {
                    shared.respond(
                        worker,
                        handle,
                        Reply::Edge {
                            shard: worker,
                            applied_seq: m.seq,
                            added,
                        },
                    );
                }
            }
            Op::Infer { .. } => unreachable!("reads are never broadcast"),
        }
        *applied_seq = m.seq;
    }
    if !ingest_handles.is_empty() {
        // The engine attributes its interior to stages cumulatively;
        // the before/after delta is this flush's share, attributed
        // whole to every ingest it answers (each waited for the call).
        let stages_before = engine.stage_times();
        let engine_start = Instant::now();
        let predictions = engine.flush(&cfg);
        let engine_end = Instant::now();
        let timing = BatchTiming {
            engine_start,
            engine_end,
            engine: engine.stage_times().since(&stages_before),
            batch_size: size,
            close,
        };
        debug_assert_eq!(predictions.len(), ingest_handles.len());
        for (p, handle) in predictions.iter().zip(&ingest_handles) {
            shared.respond_traced(
                worker,
                handle,
                Reply::Ingest {
                    shard: worker,
                    applied_seq: *applied_seq,
                    node: p.node,
                    prediction: p.prediction,
                    depth: p.depth,
                },
                &timing,
            );
        }
    }
    infer_run(
        worker,
        engine,
        &reads,
        &cfg,
        *applied_seq,
        degraded,
        size,
        close,
        shared,
    );
}

/// Answers a slice of reads with one coalesced active-set engine call
/// (per-node results are batch-composition independent). Fresh results
/// populate the prediction cache — unless this batch ran under a
/// degraded (load-shed) depth budget, whose answers must never be
/// served later as full-depth ones; the cache's own version guard
/// additionally drops results that a mutation sequenced since this
/// batch was formed has already outdated.
#[allow(clippy::too_many_arguments)] // one internal call site
fn infer_run(
    worker: usize,
    engine: &mut StreamingEngine,
    jobs: &[ReadJob],
    cfg: &InferenceConfig,
    applied_seq: u64,
    degraded: bool,
    batch_size: u32,
    close: CloseReason,
    shared: &Shared,
) {
    if jobs.is_empty() {
        return;
    }
    let n = engine.graph().num_nodes() as u32;
    // Validate per job; only valid jobs contribute nodes to the engine
    // call. `spans` keeps (job index, node count) to slice results back.
    // The node bound is the *replicated* graph — reads run after this
    // batch's mutation prefix, so a just-ingested id is in range on
    // every replica.
    let mut nodes: Vec<u32> = Vec::new();
    let mut spans: Vec<(usize, usize)> = Vec::new();
    let mut invalid: Vec<(usize, String)> = Vec::new();
    for (idx, job) in jobs.iter().enumerate() {
        let Op::Infer { nodes: req } = &job.op else {
            unreachable!("read slice contains only infer jobs");
        };
        match req.iter().find(|&&v| v >= n) {
            Some(&bad) => invalid.push((
                idx,
                format!("node {bad} out of range (graph has {n} nodes)"),
            )),
            None => {
                spans.push((idx, req.len()));
                nodes.extend_from_slice(req);
            }
        }
    }
    let stages_before = engine.stage_times();
    let engine_start = Instant::now();
    let results = engine.infer_nodes(&nodes, cfg);
    let engine_end = Instant::now();
    let timing = BatchTiming {
        engine_start,
        engine_end,
        engine: engine.stage_times().since(&stages_before),
        batch_size,
        close,
    };
    if !degraded {
        if let Some(cache) = &shared.cache {
            // Stamped with the sequence point this replica computed
            // at; the cache's version guard drops any entry a mutation
            // sequenced since then has outdated.
            cache.insert_batch(
                applied_seq,
                nodes
                    .iter()
                    .zip(&results)
                    .map(|(&node, &(prediction, depth))| (node, prediction, depth)),
            );
        }
    }
    let mut offset = 0;
    for (idx, len) in spans {
        let Op::Infer { nodes: req } = &jobs[idx].op else {
            unreachable!();
        };
        let slice = &results[offset..offset + len];
        offset += len;
        let reply = Reply::Infer {
            shard: worker,
            applied_seq,
            results: req
                .iter()
                .zip(slice)
                .map(|(&node, &(prediction, depth))| NodeResult {
                    node,
                    prediction,
                    depth,
                })
                .collect(),
        };
        shared.respond_traced(worker, &jobs[idx].handle, reply, &timing);
    }
    for (idx, message) in invalid {
        shared.respond(worker, &jobs[idx].handle, Reply::Error { message });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn bare_shared(workers: usize, with_cache: bool) -> Shared {
        Shared {
            admission: AdmissionLedger::new(4, workers),
            overloaded: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            degraded_batches: AtomicU64::new(0),
            shed_ops: AtomicU64::new(0),
            edges_observed: AtomicU64::new(0),
            op_errors: AtomicU64::new(0),
            served: AtomicU64::new(0),
            obs: ServeObs::new(),
            cache: with_cache.then(|| VersionedCache::new(8)),
            worker_macs: (0..workers).map(|_| MacsCell::new()).collect(),
            returned: Mutex::new(Vec::new()),
        }
    }

    fn poison<T>(m: &Mutex<T>) {
        let r = catch_unwind(AssertUnwindSafe(|| {
            // nai-lint: allow(lock-hygiene) -- this helper poisons the lock
            // on purpose; lock_recover here would defeat the setup.
            let _g = m.lock().unwrap();
            panic!("poison the lock");
        }));
        assert!(r.is_err());
        assert!(m.is_poisoned());
    }

    /// A worker that dies mid-batch poisons its MACs cell; `/metrics`
    /// must still answer — with every histogram sample recorded before
    /// the panic — instead of panicking the scrape thread. (Latency
    /// recording itself is lock-free, so there is no stats lock left
    /// to poison.)
    #[test]
    fn metrics_scrape_survives_a_poisoned_macs_cell() {
        let shared = bare_shared(2, false);
        shared.obs.note_prediction(5_000_000, 1);
        poison(&shared.worker_macs[0].0);
        let snap = shared.snapshot();
        assert_eq!(snap.latency.count(), 1, "pre-panic samples still scraped");
        assert_eq!(snap.depths.exact_small_counts(), vec![0, 1]);
        assert_eq!(snap.queue_depth, 0);
    }

    /// `into_engines` drains `returned` through the same recovery: a
    /// replica handed back before another worker's panic poisoned the
    /// lock is not lost.
    #[test]
    fn take_returned_survives_a_poisoned_lock() {
        let shared = bare_shared(1, false);
        poison(&shared.returned);
        assert!(shared.take_returned().is_empty());
    }

    /// The whole observability path — histograms, MACs cell, and the
    /// admission counters — stays scrapeable when every recoverable
    /// lock is poisoned at once.
    #[test]
    fn snapshot_survives_every_poisoned_lock_at_once() {
        let shared = bare_shared(1, true);
        let macs = MacsBreakdown {
            propagation: 7,
            nap: 3,
            classification: 2,
            replication: 1,
        };
        shared.worker_macs[0].publish(&macs);
        poison(&shared.worker_macs[0].0);
        poison(&shared.returned);
        let snap = shared.snapshot();
        assert_eq!(snap.macs, macs);
        assert_eq!(snap.cache_hits, 0);
    }
}
