//! Admission-slot accounting for the serve core.
//!
//! [`AdmissionLedger`] owns the three pieces of state whose interplay
//! makes overload control correct: the `in_flight` slot counter
//! bounded by `queue_cap`, the per-party `answered` reply counters
//! that make a panicked worker's slot repair exact, and the per-worker
//! `dead` flags that hand a dying worker off to the scheduler. The
//! invariants — checked exhaustively by `tests/model.rs` under
//! `--cfg nai_model` — are:
//!
//! * `in_flight` never exceeds `queue_cap` and never underflows: every
//!   admitted request releases its slot exactly once, whichever party
//!   (worker, scheduler, panic repair, submit rollback) does it.
//! * After a worker panic, `repair_panicked` releases exactly the
//!   slots of the jobs the worker owned but never answered — even
//!   while other workers concurrently answer their own slices of the
//!   same broadcast batch.

use crate::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Bounded in-flight accounting: slots are acquired by [`try_admit`]
/// and released exactly once each by [`note_answered`] (the normal
/// path), [`cancel_admit`] (submit enqueue failure), or
/// [`repair_panicked`] (bulk release for a dead worker's unanswered
/// jobs).
///
/// [`try_admit`]: Self::try_admit
/// [`note_answered`]: Self::note_answered
/// [`cancel_admit`]: Self::cancel_admit
/// [`repair_panicked`]: Self::repair_panicked
pub struct AdmissionLedger {
    in_flight: AtomicUsize,
    cap: usize,
    /// Replies sent, indexed by answering party (`0..workers` = that
    /// worker, `workers` = the scheduler). Broadcast batches contain
    /// jobs a worker does *not* answer, so panic repair must count
    /// exactly the repairer's own replies — a global counter would mix
    /// in concurrent replies from other workers and under-repair.
    answered: Vec<AtomicU64>,
    /// Raised by a worker's panic path *before* it starts draining its
    /// channel; the scheduler reaps the flag at its next dispatch.
    dead: Vec<AtomicBool>,
}

impl AdmissionLedger {
    /// A ledger admitting at most `cap` in-flight requests, with reply
    /// slots for `workers` workers plus the scheduler.
    pub fn new(cap: usize, workers: usize) -> Self {
        Self {
            in_flight: AtomicUsize::new(0),
            cap,
            // One slot per worker plus the scheduler's.
            answered: (0..=workers).map(|_| AtomicU64::new(0)).collect(),
            dead: (0..workers).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// The admission bound (`ServeConfig::queue_cap`).
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The scheduler's slot index in the `answered` ledger.
    pub fn scheduler_slot(&self) -> usize {
        self.answered.len() - 1
    }

    /// Reserves an in-flight slot, or refuses at the bound. The CAS
    /// loop (not a blind `fetch_add`) is what keeps `in_flight ≤ cap`
    /// an invariant rather than an eventual correction.
    pub fn try_admit(&self) -> bool {
        self.in_flight
            // AcqRel success / Acquire failure: admission is the sync
            // point the shed policy and queue-depth probes hang off.
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |c| {
                (c < self.cap).then_some(c + 1)
            })
            .is_ok()
    }

    /// Requests currently queued or being served.
    pub fn in_flight(&self) -> usize {
        // Acquire: pairs with the AcqRel admit/release updates, so a
        // probe never reads a count older than a completed release.
        self.in_flight.load(Ordering::Acquire)
    }

    /// Releases `n` slots, refusing to underflow: a failed decrement
    /// means some slot was released twice, so the count is left
    /// untouched (capacity conservatively lost, never corrupted) and
    /// debug/model builds fail loudly.
    fn release(&self, n: usize) {
        if n == 0 {
            return;
        }
        let under = self
            .in_flight
            // AcqRel success / Acquire failure: a release must be
            // visible to the next try_admit that reuses the slot.
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |c| c.checked_sub(n))
            .is_err();
        debug_assert!(!under, "admission slot double-free: release({n})");
    }

    /// Gives back the caller's just-admitted slot when the job never
    /// made it into the queue (shutdown race, full-channel backstop).
    pub fn cancel_admit(&self) {
        self.release(1);
    }

    /// Records one reply sent by party `who` and frees its slot.
    pub fn note_answered(&self, who: usize) {
        // Relaxed: each slot has a single writer (party `who` itself);
        // the only cross-read is that party's own panic repair, on the
        // same thread. The slot release below carries the ordering.
        self.answered[who].fetch_add(1, Ordering::Relaxed);
        self.release(1);
    }

    /// Party `who`'s reply count — sampled by a worker before running
    /// a batch so its panic path can subtract.
    pub fn answered_by(&self, who: usize) -> u64 {
        // Relaxed: only ever read meaningfully by the slot's own
        // writer thread (see `note_answered`).
        self.answered[who].load(Ordering::Relaxed)
    }

    /// Panic repair for worker `who`: releases the slots of the
    /// `owned` jobs it never answered (its reply count rose from
    /// `answered_before` by the ones it did) and raises its dead flag.
    /// Returns the number of slots released. The caller must sample
    /// `answered_before` via [`Self::answered_by`] *before* running
    /// the batch, on the worker's own thread.
    pub fn repair_panicked(&self, who: usize, owned: u64, answered_before: u64) -> u64 {
        let answered = self.answered_by(who) - answered_before;
        let leaked = owned.saturating_sub(answered);
        self.release(leaked as usize);
        self.mark_dead(who);
        leaked
    }

    /// Marks worker `w` dead. Release: pairs with the scheduler's
    /// Acquire in [`Self::is_dead`] so reaping observes everything the
    /// worker did before dying.
    pub fn mark_dead(&self, w: usize) {
        // Release: pairs with is_dead's Acquire (see doc comment).
        self.dead[w].store(true, Ordering::Release);
    }

    /// Whether worker `w` has raised its dead flag.
    pub fn is_dead(&self, w: usize) -> bool {
        // Acquire: reaping observes everything the worker did first.
        self.dead[w].load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_cap_then_refuses() {
        let l = AdmissionLedger::new(2, 1);
        assert!(l.try_admit());
        assert!(l.try_admit());
        assert!(!l.try_admit(), "third admit must refuse at cap 2");
        assert_eq!(l.in_flight(), 2);
        l.note_answered(0);
        assert!(l.try_admit(), "an answer frees a slot");
    }

    #[test]
    fn repair_releases_only_unanswered_owned_jobs() {
        let l = AdmissionLedger::new(8, 2);
        for _ in 0..5 {
            assert!(l.try_admit());
        }
        let before = l.answered_by(0);
        // Worker 0 owned 3 jobs, answered 1 of them before panicking;
        // worker 1 answered 2 of its own concurrently.
        l.note_answered(0);
        l.note_answered(1);
        l.note_answered(1);
        assert_eq!(l.repair_panicked(0, 3, before), 2);
        assert_eq!(l.in_flight(), 0);
        assert!(l.is_dead(0));
        assert!(!l.is_dead(1));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double-free")]
    fn double_release_is_caught() {
        let l = AdmissionLedger::new(4, 1);
        assert!(l.try_admit());
        l.note_answered(0);
        l.note_answered(0); // same slot released twice
    }
}
