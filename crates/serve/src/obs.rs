//! Serve-side observability hub: the single sink every answered
//! request reports into and every scrape reads from.
//!
//! One [`ServeObs`] lives in the service's shared state. The request
//! path touches it with wait-free histogram records (end-to-end
//! latency, exit depth, per-stage spans, batch anatomy) plus one short
//! lock acquisition per request for the slow-request flight recorder;
//! `/metrics` and `/debug/slow` read point-in-time snapshots without
//! ever re-sorting samples or blocking a recorder.
//!
//! This replaced the per-worker `Mutex<LatencyStats>` accumulators: the
//! exact-sort `LatencyStats` stored every sample (restarting each 2^18
//! to stay bounded, forgetting history at each restart) and re-sorted
//! under its mutex on every scrape. The log-bucketed histograms record
//! lock-free, keep a fixed footprint forever, and answer quantiles
//! within `nai_obs::RELATIVE_ERROR`; `LatencyStats` remains in
//! `nai-stream` as the exact oracle for unit tests and benches.

use crate::sync::atomic::{AtomicU64, Ordering};
use nai_obs::{
    CloseReason, FlightRecorder, HistogramSnapshot, LogHistogram, Stage, StageBreakdown,
    StagePipeline, TraceRecord, STAGE_COUNT,
};

/// Slowest traces retained per flight-recorder window.
pub const SLOW_TRACES: usize = 16;

/// Requests per flight-recorder window. Sized so a loaded service
/// turns windows over every few seconds while a lightly loaded one
/// still keeps its recent history visible (the recorder also exposes
/// the previous window, so a scrape after a turnover is never empty).
pub const SLOW_WINDOW: usize = 4096;

/// Request-lifecycle observability state shared by the submit path,
/// the scheduler, and every worker.
pub struct ServeObs {
    /// End-to-end latency plus one histogram per pipeline stage (ns).
    pipeline: StagePipeline,
    /// NAP exit depths (small exact buckets — depths are tiny).
    depths: LogHistogram,
    /// Dispatched batch sizes (requests per dispatch).
    batch_sizes: LogHistogram,
    closed_on_max_batch: AtomicU64,
    closed_on_deadline: AtomicU64,
    closed_on_idle: AtomicU64,
    closed_on_shutdown: AtomicU64,
    /// The slowest requests per window, full stage timelines.
    recorder: FlightRecorder,
    /// Monotone trace-id source (ids start at 1; 0 is never issued).
    next_trace: AtomicU64,
}

impl ServeObs {
    pub fn new() -> Self {
        ServeObs {
            pipeline: StagePipeline::new(),
            depths: LogHistogram::new(),
            batch_sizes: LogHistogram::new(),
            closed_on_max_batch: AtomicU64::new(0),
            closed_on_deadline: AtomicU64::new(0),
            closed_on_idle: AtomicU64::new(0),
            closed_on_shutdown: AtomicU64::new(0),
            recorder: FlightRecorder::new(SLOW_TRACES, SLOW_WINDOW),
            next_trace: AtomicU64::new(1),
        }
    }

    /// Issues the next trace id (monotone; Relaxed — ids only need to
    /// be distinct, not ordered with any other memory).
    pub fn next_trace_id(&self) -> u64 {
        // Relaxed: ids need only be distinct, not ordered (see doc).
        self.next_trace.fetch_add(1, Ordering::Relaxed)
    }

    /// Records one dispatched batch: its size and why it closed.
    pub fn note_batch(&self, size: u32, close: CloseReason) {
        self.batch_sizes.record(size as u64);
        match close {
            // Relaxed: monotone counters read only by scrapes.
            CloseReason::MaxBatch => self.closed_on_max_batch.fetch_add(1, Ordering::Relaxed),
            CloseReason::Deadline => self.closed_on_deadline.fetch_add(1, Ordering::Relaxed),
            CloseReason::Idle => self.closed_on_idle.fetch_add(1, Ordering::Relaxed),
            CloseReason::Shutdown => self.closed_on_shutdown.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Records one answered prediction: end-to-end latency (ns) and
    /// NAP exit depth. Called once per node result, matching the
    /// `served` counter's granularity.
    pub fn note_prediction(&self, total_ns: u64, depth: u64) {
        self.pipeline.record_total(total_ns);
        self.depths.record(depth);
    }

    /// Records one answered request: its per-stage spans (one sample
    /// per stage histogram) and its trace, which the flight recorder
    /// keeps iff it is among the window's slowest.
    pub fn note_request(&self, stages: &StageBreakdown, trace: TraceRecord) {
        self.pipeline.record_stages(stages);
        self.recorder.record(trace);
    }

    /// The slowest recent requests, slowest first (`/debug/slow`).
    pub fn slow_traces(&self) -> Vec<TraceRecord> {
        self.recorder.snapshot()
    }

    /// End-to-end latency histogram (ns).
    pub fn latency(&self) -> HistogramSnapshot {
        self.pipeline.snapshot_total()
    }

    /// Exit-depth histogram.
    pub fn depths(&self) -> HistogramSnapshot {
        self.depths.snapshot()
    }

    /// Per-stage span histograms (ns), indexed by [`Stage::index`].
    pub fn stages(&self) -> [HistogramSnapshot; STAGE_COUNT] {
        Stage::ALL.map(|s| self.pipeline.snapshot_stage(s))
    }

    /// Dispatched batch-size histogram.
    pub fn batch_sizes(&self) -> HistogramSnapshot {
        self.batch_sizes.snapshot()
    }

    /// Batches closed because they reached `max_batch`.
    pub fn closed_on_max_batch(&self) -> u64 {
        // Relaxed: scrape of a monotone counter; staleness is fine.
        self.closed_on_max_batch.load(Ordering::Relaxed)
    }

    /// Batches closed by the `max_wait` deadline while other admitted
    /// requests were still in transit.
    pub fn closed_on_deadline(&self) -> u64 {
        // Relaxed: scrape of a monotone counter; staleness is fine.
        self.closed_on_deadline.load(Ordering::Relaxed)
    }

    /// Batches closed work-conservingly: every admitted request was
    /// already aboard, so waiting out `max_wait` was pointless.
    pub fn closed_on_idle(&self) -> u64 {
        // Relaxed: scrape of a monotone counter; staleness is fine.
        self.closed_on_idle.load(Ordering::Relaxed)
    }

    /// Partial batches drained by shutdown (teardown artifact, kept
    /// out of the policy counters above).
    pub fn closed_on_shutdown(&self) -> u64 {
        // Relaxed: scrape of a monotone counter; staleness is fine.
        self.closed_on_shutdown.load(Ordering::Relaxed)
    }
}

impl Default for ServeObs {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_anatomy_counters_split_by_reason() {
        let obs = ServeObs::new();
        obs.note_batch(8, CloseReason::MaxBatch);
        obs.note_batch(3, CloseReason::Deadline);
        obs.note_batch(8, CloseReason::MaxBatch);
        obs.note_batch(2, CloseReason::Idle);
        obs.note_batch(1, CloseReason::Shutdown);
        assert_eq!(obs.closed_on_max_batch(), 2);
        assert_eq!(obs.closed_on_deadline(), 1);
        assert_eq!(obs.closed_on_idle(), 1);
        assert_eq!(obs.closed_on_shutdown(), 1);
        let sizes = obs.batch_sizes();
        assert_eq!(sizes.count(), 5);
        assert_eq!(sizes.sum(), 22);
        assert_eq!(sizes.exact_small_counts()[8], 2, "exact small buckets");
    }

    #[test]
    fn trace_ids_are_distinct_and_nonzero() {
        let obs = ServeObs::new();
        let a = obs.next_trace_id();
        let b = obs.next_trace_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn predictions_and_requests_land_in_their_histograms() {
        let obs = ServeObs::new();
        let mut b = StageBreakdown::default();
        b.set(Stage::QueueWait, 100);
        b.set(Stage::Serialize, 20);
        obs.note_prediction(120, 2);
        obs.note_prediction(240, 3);
        obs.note_request(
            &b,
            TraceRecord {
                trace_id: obs.next_trace_id(),
                total_ns: 240,
                stages: b,
                nodes: vec![7],
                depths: vec![3],
                cache_hit: false,
                applied_seq: 0,
                batch_size: 2,
                close_reason: CloseReason::MaxBatch.as_str(),
            },
        );
        assert_eq!(obs.latency().count(), 2);
        assert_eq!(obs.depths().exact_small_counts(), vec![0, 0, 1, 1]);
        let stages = obs.stages();
        assert_eq!(stages[Stage::QueueWait.index()].sum(), 100);
        assert_eq!(stages[Stage::Serialize.index()].sum(), 20);
        assert_eq!(obs.slow_traces().len(), 1);
    }
}
