//! Minimal HTTP/1.1 front end over [`std::net::TcpListener`].
//!
//! Endpoints:
//!
//! | method | path        | body                         | answer |
//! |--------|-------------|------------------------------|--------|
//! | GET    | `/healthz`  | —                            | deployment facts + queue depth |
//! | GET    | `/metrics`  | —                            | [`crate::service::MetricsSnapshot`] as JSON |
//! | POST   | `/v1`       | newline-JSON requests        | newline-JSON replies, in order |
//! | POST   | `/shutdown` | —                            | ack, then the server stops accepting |
//!
//! The server speaks just enough HTTP/1.1 for `curl`, the bundled
//! [`crate::client::HttpClient`], and browsers: request line, headers,
//! `Content-Length` bodies, and keep-alive (closed on request or on
//! HTTP/1.0). One thread per connection; per-request work is bounded by
//! the service's admission control, so connection concurrency — not
//! request concurrency — is the only unbounded resource, which is fine
//! at the workloads this reproduction targets.

use crate::json::Json;
use crate::proto::{error_line, parse_request, render_reply};
use crate::service::{NaiService, ServeError, Ticket};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Upper bound on accepted request bodies (1 MiB — far above any
/// realistic micro-batch line, far below memory trouble).
const MAX_BODY: usize = 1 << 20;
/// Upper bound on one request/header line; longer lines are rejected
/// before they buffer, so a connection can hold at most
/// `MAX_HEADERS × MAX_HEADER_LINE + MAX_BODY` bytes.
const MAX_HEADER_LINE: usize = 8 << 10;
/// Upper bound on headers per request.
const MAX_HEADERS: usize = 100;
/// Per-connection socket read timeout.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

struct ServerState {
    service: Arc<NaiService>,
    addr: SocketAddr,
    stop: AtomicBool,
    active_conns: AtomicUsize,
}

impl ServerState {
    fn request_stop(&self) {
        if !self.stop.swap(true, Ordering::AcqRel) {
            // Unblock the accept loop with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
        }
    }
}

/// A running HTTP server; dropping it does *not* stop it — call
/// [`Server::shutdown`] (or POST `/shutdown`) then [`Server::join`].
pub struct Server {
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections for `service`.
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn start(service: Arc<NaiService>, addr: impl ToSocketAddrs) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let state = Arc::new(ServerState {
            service,
            addr: local,
            stop: AtomicBool::new(false),
            active_conns: AtomicUsize::new(0),
        });
        let accept_state = Arc::clone(&state);
        let accept = std::thread::Builder::new()
            .name("nai-serve-accept".to_string())
            .spawn(move || accept_loop(listener, accept_state))
            .expect("spawn accept thread");
        Ok(Server {
            state,
            accept: Some(accept),
        })
    }

    /// The bound address (the actual port when bound with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Signals the accept loop to stop (equivalent to POST `/shutdown`).
    pub fn shutdown(&self) {
        self.state.request_stop();
    }

    /// Blocks until the accept loop has stopped and in-flight
    /// connections have wound down, then shuts the service itself down
    /// (draining every admitted request).
    pub fn join(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        // Give connection threads a short grace to write their final
        // responses; they hold no service slots beyond their tickets.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while self.state.active_conns.load(Ordering::Acquire) > 0
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        self.state.service.shutdown();
    }
}

fn accept_loop(listener: TcpListener, state: Arc<ServerState>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if state.stop.load(Ordering::Acquire) {
                    break;
                }
                let conn_state = Arc::clone(&state);
                conn_state.active_conns.fetch_add(1, Ordering::AcqRel);
                let _ = std::thread::Builder::new()
                    .name("nai-serve-conn".to_string())
                    .spawn(move || {
                        let _ = handle_connection(stream, &conn_state);
                        conn_state.active_conns.fetch_sub(1, Ordering::AcqRel);
                    });
            }
            Err(_) => {
                if state.stop.load(Ordering::Acquire) {
                    break;
                }
            }
        }
    }
}

struct HttpRequest {
    method: String,
    path: String,
    http10: bool,
    close: bool,
    body: String,
}

/// `read_line` with a hard length cap: a peer streaming bytes with no
/// newline cannot grow the buffer past `MAX_HEADER_LINE`.
fn read_line_capped(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
) -> std::io::Result<usize> {
    let n = (&mut *reader)
        .take(MAX_HEADER_LINE as u64)
        .read_line(line)?;
    if n >= MAX_HEADER_LINE && !line.ends_with('\n') {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "header line too long",
        ));
    }
    Ok(n)
}

fn read_request(reader: &mut BufReader<TcpStream>) -> std::io::Result<Option<HttpRequest>> {
    let mut line = String::new();
    if read_line_capped(reader, &mut line)? == 0 {
        return Ok(None); // clean EOF between requests
    }
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_string(), p.to_string(), v.to_string()),
        _ => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "malformed request line",
            ))
        }
    };
    let http10 = version == "HTTP/1.0";
    let mut content_length = 0usize;
    let mut close = http10;
    for seen in 0.. {
        if seen > MAX_HEADERS {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "too many headers",
            ));
        }
        let mut header = String::new();
        if read_line_capped(reader, &mut header)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "eof inside headers",
            ));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((key, value)) = header.split_once(':') {
            let key = key.trim().to_ascii_lowercase();
            let value = value.trim();
            if key == "content-length" {
                content_length = value.parse().map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, "bad content-length")
                })?;
            } else if key == "connection" {
                let v = value.to_ascii_lowercase();
                close = v.contains("close") || (http10 && !v.contains("keep-alive"));
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "body too large",
        ));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 body"))?;
    Ok(Some(HttpRequest {
        method,
        path,
        http10,
        close,
        body,
    }))
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    close: bool,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let connection = if close { "close" } else { "keep-alive" };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

fn handle_connection(stream: TcpStream, state: &ServerState) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        let req = match read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                let body = format!("{}\n", error_line("bad_request", Some(&e.to_string())));
                let _ = write_response(&mut writer, 400, &body, true);
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        let shutting_down = req.method == "POST" && req.path == "/shutdown";
        let (status, body) = route(&req, state);
        let close = req.close || req.http10 || shutting_down;
        if shutting_down {
            // Stop *before* writing the acknowledgement: a client that
            // fires /shutdown and disconnects without reading the reply
            // must still take the server down.
            state.request_stop();
        }
        write_response(&mut writer, status, &body, close)?;
        if close {
            return Ok(());
        }
    }
}

fn route(req: &HttpRequest, state: &ServerState) -> (u16, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => (200, format!("{}\n", health_json(&state.service))),
        ("GET", "/metrics") => (200, format!("{}\n", metrics_json(&state.service))),
        ("POST", "/v1") => batch_endpoint(&state.service, &req.body),
        ("POST", "/shutdown") => (
            200,
            format!(
                "{}\n",
                Json::obj(vec![("status", Json::str("shutting_down"))])
            ),
        ),
        ("GET" | "POST", _) => (404, format!("{}\n", error_line("not_found", None))),
        _ => (405, format!("{}\n", error_line("method_not_allowed", None))),
    }
}

/// Runs every line of a newline-JSON body through the service,
/// preserving order. The HTTP status reflects the single-line case
/// (503 overloaded / 400 invalid); multi-line bodies always get 200
/// with per-line `"ok"` flags.
fn batch_endpoint(service: &NaiService, body: &str) -> (u16, String) {
    let lines: Vec<&str> = body.lines().filter(|l| !l.trim().is_empty()).collect();
    if lines.is_empty() {
        return (400, format!("{}\n", error_line("empty_body", None)));
    }
    enum Outcome {
        Pending(Ticket),
        Failed(ServeError),
        Unparsed(String),
    }
    let outcomes: Vec<Outcome> = lines
        .iter()
        .map(|line| match parse_request(line) {
            Err(msg) => Outcome::Unparsed(msg),
            Ok(req) => match service.submit(req) {
                Ok(ticket) => Outcome::Pending(ticket),
                Err(e) => Outcome::Failed(e),
            },
        })
        .collect();
    let mut status = 200;
    let single = outcomes.len() == 1;
    let mut out = String::new();
    for outcome in outcomes {
        let line = match outcome {
            Outcome::Pending(ticket) => match ticket.wait(READ_TIMEOUT) {
                Ok(reply) => render_reply(&reply),
                Err(_) => {
                    if single {
                        status = 503;
                    }
                    error_line("timeout", None).to_string()
                }
            },
            Outcome::Failed(e) => {
                let (kind, message) = match &e {
                    ServeError::Overloaded => ("overloaded", None),
                    ServeError::ShuttingDown => ("shutting_down", None),
                    ServeError::Timeout => ("timeout", None),
                    ServeError::Invalid(m) => ("invalid", Some(m.as_str())),
                };
                if single {
                    status = match e {
                        ServeError::Invalid(_) => 400,
                        _ => 503,
                    };
                }
                error_line(kind, message).to_string()
            }
            Outcome::Unparsed(msg) => {
                if single {
                    status = 400;
                }
                error_line("invalid", Some(&msg)).to_string()
            }
        };
        out.push_str(&line);
        out.push('\n');
    }
    (status, out)
}

fn health_json(service: &NaiService) -> Json {
    let info = service.info();
    Json::obj(vec![
        ("status", Json::str("ok")),
        ("shards", Json::uint(info.shards as u64)),
        ("feature_dim", Json::uint(info.feature_dim as u64)),
        ("k", Json::uint(info.k as u64)),
        ("seed_nodes", Json::uint(info.seed_nodes as u64)),
        ("queue_depth", Json::uint(service.queue_depth() as u64)),
    ])
}

fn metrics_json(service: &NaiService) -> Json {
    let m = service.metrics();
    let us = |d: Duration| Json::uint(d.as_micros().min(u64::MAX as u128) as u64);
    // One sort of the merged samples serves every percentile.
    let qs = m.stats.quantiles(&[0.5, 0.95, 0.99]);
    Json::obj(vec![
        ("queue_depth", Json::uint(m.queue_depth as u64)),
        ("served", Json::uint(m.served)),
        ("overloaded", Json::uint(m.overloaded)),
        ("batches", Json::uint(m.batches)),
        ("degraded_batches", Json::uint(m.degraded_batches)),
        ("shed_ops", Json::uint(m.shed_ops)),
        ("edges_observed", Json::uint(m.edges_observed)),
        ("op_errors", Json::uint(m.op_errors)),
        ("cache_hits", Json::uint(m.cache_hits)),
        ("cache_misses", Json::uint(m.cache_misses)),
        ("cache_evicted", Json::uint(m.cache_evicted)),
        ("cache_invalidated", Json::uint(m.cache_invalidated)),
        (
            "latency_us",
            Json::obj(vec![
                ("p50", us(qs[0])),
                ("p95", us(qs[1])),
                ("p99", us(qs[2])),
                ("max", us(m.stats.max())),
                ("mean", us(m.stats.mean_latency())),
            ]),
        ),
        ("mean_depth", Json::Num(m.stats.mean_depth())),
        (
            "depth_histogram",
            Json::Arr(
                m.stats
                    .depth_histogram()
                    .iter()
                    .map(|&c| Json::uint(c))
                    .collect(),
            ),
        ),
        ("throughput", Json::Num(m.stats.throughput())),
        (
            "macs",
            Json::obj(vec![
                ("propagation", Json::uint(m.macs.propagation)),
                ("nap", Json::uint(m.macs.nap)),
                ("classification", Json::uint(m.macs.classification)),
                // Replicated mutation work, attributed once (max over
                // replicas) — never multiplied by the shard count.
                ("replication", Json::uint(m.macs.replication)),
                ("total", Json::uint(m.macs.total())),
            ]),
        ),
    ])
}
