//! HTTP/1.1 front end: endpoint routing, rendering, and server
//! lifecycle over the event-driven transport in [`crate::reactor`].
//!
//! Endpoints:
//!
//! | method | path          | body                  | answer |
//! |--------|---------------|-----------------------|--------|
//! | GET    | `/healthz`    | —                     | deployment facts + queue depth |
//! | GET    | `/metrics`    | —                     | [`crate::service::MetricsSnapshot`] as JSON |
//! | GET    | `/metrics?format=prom` | —            | the same snapshot as Prometheus text exposition 0.0.4 |
//! | GET    | `/debug/slow` | —                     | slowest recent requests with full stage timelines, JSON |
//! | POST   | `/v1`         | newline-JSON requests | newline-JSON replies, in order |
//! | POST   | `/shutdown`   | —                     | ack, then the server stops accepting |
//!
//! The server speaks just enough HTTP/1.1 for `curl`, the bundled
//! [`crate::client::HttpClient`], and browsers: request line, headers,
//! `Content-Length` bodies, keep-alive (closed on request or on
//! HTTP/1.0), and request pipelining on persistent connections. One
//! reactor thread multiplexes every connection over a readiness
//! poller ([`crate::sync::poll`]); per-request work is bounded by the
//! service's admission control and per-connection memory by the
//! reactor's write-backlog cap, so neither connection count nor
//! pipelining depth is an unbounded resource. This replaced a
//! thread-per-connection loop whose blocking `/v1` handler parked one
//! OS thread per in-flight request.

use crate::json::Json;
use crate::proto::error_line;
use crate::reactor::{Reactor, TransportConfig};
use crate::service::NaiService;
use crate::sync::atomic::{AtomicBool, Ordering};
use crate::sync::thread::{self, JoinHandle};
use crate::sync::{lock_recover, Arc, Condvar, Mutex};
use nai_obs::{PromWriter, Stage, TraceRecord};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Content type of every JSON body.
pub(crate) const CT_JSON: &str = "application/json";
/// Content type of the Prometheus text exposition format.
const CT_PROM: &str = "text/plain; version=0.0.4";

/// Shutdown gate for the connection pool: a stop flag plus a counted
/// set of active connections with a condition variable for the drain.
///
/// This replaced a `stop: AtomicBool` + `active_conns: AtomicUsize`
/// pair whose join path slept in a 5 ms poll loop: the count now lives
/// under a mutex with [`Self::end_conn`] signalling the last exit, so
/// [`Self::await_drained`] wakes exactly when the pool empties (or the
/// grace deadline fires) — no poll latency, no schedule where the
/// notify is lost. `tests/model.rs` checks under `--cfg nai_model`
/// that stop/begin/end/await interleavings never hang and never strand
/// an accepted connection uncounted.
pub struct ConnGate {
    stop: AtomicBool,
    active: Mutex<usize>,
    drained: Condvar,
}

impl ConnGate {
    /// An open gate with no active connections.
    pub fn new() -> Self {
        Self {
            stop: AtomicBool::new(false),
            active: Mutex::new(0),
            drained: Condvar::new(),
        }
    }

    /// Whether shutdown has been requested. Acquire: pairs with the
    /// AcqRel swap in [`Self::request_stop`], so a connection accepted
    /// after the observing load sees everything the stopper did first.
    pub fn stopping(&self) -> bool {
        // Acquire: pairs with request_stop's AcqRel swap (see doc).
        self.stop.load(Ordering::Acquire)
    }

    /// Latches the stop flag; returns whether this call was the first
    /// (the swap makes concurrent stop requests race-free: exactly one
    /// caller performs the reactor-waking side effect).
    pub fn request_stop(&self) -> bool {
        // AcqRel: exactly one winner, and the winner's prior writes
        // are visible to every later stopping() load.
        !self.stop.swap(true, Ordering::AcqRel)
    }

    /// Counts a connection in (poison-recovering: the count is a plain
    /// integer a panic cannot leave half-updated).
    pub fn begin_conn(&self) {
        *lock_recover(&self.active) += 1;
    }

    /// Counts a connection out, waking the drain waiter when the pool
    /// empties.
    pub fn end_conn(&self) {
        let mut active = lock_recover(&self.active);
        debug_assert!(*active > 0, "end_conn without begin_conn");
        *active = active.saturating_sub(1);
        if *active == 0 {
            self.drained.notify_all();
        }
    }

    /// Blocks until every counted connection has ended, or `grace` has
    /// elapsed; returns whether the pool drained. Loops only on real
    /// wakeups — one timeout ends the wait (re-arming would extend the
    /// grace unboundedly under repeated spurious wakeups).
    pub fn await_drained(&self, grace: Duration) -> bool {
        let mut active = lock_recover(&self.active);
        while *active > 0 {
            let (guard, timeout) = self
                .drained
                .wait_timeout(active, grace)
                .unwrap_or_else(|p| p.into_inner());
            active = guard;
            if timeout.timed_out() {
                return *active == 0;
            }
        }
        true
    }
}

impl Default for ConnGate {
    fn default() -> Self {
        Self::new()
    }
}

pub(crate) struct ServerState {
    pub(crate) service: Arc<NaiService>,
    pub(crate) addr: SocketAddr,
    pub(crate) gate: ConnGate,
    /// Write end of the reactor's wake pipe: one byte makes the
    /// reactor leave `Poller::wait` and re-check the stop flag and the
    /// completion queue. Non-blocking — a full pipe means a wake is
    /// already pending, so the dropped byte is harmless.
    pub(crate) waker: UnixStream,
}

impl ServerState {
    pub(crate) fn request_stop(&self) {
        if self.gate.request_stop() {
            self.wake();
        }
    }

    pub(crate) fn wake(&self) {
        let _ = (&self.waker).write(&[1u8]);
    }
}

/// A running HTTP server; dropping it does *not* stop it — call
/// [`Server::shutdown`] (or POST `/shutdown`) then [`Server::join`].
pub struct Server {
    state: Arc<ServerState>,
    reactor: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// reactor for `service` with default [`TransportConfig`] knobs.
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn start(service: Arc<NaiService>, addr: impl ToSocketAddrs) -> std::io::Result<Server> {
        Self::start_with(service, addr, TransportConfig::default())
    }

    /// As [`Server::start`], with explicit transport knobs.
    ///
    /// # Errors
    /// Propagates bind / poller-setup failures.
    pub fn start_with(
        service: Arc<NaiService>,
        addr: impl ToSocketAddrs,
        cfg: TransportConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let (wake_rx, waker) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        waker.set_nonblocking(true)?;
        let state = Arc::new(ServerState {
            service,
            addr: local,
            gate: ConnGate::new(),
            waker,
        });
        let reactor = Reactor::new(listener, wake_rx, Arc::clone(&state), cfg)?;
        let handle = thread::Builder::new()
            .name("nai-serve-reactor".to_string())
            .spawn(move || reactor.run())
            // nai-lint: allow(hot-path-panic) -- spawn fails only on OS
            // resource exhaustion at startup, before any request is in flight.
            .expect("spawn reactor thread");
        Ok(Server {
            state,
            reactor: Some(handle),
        })
    }

    /// The bound address (the actual port when bound with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Signals the reactor to stop (equivalent to POST `/shutdown`).
    pub fn shutdown(&self) {
        self.state.request_stop();
    }

    /// Blocks until the reactor has drained and stopped (after
    /// [`Server::shutdown`] or a POST `/shutdown`), then shuts the
    /// service itself down (draining every admitted request).
    pub fn join(mut self) {
        if let Some(handle) = self.reactor.take() {
            let _ = handle.join();
        }
        // The reactor counts every connection out before exiting, so
        // this returns immediately; it stays as a guard on the gate's
        // invariant (and would bound the wait if that ever broke).
        let _ = self.state.gate.await_drained(Duration::from_secs(2));
        self.state.service.shutdown();
    }
}

/// Routes the bodyless GET endpoints plus the 404/405 fallbacks; the
/// reactor handles `POST /v1` and `POST /shutdown` itself (they need
/// the connection's response queue and the server's stop switch).
pub(crate) fn route_basic(
    method: &str,
    path: &str,
    query: &str,
    service: &NaiService,
) -> (u16, String, &'static str) {
    let json = |status: u16, body: String| (status, body, CT_JSON);
    match (method, path) {
        ("GET", "/healthz") => json(200, format!("{}\n", health_json(service))),
        ("GET", "/metrics") => {
            if query.split('&').any(|kv| kv == "format=prom") {
                (200, metrics_prom(service), CT_PROM)
            } else {
                json(200, format!("{}\n", metrics_json(service)))
            }
        }
        ("GET", "/debug/slow") => json(200, format!("{}\n", slow_json(service))),
        ("GET" | "POST", _) => json(404, format!("{}\n", error_line("not_found", None))),
        _ => json(405, format!("{}\n", error_line("method_not_allowed", None))),
    }
}

fn health_json(service: &NaiService) -> Json {
    let info = service.info();
    Json::obj(vec![
        ("status", Json::str("ok")),
        ("shards", Json::uint(info.shards as u64)),
        ("feature_dim", Json::uint(info.feature_dim as u64)),
        ("k", Json::uint(info.k as u64)),
        ("seed_nodes", Json::uint(info.seed_nodes as u64)),
        ("queue_depth", Json::uint(service.queue_depth() as u64)),
    ])
}

fn metrics_json(service: &NaiService) -> Json {
    let m = service.metrics();
    // Histograms record nanoseconds; the JSON surface keeps its
    // microsecond convention. Quantiles as integers, means as floats
    // (the stage-accounting test sums stage means against the
    // end-to-end mean — rounding to whole µs would eat the budget).
    // Nonzero sub-microsecond spans clamp to 1µs instead of truncating
    // to 0 — cache hits answer in hundreds of nanoseconds, and a
    // dashboard reading `p50: 0` would call that "no latency data".
    // The exact values live in the additive `latency_ns` block.
    let us = |ns: u64| Json::uint(if ns == 0 { 0 } else { (ns / 1_000).max(1) });
    let us_f = |ns: f64| Json::Num(ns / 1_000.0);
    let lq = m.latency.quantiles(&[0.5, 0.95, 0.99]);
    Json::obj(vec![
        ("queue_depth", Json::uint(m.queue_depth as u64)),
        ("served", Json::uint(m.served)),
        ("overloaded", Json::uint(m.overloaded)),
        ("batches", Json::uint(m.batches)),
        ("degraded_batches", Json::uint(m.degraded_batches)),
        ("shed_ops", Json::uint(m.shed_ops)),
        ("edges_observed", Json::uint(m.edges_observed)),
        ("op_errors", Json::uint(m.op_errors)),
        ("cache_hits", Json::uint(m.cache_hits)),
        ("cache_misses", Json::uint(m.cache_misses)),
        ("cache_evicted", Json::uint(m.cache_evicted)),
        ("cache_invalidated", Json::uint(m.cache_invalidated)),
        (
            "latency_us",
            Json::obj(vec![
                ("p50", us(lq[0])),
                ("p95", us(lq[1])),
                ("p99", us(lq[2])),
                ("max", us(m.latency.max())),
                ("mean", us_f(m.latency.mean())),
            ]),
        ),
        (
            // Exact nanosecond quantiles, for consumers that care
            // about the sub-microsecond cache-hit regime the clamped
            // `latency_us` block rounds away.
            "latency_ns",
            Json::obj(vec![
                ("p50", Json::uint(lq[0])),
                ("p95", Json::uint(lq[1])),
                ("p99", Json::uint(lq[2])),
                ("max", Json::uint(m.latency.max())),
            ]),
        ),
        (
            "stages",
            Json::Obj(
                Stage::ALL
                    .iter()
                    .map(|&s| {
                        let h = &m.stages[s.index()];
                        let q = h.quantiles(&[0.5, 0.95, 0.99]);
                        (
                            s.name().to_string(),
                            Json::obj(vec![
                                ("count", Json::uint(h.count())),
                                ("mean_us", us_f(h.mean())),
                                ("p50_us", us(q[0])),
                                ("p95_us", us(q[1])),
                                ("p99_us", us(q[2])),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
        (
            "batch",
            Json::obj(vec![
                ("closed_on_max_batch", Json::uint(m.closed_on_max_batch)),
                ("closed_on_deadline", Json::uint(m.closed_on_deadline)),
                ("closed_on_idle", Json::uint(m.closed_on_idle)),
                ("closed_on_shutdown", Json::uint(m.closed_on_shutdown)),
                ("mean_size", Json::Num(m.batch_sizes.mean())),
                ("p99_size", Json::uint(m.batch_sizes.quantile(0.99))),
                (
                    "size_histogram",
                    Json::Arr(
                        m.batch_sizes
                            .exact_small_counts()
                            .iter()
                            .map(|&c| Json::uint(c))
                            .collect(),
                    ),
                ),
            ]),
        ),
        ("mean_depth", Json::Num(m.mean_depth())),
        (
            "depth_histogram",
            Json::Arr(
                m.depths
                    .exact_small_counts()
                    .iter()
                    .map(|&c| Json::uint(c))
                    .collect(),
            ),
        ),
        ("throughput", Json::Num(m.throughput())),
        (
            "macs",
            Json::obj(vec![
                ("propagation", Json::uint(m.macs.propagation)),
                ("nap", Json::uint(m.macs.nap)),
                ("classification", Json::uint(m.macs.classification)),
                // Replicated mutation work, attributed once (max over
                // replicas) — never multiplied by the shard count.
                ("replication", Json::uint(m.macs.replication)),
                ("total", Json::uint(m.macs.total())),
            ]),
        ),
    ])
}

/// The same snapshot as Prometheus text exposition 0.0.4: counters as
/// `_total` series, durations in seconds, dimensions as labels, and the
/// log-bucketed histograms as native cumulative `_bucket`/`_sum`/
/// `_count` series.
fn metrics_prom(service: &NaiService) -> String {
    let m = service.metrics();
    let mut w = PromWriter::new();
    for (name, help, value) in [
        (
            "nai_requests_served_total",
            "Predictions answered (one per node result; cache hits included).",
            m.served,
        ),
        (
            "nai_overloaded_total",
            "Submissions rejected at the admission bound.",
            m.overloaded,
        ),
        ("nai_batches_total", "Batches dispatched.", m.batches),
        (
            "nai_degraded_batches_total",
            "Batches dispatched under a load-shed depth budget.",
            m.degraded_batches,
        ),
        (
            "nai_shed_ops_total",
            "Requests dispatched inside degraded batches.",
            m.shed_ops,
        ),
        (
            "nai_edges_observed_total",
            "Edge mutations answered.",
            m.edges_observed,
        ),
        (
            "nai_op_errors_total",
            "Per-op validation failures answered.",
            m.op_errors,
        ),
        (
            "nai_cache_hits_total",
            "Reads answered entirely from the prediction cache.",
            m.cache_hits,
        ),
        (
            "nai_cache_misses_total",
            "Reads that consulted the cache and fell through.",
            m.cache_misses,
        ),
        (
            "nai_cache_evicted_total",
            "Cache entries dropped under capacity pressure.",
            m.cache_evicted,
        ),
        (
            "nai_cache_invalidated_total",
            "Cache entries dropped by mutation invalidation.",
            m.cache_invalidated,
        ),
    ] {
        w.family(name, "counter", help);
        w.counter(name, &[], value);
    }
    w.family(
        "nai_batch_closed_total",
        "counter",
        "Batches closed, by close reason (max_batch, deadline, idle, shutdown).",
    );
    for (reason, value) in [
        ("max_batch", m.closed_on_max_batch),
        ("deadline", m.closed_on_deadline),
        ("idle", m.closed_on_idle),
        ("shutdown", m.closed_on_shutdown),
    ] {
        w.counter("nai_batch_closed_total", &[("reason", reason)], value);
    }
    w.family(
        "nai_macs_total",
        "counter",
        "Cumulative multiply-accumulates, by engine stage.",
    );
    for (stage, value) in [
        ("propagation", m.macs.propagation),
        ("nap", m.macs.nap),
        ("classification", m.macs.classification),
        ("replication", m.macs.replication),
    ] {
        w.counter("nai_macs_total", &[("stage", stage)], value);
    }
    w.family(
        "nai_queue_depth",
        "gauge",
        "Requests currently queued or being served.",
    );
    w.gauge("nai_queue_depth", &[], m.queue_depth as f64);
    w.family(
        "nai_request_duration_seconds",
        "histogram",
        "End-to-end latency (transport ingress or admission to reply), one sample per prediction.",
    );
    w.histogram("nai_request_duration_seconds", &[], &m.latency, 1e-9);
    w.family(
        "nai_request_stage_duration_seconds",
        "histogram",
        "Per-stage request lifecycle spans, one sample per request.",
    );
    for s in Stage::ALL {
        w.histogram(
            "nai_request_stage_duration_seconds",
            &[("stage", s.name())],
            &m.stages[s.index()],
            1e-9,
        );
    }
    w.family(
        "nai_batch_size",
        "histogram",
        "Requests per dispatched batch.",
    );
    w.histogram("nai_batch_size", &[], &m.batch_sizes, 1.0);
    w.family(
        "nai_exit_depth",
        "histogram",
        "NAP exit depth, one sample per prediction.",
    );
    w.histogram("nai_exit_depth", &[], &m.depths, 1.0);
    w.finish()
}

/// `GET /debug/slow`: the flight recorder's slowest recent requests,
/// slowest first, each with its full stage timeline.
fn slow_json(service: &NaiService) -> Json {
    let traces = service.slow_traces();
    Json::obj(vec![
        ("count", Json::uint(traces.len() as u64)),
        ("traces", Json::Arr(traces.iter().map(trace_json).collect())),
    ])
}

fn trace_json(t: &TraceRecord) -> Json {
    Json::obj(vec![
        ("trace_id", Json::uint(t.trace_id)),
        ("total_us", Json::Num(t.total_ns as f64 / 1_000.0)),
        (
            "stages_us",
            Json::Obj(
                Stage::ALL
                    .iter()
                    .map(|&s| {
                        (
                            s.name().to_string(),
                            Json::Num(t.stages.get(s) as f64 / 1_000.0),
                        )
                    })
                    .collect(),
            ),
        ),
        (
            "nodes",
            Json::Arr(t.nodes.iter().map(|&n| Json::uint(n as u64)).collect()),
        ),
        (
            "depths",
            Json::Arr(t.depths.iter().map(|&d| Json::uint(d as u64)).collect()),
        ),
        ("cache_hit", Json::Bool(t.cache_hit)),
        ("applied_seq", Json::uint(t.applied_seq)),
        ("batch_size", Json::uint(t.batch_size as u64)),
        ("close_reason", Json::str(t.close_reason)),
    ])
}
