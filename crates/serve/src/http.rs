//! Minimal HTTP/1.1 front end over [`std::net::TcpListener`].
//!
//! Endpoints:
//!
//! | method | path          | body                  | answer |
//! |--------|---------------|-----------------------|--------|
//! | GET    | `/healthz`    | —                     | deployment facts + queue depth |
//! | GET    | `/metrics`    | —                     | [`crate::service::MetricsSnapshot`] as JSON |
//! | GET    | `/metrics?format=prom` | —            | the same snapshot as Prometheus text exposition 0.0.4 |
//! | GET    | `/debug/slow` | —                     | slowest recent requests with full stage timelines, JSON |
//! | POST   | `/v1`         | newline-JSON requests | newline-JSON replies, in order |
//! | POST   | `/shutdown`   | —                     | ack, then the server stops accepting |
//!
//! The server speaks just enough HTTP/1.1 for `curl`, the bundled
//! [`crate::client::HttpClient`], and browsers: request line, headers,
//! `Content-Length` bodies, and keep-alive (closed on request or on
//! HTTP/1.0). One thread per connection; per-request work is bounded by
//! the service's admission control, so connection concurrency — not
//! request concurrency — is the only unbounded resource, which is fine
//! at the workloads this reproduction targets.

use crate::json::Json;
use crate::proto::{error_line, parse_request, render_reply};
use crate::service::{NaiService, ServeError, Ticket};
use crate::sync::atomic::{AtomicBool, Ordering};
use crate::sync::thread::{self, JoinHandle};
use crate::sync::{lock_recover, Arc, Condvar, Mutex};
use nai_obs::{PromWriter, Stage, TraceRecord};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Content type of every JSON body.
const CT_JSON: &str = "application/json";
/// Content type of the Prometheus text exposition format.
const CT_PROM: &str = "text/plain; version=0.0.4";

/// Upper bound on accepted request bodies (1 MiB — far above any
/// realistic micro-batch line, far below memory trouble).
const MAX_BODY: usize = 1 << 20;
/// Upper bound on one request/header line; longer lines are rejected
/// before they buffer, so a connection can hold at most
/// `MAX_HEADERS × MAX_HEADER_LINE + MAX_BODY` bytes.
const MAX_HEADER_LINE: usize = 8 << 10;
/// Upper bound on headers per request.
const MAX_HEADERS: usize = 100;
/// Per-connection socket read timeout.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Shutdown gate for the connection pool: a stop flag plus a counted
/// set of active connections with a condition variable for the drain.
///
/// This replaced a `stop: AtomicBool` + `active_conns: AtomicUsize`
/// pair whose join path slept in a 5 ms poll loop: the count now lives
/// under a mutex with [`Self::end_conn`] signalling the last exit, so
/// [`Self::await_drained`] wakes exactly when the pool empties (or the
/// grace deadline fires) — no poll latency, no schedule where the
/// notify is lost. `tests/model.rs` checks under `--cfg nai_model`
/// that stop/begin/end/await interleavings never hang and never strand
/// an accepted connection uncounted.
pub struct ConnGate {
    stop: AtomicBool,
    active: Mutex<usize>,
    drained: Condvar,
}

impl ConnGate {
    /// An open gate with no active connections.
    pub fn new() -> Self {
        Self {
            stop: AtomicBool::new(false),
            active: Mutex::new(0),
            drained: Condvar::new(),
        }
    }

    /// Whether shutdown has been requested. Acquire: pairs with the
    /// AcqRel swap in [`Self::request_stop`], so a connection accepted
    /// after the observing load sees everything the stopper did first.
    pub fn stopping(&self) -> bool {
        // Acquire: pairs with request_stop's AcqRel swap (see doc).
        self.stop.load(Ordering::Acquire)
    }

    /// Latches the stop flag; returns whether this call was the first
    /// (the swap makes concurrent stop requests race-free: exactly one
    /// caller performs the accept-loop unblocking side effect).
    pub fn request_stop(&self) -> bool {
        // AcqRel: exactly one winner, and the winner's prior writes
        // are visible to every later stopping() load.
        !self.stop.swap(true, Ordering::AcqRel)
    }

    /// Counts a connection in (poison-recovering: the count is a plain
    /// integer a panic cannot leave half-updated).
    pub fn begin_conn(&self) {
        *lock_recover(&self.active) += 1;
    }

    /// Counts a connection out, waking the drain waiter when the pool
    /// empties.
    pub fn end_conn(&self) {
        let mut active = lock_recover(&self.active);
        debug_assert!(*active > 0, "end_conn without begin_conn");
        *active = active.saturating_sub(1);
        if *active == 0 {
            self.drained.notify_all();
        }
    }

    /// Blocks until every counted connection has ended, or `grace` has
    /// elapsed; returns whether the pool drained. Loops only on real
    /// wakeups — one timeout ends the wait (re-arming would extend the
    /// grace unboundedly under repeated spurious wakeups).
    pub fn await_drained(&self, grace: Duration) -> bool {
        let mut active = lock_recover(&self.active);
        while *active > 0 {
            let (guard, timeout) = self
                .drained
                .wait_timeout(active, grace)
                .unwrap_or_else(|p| p.into_inner());
            active = guard;
            if timeout.timed_out() {
                return *active == 0;
            }
        }
        true
    }
}

impl Default for ConnGate {
    fn default() -> Self {
        Self::new()
    }
}

struct ServerState {
    service: Arc<NaiService>,
    addr: SocketAddr,
    gate: ConnGate,
}

impl ServerState {
    fn request_stop(&self) {
        if self.gate.request_stop() {
            // Unblock the accept loop with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
        }
    }
}

/// A running HTTP server; dropping it does *not* stop it — call
/// [`Server::shutdown`] (or POST `/shutdown`) then [`Server::join`].
pub struct Server {
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections for `service`.
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn start(service: Arc<NaiService>, addr: impl ToSocketAddrs) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let state = Arc::new(ServerState {
            service,
            addr: local,
            gate: ConnGate::new(),
        });
        let accept_state = Arc::clone(&state);
        let accept = thread::Builder::new()
            .name("nai-serve-accept".to_string())
            .spawn(move || accept_loop(listener, accept_state))
            // nai-lint: allow(hot-path-panic) -- spawn fails only on OS
            // resource exhaustion at startup, before any request is in flight.
            .expect("spawn accept thread");
        Ok(Server {
            state,
            accept: Some(accept),
        })
    }

    /// The bound address (the actual port when bound with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Signals the accept loop to stop (equivalent to POST `/shutdown`).
    pub fn shutdown(&self) {
        self.state.request_stop();
    }

    /// Blocks until the accept loop has stopped and in-flight
    /// connections have wound down, then shuts the service itself down
    /// (draining every admitted request).
    pub fn join(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        // Give connection threads a short grace to write their final
        // responses; they hold no service slots beyond their tickets.
        // The gate wakes the moment the pool empties (no poll loop) or
        // gives up at the deadline — stragglers get their replies cut
        // off, never a wedged join.
        let _ = self.state.gate.await_drained(Duration::from_secs(2));
        self.state.service.shutdown();
    }
}

fn accept_loop(listener: TcpListener, state: Arc<ServerState>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if state.gate.stopping() {
                    break;
                }
                let conn_state = Arc::clone(&state);
                // Counted in *before* the connection thread exists, so
                // a join racing the spawn still waits for this
                // connection; the thread itself counts out.
                conn_state.gate.begin_conn();
                let spawned = thread::Builder::new()
                    .name("nai-serve-conn".to_string())
                    .spawn(move || {
                        let _ = handle_connection(stream, &conn_state);
                        conn_state.gate.end_conn();
                    });
                if spawned.is_err() {
                    // The closure never ran (and was dropped with its
                    // stream): count the connection back out so join
                    // does not wait its full grace period on a ghost.
                    state.gate.end_conn();
                }
            }
            Err(_) => {
                if state.gate.stopping() {
                    break;
                }
            }
        }
    }
}

struct HttpRequest {
    method: String,
    path: String,
    http10: bool,
    close: bool,
    body: String,
}

/// `read_line` with a hard length cap: a peer streaming bytes with no
/// newline cannot grow the buffer past `MAX_HEADER_LINE`.
fn read_line_capped(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
) -> std::io::Result<usize> {
    let n = (&mut *reader)
        .take(MAX_HEADER_LINE as u64)
        .read_line(line)?;
    if n >= MAX_HEADER_LINE && !line.ends_with('\n') {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "header line too long",
        ));
    }
    Ok(n)
}

fn read_request(reader: &mut BufReader<TcpStream>) -> std::io::Result<Option<HttpRequest>> {
    let mut line = String::new();
    if read_line_capped(reader, &mut line)? == 0 {
        return Ok(None); // clean EOF between requests
    }
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_string(), p.to_string(), v.to_string()),
        _ => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "malformed request line",
            ))
        }
    };
    let http10 = version == "HTTP/1.0";
    let mut content_length = 0usize;
    let mut close = http10;
    for seen in 0.. {
        if seen > MAX_HEADERS {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "too many headers",
            ));
        }
        let mut header = String::new();
        if read_line_capped(reader, &mut header)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "eof inside headers",
            ));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((key, value)) = header.split_once(':') {
            let key = key.trim().to_ascii_lowercase();
            let value = value.trim();
            if key == "content-length" {
                content_length = value.parse().map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, "bad content-length")
                })?;
            } else if key == "connection" {
                let v = value.to_ascii_lowercase();
                close = v.contains("close") || (http10 && !v.contains("keep-alive"));
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "body too large",
        ));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 body"))?;
    Ok(Some(HttpRequest {
        method,
        path,
        http10,
        close,
        body,
    }))
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    content_type: &str,
    close: bool,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let connection = if close { "close" } else { "keep-alive" };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

fn handle_connection(stream: TcpStream, state: &ServerState) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        let req = match read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                let body = format!("{}\n", error_line("bad_request", Some(&e.to_string())));
                let _ = write_response(&mut writer, 400, &body, CT_JSON, true);
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        let shutting_down = req.method == "POST" && req.path == "/shutdown";
        let (status, body, content_type) = route(&req, state);
        let close = req.close || req.http10 || shutting_down;
        if shutting_down {
            // Stop *before* writing the acknowledgement: a client that
            // fires /shutdown and disconnects without reading the reply
            // must still take the server down.
            state.request_stop();
        }
        write_response(&mut writer, status, &body, content_type, close)?;
        if close {
            return Ok(());
        }
    }
}

fn route(req: &HttpRequest, state: &ServerState) -> (u16, String, &'static str) {
    // Split the query string off the path; only /metrics reads it.
    let (path, query) = match req.path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (req.path.as_str(), ""),
    };
    let json = |status: u16, body: String| (status, body, CT_JSON);
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => json(200, format!("{}\n", health_json(&state.service))),
        ("GET", "/metrics") => {
            if query.split('&').any(|kv| kv == "format=prom") {
                (200, metrics_prom(&state.service), CT_PROM)
            } else {
                json(200, format!("{}\n", metrics_json(&state.service)))
            }
        }
        ("GET", "/debug/slow") => json(200, format!("{}\n", slow_json(&state.service))),
        ("POST", "/v1") => {
            let (status, body) = batch_endpoint(&state.service, &req.body);
            json(status, body)
        }
        ("POST", "/shutdown") => json(
            200,
            format!(
                "{}\n",
                Json::obj(vec![("status", Json::str("shutting_down"))])
            ),
        ),
        ("GET" | "POST", _) => json(404, format!("{}\n", error_line("not_found", None))),
        _ => json(405, format!("{}\n", error_line("method_not_allowed", None))),
    }
}

/// Runs every line of a newline-JSON body through the service,
/// preserving order. The HTTP status reflects the single-line case
/// (503 overloaded / 400 invalid); multi-line bodies always get 200
/// with per-line `"ok"` flags.
fn batch_endpoint(service: &NaiService, body: &str) -> (u16, String) {
    let lines: Vec<&str> = body.lines().filter(|l| !l.trim().is_empty()).collect();
    if lines.is_empty() {
        return (400, format!("{}\n", error_line("empty_body", None)));
    }
    enum Outcome {
        Pending(Ticket),
        Failed(ServeError),
        Unparsed(String),
    }
    let outcomes: Vec<Outcome> = lines
        .iter()
        .map(|line| match parse_request(line) {
            Err(msg) => Outcome::Unparsed(msg),
            Ok(req) => match service.submit(req) {
                Ok(ticket) => Outcome::Pending(ticket),
                Err(e) => Outcome::Failed(e),
            },
        })
        .collect();
    let mut status = 200;
    let single = outcomes.len() == 1;
    let mut out = String::new();
    for outcome in outcomes {
        let line = match outcome {
            Outcome::Pending(ticket) => match ticket.wait(READ_TIMEOUT) {
                Ok(reply) => render_reply(&reply),
                Err(_) => {
                    if single {
                        status = 503;
                    }
                    error_line("timeout", None).to_string()
                }
            },
            Outcome::Failed(e) => {
                let (kind, message) = match &e {
                    ServeError::Overloaded => ("overloaded", None),
                    ServeError::ShuttingDown => ("shutting_down", None),
                    ServeError::Timeout => ("timeout", None),
                    ServeError::Invalid(m) => ("invalid", Some(m.as_str())),
                };
                if single {
                    status = match e {
                        ServeError::Invalid(_) => 400,
                        _ => 503,
                    };
                }
                error_line(kind, message).to_string()
            }
            Outcome::Unparsed(msg) => {
                if single {
                    status = 400;
                }
                error_line("invalid", Some(&msg)).to_string()
            }
        };
        out.push_str(&line);
        out.push('\n');
    }
    (status, out)
}

fn health_json(service: &NaiService) -> Json {
    let info = service.info();
    Json::obj(vec![
        ("status", Json::str("ok")),
        ("shards", Json::uint(info.shards as u64)),
        ("feature_dim", Json::uint(info.feature_dim as u64)),
        ("k", Json::uint(info.k as u64)),
        ("seed_nodes", Json::uint(info.seed_nodes as u64)),
        ("queue_depth", Json::uint(service.queue_depth() as u64)),
    ])
}

fn metrics_json(service: &NaiService) -> Json {
    let m = service.metrics();
    // Histograms record nanoseconds; the JSON surface keeps its
    // microsecond convention. Quantiles as integers, means as floats
    // (the stage-accounting test sums stage means against the
    // end-to-end mean — rounding to whole µs would eat the budget).
    let us = |ns: u64| Json::uint(ns / 1_000);
    let us_f = |ns: f64| Json::Num(ns / 1_000.0);
    let lq = m.latency.quantiles(&[0.5, 0.95, 0.99]);
    Json::obj(vec![
        ("queue_depth", Json::uint(m.queue_depth as u64)),
        ("served", Json::uint(m.served)),
        ("overloaded", Json::uint(m.overloaded)),
        ("batches", Json::uint(m.batches)),
        ("degraded_batches", Json::uint(m.degraded_batches)),
        ("shed_ops", Json::uint(m.shed_ops)),
        ("edges_observed", Json::uint(m.edges_observed)),
        ("op_errors", Json::uint(m.op_errors)),
        ("cache_hits", Json::uint(m.cache_hits)),
        ("cache_misses", Json::uint(m.cache_misses)),
        ("cache_evicted", Json::uint(m.cache_evicted)),
        ("cache_invalidated", Json::uint(m.cache_invalidated)),
        (
            "latency_us",
            Json::obj(vec![
                ("p50", us(lq[0])),
                ("p95", us(lq[1])),
                ("p99", us(lq[2])),
                ("max", us(m.latency.max())),
                ("mean", us_f(m.latency.mean())),
            ]),
        ),
        (
            "stages",
            Json::Obj(
                Stage::ALL
                    .iter()
                    .map(|&s| {
                        let h = &m.stages[s.index()];
                        let q = h.quantiles(&[0.5, 0.95, 0.99]);
                        (
                            s.name().to_string(),
                            Json::obj(vec![
                                ("count", Json::uint(h.count())),
                                ("mean_us", us_f(h.mean())),
                                ("p50_us", us(q[0])),
                                ("p95_us", us(q[1])),
                                ("p99_us", us(q[2])),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
        (
            "batch",
            Json::obj(vec![
                ("closed_on_max_batch", Json::uint(m.closed_on_max_batch)),
                ("closed_on_deadline", Json::uint(m.closed_on_deadline)),
                ("mean_size", Json::Num(m.batch_sizes.mean())),
                ("p99_size", Json::uint(m.batch_sizes.quantile(0.99))),
                (
                    "size_histogram",
                    Json::Arr(
                        m.batch_sizes
                            .exact_small_counts()
                            .iter()
                            .map(|&c| Json::uint(c))
                            .collect(),
                    ),
                ),
            ]),
        ),
        ("mean_depth", Json::Num(m.mean_depth())),
        (
            "depth_histogram",
            Json::Arr(
                m.depths
                    .exact_small_counts()
                    .iter()
                    .map(|&c| Json::uint(c))
                    .collect(),
            ),
        ),
        ("throughput", Json::Num(m.throughput())),
        (
            "macs",
            Json::obj(vec![
                ("propagation", Json::uint(m.macs.propagation)),
                ("nap", Json::uint(m.macs.nap)),
                ("classification", Json::uint(m.macs.classification)),
                // Replicated mutation work, attributed once (max over
                // replicas) — never multiplied by the shard count.
                ("replication", Json::uint(m.macs.replication)),
                ("total", Json::uint(m.macs.total())),
            ]),
        ),
    ])
}

/// The same snapshot as Prometheus text exposition 0.0.4: counters as
/// `_total` series, durations in seconds, dimensions as labels, and the
/// log-bucketed histograms as native cumulative `_bucket`/`_sum`/
/// `_count` series.
fn metrics_prom(service: &NaiService) -> String {
    let m = service.metrics();
    let mut w = PromWriter::new();
    for (name, help, value) in [
        (
            "nai_requests_served_total",
            "Predictions answered (one per node result; cache hits included).",
            m.served,
        ),
        (
            "nai_overloaded_total",
            "Submissions rejected at the admission bound.",
            m.overloaded,
        ),
        ("nai_batches_total", "Batches dispatched.", m.batches),
        (
            "nai_degraded_batches_total",
            "Batches dispatched under a load-shed depth budget.",
            m.degraded_batches,
        ),
        (
            "nai_shed_ops_total",
            "Requests dispatched inside degraded batches.",
            m.shed_ops,
        ),
        (
            "nai_edges_observed_total",
            "Edge mutations answered.",
            m.edges_observed,
        ),
        (
            "nai_op_errors_total",
            "Per-op validation failures answered.",
            m.op_errors,
        ),
        (
            "nai_cache_hits_total",
            "Reads answered entirely from the prediction cache.",
            m.cache_hits,
        ),
        (
            "nai_cache_misses_total",
            "Reads that consulted the cache and fell through.",
            m.cache_misses,
        ),
        (
            "nai_cache_evicted_total",
            "Cache entries dropped under capacity pressure.",
            m.cache_evicted,
        ),
        (
            "nai_cache_invalidated_total",
            "Cache entries dropped by mutation invalidation.",
            m.cache_invalidated,
        ),
    ] {
        w.family(name, "counter", help);
        w.counter(name, &[], value);
    }
    w.family(
        "nai_batch_closed_total",
        "counter",
        "Batches closed, by close reason (max_batch vs deadline).",
    );
    w.counter(
        "nai_batch_closed_total",
        &[("reason", "max_batch")],
        m.closed_on_max_batch,
    );
    w.counter(
        "nai_batch_closed_total",
        &[("reason", "deadline")],
        m.closed_on_deadline,
    );
    w.family(
        "nai_macs_total",
        "counter",
        "Cumulative multiply-accumulates, by engine stage.",
    );
    for (stage, value) in [
        ("propagation", m.macs.propagation),
        ("nap", m.macs.nap),
        ("classification", m.macs.classification),
        ("replication", m.macs.replication),
    ] {
        w.counter("nai_macs_total", &[("stage", stage)], value);
    }
    w.family(
        "nai_queue_depth",
        "gauge",
        "Requests currently queued or being served.",
    );
    w.gauge("nai_queue_depth", &[], m.queue_depth as f64);
    w.family(
        "nai_request_duration_seconds",
        "histogram",
        "End-to-end latency (admission to reply), one sample per prediction.",
    );
    w.histogram("nai_request_duration_seconds", &[], &m.latency, 1e-9);
    w.family(
        "nai_request_stage_duration_seconds",
        "histogram",
        "Per-stage request lifecycle spans, one sample per request.",
    );
    for s in Stage::ALL {
        w.histogram(
            "nai_request_stage_duration_seconds",
            &[("stage", s.name())],
            &m.stages[s.index()],
            1e-9,
        );
    }
    w.family(
        "nai_batch_size",
        "histogram",
        "Requests per dispatched batch.",
    );
    w.histogram("nai_batch_size", &[], &m.batch_sizes, 1.0);
    w.family(
        "nai_exit_depth",
        "histogram",
        "NAP exit depth, one sample per prediction.",
    );
    w.histogram("nai_exit_depth", &[], &m.depths, 1.0);
    w.finish()
}

/// `GET /debug/slow`: the flight recorder's slowest recent requests,
/// slowest first, each with its full stage timeline.
fn slow_json(service: &NaiService) -> Json {
    let traces = service.slow_traces();
    Json::obj(vec![
        ("count", Json::uint(traces.len() as u64)),
        ("traces", Json::Arr(traces.iter().map(trace_json).collect())),
    ])
}

fn trace_json(t: &TraceRecord) -> Json {
    Json::obj(vec![
        ("trace_id", Json::uint(t.trace_id)),
        ("total_us", Json::Num(t.total_ns as f64 / 1_000.0)),
        (
            "stages_us",
            Json::Obj(
                Stage::ALL
                    .iter()
                    .map(|&s| {
                        (
                            s.name().to_string(),
                            Json::Num(t.stages.get(s) as f64 / 1_000.0),
                        )
                    })
                    .collect(),
            ),
        ),
        (
            "nodes",
            Json::Arr(t.nodes.iter().map(|&n| Json::uint(n as u64)).collect()),
        ),
        (
            "depths",
            Json::Arr(t.depths.iter().map(|&d| Json::uint(d as u64)).collect()),
        ),
        ("cache_hit", Json::Bool(t.cache_hit)),
        ("applied_seq", Json::uint(t.applied_seq)),
        ("batch_size", Json::uint(t.batch_size as u64)),
        ("close_reason", Json::str(t.close_reason)),
    ])
}
